#!/usr/bin/env python
"""Fold benchmark artifacts + obs exports into one perf-trajectory report.

Inputs (any mix, in any order):

- ``bench-emit/v1`` envelopes — what every CLI benchmark's ``--json`` writes
  since the shared emitter landed (``benchmarks/_emit.py``): uniform
  ``rows: [{name, value, unit, budget, direction}]``.
- Legacy ``BENCH_delivery.json`` / ``BENCH_traffic.json`` payloads from
  earlier runs (recognized by their headline keys); their headline metrics
  are lifted into the same row shape so old artifacts stay comparable.
- ``repro-obs/v1`` JSONL exports (``--obs-out`` of the experiments and shard
  CLIs, merged sharded-bench exports, campaign files with their pre-folded
  ``merged`` line): counters, span aggregates and protocol-event summaries
  become informational rows, plus derived headlines — windows/s,
  cross-shard delivery fraction, convergence-time p95.

Output: ``PERF_TRAJECTORY.md`` (human) + ``PERF_TRAJECTORY.json`` (machine),
both pure functions of the inputs — no timestamps, no environment probes —
so the report is diffable across CI runs and PRs.  Exit status is non-zero
when any benchmark row breaks its budget (CI uses this as the perf gate);
``--no-fail`` downgrades regressions to warnings.  ``--history PATH``
threads a run-indexed trend file through the gate: the previous entry feeds
a ``Δ prev`` column and the current bench rows are appended (no
timestamps, so the file stays deterministic per run sequence).

Usage::

    python scripts/perf_trajectory.py BENCH_*.json metrics.jsonl \
        --out PERF_TRAJECTORY.md --json-out PERF_TRAJECTORY.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional

BENCH_SCHEMA = "bench-emit/v1"
OBS_SCHEMA = "repro-obs/v1"

#: Budgets of the legacy (pre-v1) delivery payload headlines, keyed by quick
#: mode.  The legacy payload records targets implicitly (they only live in
#: the benchmark source), so lifting old artifacts re-states them here.
LEGACY_DELIVERY_BUDGETS = {
    False: {"broadcast_speedup_lossy": 6.0, "refresh_speedup_10pct_movers": 5.0},
    True: {"broadcast_speedup_lossy": 1.5, "refresh_speedup_10pct_movers": 2.0},
}


def _row(name: str, value: object, unit: str, budget: Optional[float] = None,
         direction: str = "min") -> Dict[str, object]:
    return {"name": name, "value": value, "unit": unit, "budget": budget,
            "direction": direction}


# --------------------------------------------------------------- bench inputs

def _from_envelope(data: Dict[str, object], source: str) -> Dict[str, object]:
    return {"kind": "bench", "bench": data.get("bench", "?"),
            "quick": bool(data.get("quick", False)),
            "rows": list(data.get("rows", [])), "source": source}


def _from_legacy_delivery(data: Dict[str, object], source: str) -> Dict[str, object]:
    quick = bool(data.get("quick", False))
    budgets = LEGACY_DELIVERY_BUDGETS[quick]
    rows = [
        _row("broadcast_speedup_lossy", data["headline_broadcast_speedup"],
             "x", budgets["broadcast_speedup_lossy"]),
        _row("refresh_speedup_10pct_movers", data["headline_refresh_speedup"],
             "x", budgets["refresh_speedup_10pct_movers"]),
    ]
    scale = data.get("scale")
    if scale:
        rows.append(_row("scale_10k_wall", scale["wall_s"], "s",
                         scale.get("budget_s"), "max"))
    return {"kind": "bench", "bench": "delivery", "quick": quick,
            "rows": rows, "source": source}


def _from_legacy_traffic(data: Dict[str, object], source: str) -> Dict[str, object]:
    rows = [_row("app_throughput", data["headline_app_msgs_per_s"], "msg/s",
                 data.get("target_app_msgs_per_s"))]
    return {"kind": "bench", "bench": "traffic",
            "quick": bool(data.get("quick", False)), "rows": rows,
            "source": source}


# ----------------------------------------------------------------- obs inputs

def _obs_rows_from_export(export: Dict[str, object]) -> List[Dict[str, object]]:
    """Informational rows from one ``ObsContext.export()``-shaped blob."""
    rows = []
    for name, value in sorted(export.get("counters", {}).items()):
        rows.append(_row(name, value, "count"))
    for name, stats in sorted(export.get("spans", {}).items()):
        p95 = stats.get("wall_ns_p95")
        if p95 is not None:
            rows.append(_row(f"{name}.p95", round(p95 / 1e6, 3), "ms"))
        rows.append(_row(f"{name}.count", stats.get("count", 0), "spans"))
    heap = export.get("heap_peak_bytes")
    if heap is not None:
        rows.append(_row("heap_peak", round(heap / 1e6, 1), "MB"))
    return rows


def _nearest_rank_p95(values: List[float]) -> Optional[float]:
    """Nearest-rank 95th percentile, ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * 95 // 100))  # ceil without math import
    return ordered[rank - 1]


def _derived_obs_rows(counters: Dict[str, float],
                      spans: Dict[str, Dict[str, object]],
                      event_times: Dict[str, List[float]],
                      event_kinds: Dict[str, float]) -> List[Dict[str, object]]:
    """Cross-instrument headline rows (sharded throughput, convergence)."""
    rows: List[Dict[str, object]] = []
    windows = counters.get("shard.windows")
    window_span = spans.get("shard.window") or {}
    window_wall_s = (window_span.get("wall_ns_total") or 0) / 1e9
    if windows and window_wall_s > 0:
        rows.append(_row("windows_per_s", round(windows / window_wall_s, 1),
                         "windows/s"))
    delivered = counters.get("net.delivered")
    remote = counters.get("shard.remote_in")
    if delivered and remote is not None:
        rows.append(_row("cross_shard_delivery_fraction",
                         round(remote / delivered, 4), "fraction"))
    p95 = _nearest_rank_p95(event_times.get("convergence.first_legitimate", []))
    if p95 is not None:
        rows.append(_row("convergence_time_p95", round(p95, 3), "sim s"))
    for kind in sorted(event_kinds):
        rows.append(_row(f"events.{kind}", event_kinds[kind], "events"))
    return rows


def _load_obs_jsonl(path: str) -> Dict[str, object]:
    """One section from a ``repro-obs/v1`` JSONL export.

    Handles every shape the CLIs write: the single-run export (counter /
    gauge / histogram / span / event lines), the campaign export (``task``
    lines each carrying a full ``obs`` blob, plus one pre-folded ``merged``
    line) and the sharded merged export (``write_blob_jsonl``).  When a
    ``merged`` line is present it wins over re-summing the task lines.
    """
    counters: Dict[str, float] = {}
    spans: Dict[str, Dict[str, object]] = {}
    event_times: Dict[str, List[float]] = {}
    line_kinds: Dict[str, float] = {}
    summary_kinds: Dict[str, float] = {}
    merged_blob: Optional[Dict[str, object]] = None
    tasks = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "counter":
                counters[entry["name"]] = counters.get(entry["name"], 0) + entry["value"]
            elif kind == "span":
                spans[entry["name"]] = entry
            elif kind == "event":
                line_kinds[entry["kind"]] = line_kinds.get(entry["kind"], 0) + 1
                event_times.setdefault(entry["kind"], []).append(entry["sim_time"])
            elif kind == "event_summary":
                # Kind counts cover dropped records too; they win over
                # counting the (bounded) event lines.
                for name, count in (entry.get("kinds") or {}).items():
                    summary_kinds[name] = summary_kinds.get(name, 0) + count
            elif kind == "merged":
                merged_blob = entry.get("obs") or {}
            elif kind == "task":
                tasks += 1
                blob = entry.get("obs") or {}
                for name, value in blob.get("counters", {}).items():
                    counters[name] = counters.get(name, 0) + value
                for name, stats in blob.get("spans", {}).items():
                    merged = spans.setdefault(name, {"count": 0})
                    merged["count"] = merged.get("count", 0) + stats.get("count", 0)
                    merged["wall_ns_total"] = (merged.get("wall_ns_total", 0)
                                               + stats.get("wall_ns_total", 0))
                    p95 = stats.get("wall_ns_p95")
                    if p95 is not None:
                        merged["wall_ns_p95"] = max(p95,
                                                    merged.get("wall_ns_p95", 0))
                events = blob.get("events") or {}
                for name, count in (events.get("kinds") or {}).items():
                    line_kinds[name] = line_kinds.get(name, 0) + count
                for record in events.get("records", ()):
                    event_times.setdefault(record["kind"], []).append(
                        record["sim_time"])
    event_kinds = summary_kinds or line_kinds
    if merged_blob is not None:
        counters = dict(merged_blob.get("counters", {}))
        spans = dict(merged_blob.get("spans", {}))
        events = merged_blob.get("events") or {}
        event_kinds = dict(events.get("kinds", {}))
        event_times = {}
        for record in events.get("records", ()):
            event_times.setdefault(record["kind"], []).append(record["sim_time"])
    rows = _obs_rows_from_export({"counters": counters, "spans": spans})
    rows.extend(_derived_obs_rows(counters, spans, event_times, event_kinds))
    label = os.path.basename(path)
    if tasks:
        label += f" ({tasks} tasks)"
    return {"kind": "obs", "bench": label, "quick": False, "rows": rows,
            "source": path}


# -------------------------------------------------------------------- loading

def load_input(path: str) -> Optional[Dict[str, object]]:
    """Parse one artifact into a report section, or ``None`` if unrecognized."""
    if path.endswith(".jsonl"):
        return _load_obs_jsonl(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        return None
    if data.get("schema") == BENCH_SCHEMA:
        return _from_envelope(data, path)
    if "headline_broadcast_speedup" in data:
        return _from_legacy_delivery(data, path)
    if "headline_app_msgs_per_s" in data:
        return _from_legacy_traffic(data, path)
    return None


def _violates(row: Dict[str, object]) -> bool:
    budget = row.get("budget")
    if budget is None:
        return False
    value = row.get("value")
    if not isinstance(value, (int, float)):
        return False
    if row.get("direction", "min") == "min":
        return value < budget
    return value > budget


# ------------------------------------------------------------------ rendering

def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _trend_cell(section: Dict[str, object], row: Dict[str, object],
                previous: Optional[Dict[str, float]]) -> str:
    """Δ vs the previous gate run for one bench row (``—`` when unknown)."""
    if previous is None:
        return "—"
    value = row.get("value")
    prev = previous.get(f"{section['bench']}/{row['name']}")
    if not isinstance(value, (int, float)) or not isinstance(prev, (int, float)):
        return "—"
    delta = value - prev
    return f"{delta:+g}" if delta else "±0"


def render_markdown(sections: List[Dict[str, object]],
                    previous: Optional[Dict[str, float]] = None) -> str:
    lines = ["# Performance trajectory", "",
             "Folded benchmark artifacts and observability exports "
             "(`scripts/perf_trajectory.py`).  `status` is `ok` when the "
             "value meets its budget, `REGRESSION` when it does not, and "
             "blank for untracked (informational) rows."
             + ("  `Δ prev` compares against the previous run recorded in "
                "the trajectory history." if previous is not None else ""),
             ""]
    bench_sections = [s for s in sections if s["kind"] == "bench"]
    obs_sections = [s for s in sections if s["kind"] == "obs"]
    regressions = []
    trend = previous is not None
    for section in bench_sections:
        mode = "quick" if section["quick"] else "full"
        lines.append(f"## bench: {section['bench']} ({mode}) — "
                     f"`{section['source']}`")
        lines.append("")
        lines.append("| metric | value | unit | budget | status |"
                     + (" Δ prev |" if trend else ""))
        lines.append("|---|---:|---|---:|---|" + ("---:|" if trend else ""))
        for row in section["rows"]:
            budget = row.get("budget")
            if budget is None:
                status = ""
                budget_cell = "—"
            else:
                op = ">=" if row.get("direction", "min") == "min" else "<="
                budget_cell = f"{op} {_fmt(budget)}"
                status = "REGRESSION" if _violates(row) else "ok"
                if status == "REGRESSION":
                    regressions.append((section, row))
            cells = (f"| {row['name']} | {_fmt(row['value'])} "
                     f"| {row.get('unit', '')} | {budget_cell} | {status} |")
            if trend:
                cells += f" {_trend_cell(section, row, previous)} |"
            lines.append(cells)
        lines.append("")
    for section in obs_sections:
        lines.append(f"## obs: {section['bench']}")
        lines.append("")
        lines.append("| metric | value | unit |")
        lines.append("|---|---:|---|")
        for row in section["rows"]:
            lines.append(f"| {row['name']} | {_fmt(row['value'])} "
                         f"| {row.get('unit', '')} |")
        lines.append("")
    if bench_sections:
        lines.append(f"**budget summary:** {len(regressions)} regression(s) "
                     f"across {sum(len(s['rows']) for s in bench_sections)} "
                     f"tracked row(s) in {len(bench_sections)} benchmark(s).")
        lines.append("")
    return "\n".join(lines)


# ------------------------------------------------------------------- history

def _bench_values(sections: List[Dict[str, object]]) -> Dict[str, float]:
    """Numeric bench-row values keyed ``bench/metric`` for trend tracking."""
    values: Dict[str, float] = {}
    for section in sections:
        if section["kind"] != "bench":
            continue
        for row in section["rows"]:
            if isinstance(row.get("value"), (int, float)):
                values[f"{section['bench']}/{row['name']}"] = row["value"]
    return values


def load_history(path: str) -> List[Dict[str, object]]:
    """Read the run-indexed history file (missing file = empty history)."""
    entries: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_history(path: str, entries: List[Dict[str, object]],
                   values: Dict[str, float]) -> Dict[str, object]:
    """Append this gate run to the history (run-indexed, no timestamps)."""
    entry = {"run": len(entries) + 1, "values": values}
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


# ----------------------------------------------------------------------- main

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*",
                        help="bench JSON payloads and/or obs .jsonl exports "
                             "(default: BENCH_*.json in the current directory)")
    parser.add_argument("--out", default="PERF_TRAJECTORY.md", metavar="PATH",
                        help="markdown report path (default: %(default)s)")
    parser.add_argument("--json-out", default="PERF_TRAJECTORY.json",
                        metavar="PATH",
                        help="machine-readable report path (default: %(default)s)")
    parser.add_argument("--no-fail", action="store_true",
                        help="exit 0 even when a benchmark row breaks its "
                             "budget (regressions still reported)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="run-indexed trend file (e.g. "
                             "PERF_TRAJECTORY_HISTORY.jsonl): the previous "
                             "entry feeds a 'Δ prev' column in the markdown "
                             "report and this run's bench rows are appended")
    args = parser.parse_args(argv)

    paths = args.inputs or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("perf_trajectory: no inputs (pass artifact paths or run from a "
              "directory containing BENCH_*.json)", file=sys.stderr)
        return 2

    sections = []
    for path in paths:
        try:
            section = load_input(path)
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            print(f"perf_trajectory: skipping {path}: {exc}", file=sys.stderr)
            continue
        if section is None:
            print(f"perf_trajectory: skipping {path}: unrecognized payload",
                  file=sys.stderr)
            continue
        sections.append(section)
    if not sections:
        print("perf_trajectory: no parseable inputs", file=sys.stderr)
        return 2

    previous: Optional[Dict[str, float]] = None
    history_entries: List[Dict[str, object]] = []
    if args.history:
        history_entries = load_history(args.history)
        previous = history_entries[-1].get("values", {}) if history_entries else {}

    markdown = render_markdown(sections, previous=previous)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    regressions = [{"source": s["source"], "bench": s["bench"], **row}
                   for s in sections if s["kind"] == "bench"
                   for row in s["rows"] if _violates(row)]
    with open(args.json_out, "w", encoding="utf-8") as handle:
        json.dump({"schema": "perf-trajectory/v1", "sections": sections,
                   "regressions": regressions}, handle, indent=2)
        handle.write("\n")
    if args.history:
        entry = append_history(args.history, history_entries,
                               _bench_values(sections))
        print(f"history: appended run {entry['run']} to {args.history}")
    print(f"wrote {args.out} and {args.json_out} "
          f"({len(sections)} section(s), {len(regressions)} regression(s))")
    for entry in regressions:
        print(f"REGRESSION: {entry['bench']}/{entry['name']} = "
              f"{entry['value']} {entry.get('unit', '')} "
              f"(budget {entry['budget']}, {entry['direction']})")
    if regressions and not args.no_fail:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
