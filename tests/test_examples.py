"""Smoke tests for the scripts in examples/.

Each example runs as a quick-mode subprocess (``REPRO_QUICK=1``) so refactors
of the scenario/experiment layers cannot silently break the documented entry
points.  The tests only assert clean exit and non-empty output — the examples'
numbers are illustrative, not part of the verified results.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_every_example_is_covered():
    """The parametrized list below must track the directory contents."""
    assert EXAMPLE_SCRIPTS, "examples/ directory is empty?"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_clean_in_quick_mode(script):
    env = dict(os.environ)
    env["REPRO_QUICK"] = "1"
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        env=env, capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, (
        f"{script} failed (rc={completed.returncode})\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}")
    assert completed.stdout.strip(), f"{script} printed nothing"
