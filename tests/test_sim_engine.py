"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.timers import OneShotTimer, PeriodicTimer


class TestScheduling:
    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule(2.0, order.append, "b")
        simulator.schedule(1.0, order.append, "a")
        simulator.schedule(3.0, order.append, "c")
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now == 3.0

    def test_ties_break_in_scheduling_order(self, simulator):
        order = []
        simulator.schedule(1.0, order.append, 1)
        simulator.schedule(1.0, order.append, 2)
        simulator.run()
        assert order == [1, 2]

    def test_schedule_in_the_past_raises(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_cancelled_event_is_skipped(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        handle.cancel()
        simulator.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_respects_bound(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(5.0, fired.append, "b")
        simulator.run(until=2.0)
        assert fired == ["a"]
        assert simulator.now == 2.0
        simulator.run()
        assert fired == ["a", "b"]

    def test_max_events_bound(self, simulator):
        for i in range(10):
            simulator.schedule(float(i + 1), lambda: None)
        executed = simulator.run(max_events=4)
        assert executed == 4
        assert simulator.pending_events == 6

    def test_nested_scheduling_from_callbacks(self, simulator):
        seen = []

        def fire(depth):
            seen.append(depth)
            if depth < 3:
                simulator.schedule(1.0, fire, depth + 1)

        simulator.schedule(1.0, fire, 0)
        simulator.run()
        assert seen == [0, 1, 2, 3]
        assert simulator.now == 4.0

    def test_step_returns_false_when_empty(self, simulator):
        assert not simulator.step()

    def test_processed_event_counter(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.processed_events == 2

    def test_pending_events_live_counter(self, simulator):
        handles = [simulator.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert simulator.pending_events == 5
        handles[0].cancel()
        handles[0].cancel()  # double cancel must not double-decrement
        assert simulator.pending_events == 4
        simulator.run(max_events=2)
        assert simulator.pending_events == 2
        handles[4].cancel()
        assert simulator.pending_events == 1
        simulator.run()
        assert simulator.pending_events == 0
        # Cancelling an already-executed event must not underflow the counter.
        handles[3].cancel()
        assert simulator.pending_events == 0

    def test_pending_events_after_drain(self, simulator):
        simulator.schedule(1.0, lambda: None)
        handle = simulator.schedule(2.0, lambda: None)
        assert len(list(simulator.drain())) == 2
        assert simulator.pending_events == 0
        # Cancelling a drained event must not underflow the counter.
        handle.cancel()
        assert simulator.pending_events == 0


class TestScheduleMany:
    """Edge cases of the bulk-insertion path (heapify-amortized batches)."""

    def test_empty_batch_is_a_noop(self, simulator):
        handles = simulator.schedule_many([], lambda: None, [])
        assert handles == []
        assert simulator.pending_events == 0
        assert simulator.run() == 0

    def test_single_event_batch(self, simulator):
        fired = []
        [handle] = simulator.schedule_many([0.5], fired.append, [(1,)])
        assert handle.time == 0.5
        simulator.run()
        assert fired == [1]
        assert simulator.pending_events == 0

    def test_mismatched_lengths_raise(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_many([0.1, 0.2], lambda: None, [()])

    def test_negative_delay_rejected_before_any_insertion(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule_many([0.1, -0.2, 0.3], lambda x: None,
                                    [(1,), (2,), (3,)])
        # All-or-nothing: the valid prefix must not have been inserted.
        assert simulator.pending_events == 0
        assert simulator.run() == 0

    def test_batch_matches_individual_schedules_exactly(self):
        """Same times, seqs and execution order as a loop of schedule calls."""
        def run(bulk):
            sim = Simulator(seed=1)
            order = []
            sim.schedule(0.2, order.append, "pre")
            delays = [0.3, 0.1, 0.3, 0.0]
            args = [("a",), ("b",), ("c",), ("d",)]
            if bulk:
                sim.schedule_many(delays, order.append, args)
            else:
                for delay, arg in zip(delays, args):
                    sim.schedule(delay, order.append, *arg)
            sim.schedule(0.1, order.append, "post")
            sim.run()
            return order

        assert run(bulk=True) == run(bulk=False) == ["d", "b", "post", "pre", "a", "c"]

    def test_cancel_individual_batch_members(self, simulator):
        fired = []
        handles = simulator.schedule_many([0.1, 0.2, 0.3], fired.append,
                                          [(1,), (2,), (3,)])
        handles[1].cancel()
        assert simulator.pending_events == 2
        simulator.run()
        assert fired == [1, 3]
        # Cancelling after execution must not corrupt the pending counter.
        handles[0].cancel()
        assert simulator.pending_events == 0

    def test_cancel_from_inside_an_earlier_batch_event(self, simulator):
        fired = []
        handles = simulator.schedule_many(
            [0.1, 0.2], lambda tag: fired.append(tag), [("first",), ("second",)])

        simulator.schedule(0.15, handles[1].cancel)
        simulator.run()
        assert fired == ["first"]
        assert simulator.pending_events == 0

    def test_interleaves_with_periodic_handles(self, simulator):
        """Batched events and call_every ticks share one (time, seq) order."""
        order = []
        periodic = simulator.call_every(1.0, lambda: order.append(("tick", simulator.now)))
        simulator.schedule_many([0.5, 1.5, 2.5], order.append,
                                [(("batch", 0.5),), (("batch", 1.5),), (("batch", 2.5),)])
        simulator.run(until=2.0)
        periodic.cancel()
        simulator.run()
        assert order == [("batch", 0.5), ("tick", 1.0), ("batch", 1.5),
                         ("tick", 2.0), ("batch", 2.5)]
        assert simulator.pending_events == 0

    def test_large_batch_triggers_heapify_path(self, simulator):
        """A batch large relative to the heap takes the extend+heapify branch."""
        fired = []
        simulator.schedule(5.0, fired.append, "tail")
        delays = [0.001 * i for i in range(500, 0, -1)]
        simulator.schedule_many(delays, fired.append, [(i,) for i in range(500)])
        simulator.run()
        # Reverse-sorted delays must come back in time order.
        assert fired[:-1] == list(range(499, -1, -1))
        assert fired[-1] == "tail"


class TestPeriodicScheduling:
    def test_call_every_fires_repeatedly(self, simulator):
        ticks = []
        simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_call_every_cancel(self, simulator):
        ticks = []
        handle = simulator.call_every(1.0, lambda: ticks.append(simulator.now))
        simulator.run(until=2.5)
        handle.cancel()
        simulator.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_call_every_requires_positive_interval(self, simulator):
        with pytest.raises(SimulationError):
            simulator.call_every(0.0, lambda: None)

    def test_periodic_handle_pending_counter_on_cancel(self, simulator):
        # Exactly one occurrence is scheduled at a time; cancelling the handle
        # removes it from the pending count exactly once.
        handle = simulator.call_every(1.0, lambda: None)
        assert simulator.pending_events == 1
        simulator.run(until=3.5)
        assert simulator.pending_events == 1  # the next occurrence
        handle.cancel()
        assert handle.cancelled
        assert simulator.pending_events == 0
        # Cancelling again must not underflow the live counter.
        handle.cancel()
        assert simulator.pending_events == 0
        simulator.run(until=10.0)
        assert simulator.pending_events == 0

    def test_periodic_handle_cancel_before_first_fire(self, simulator):
        ticks = []
        handle = simulator.call_every(2.0, lambda: ticks.append(simulator.now))
        handle.cancel()
        assert simulator.pending_events == 0
        simulator.run(until=10.0)
        assert ticks == []
        assert simulator.processed_events == 0

    def test_periodic_handle_exposes_next_occurrence_time(self, simulator):
        handle = simulator.call_every(1.0, lambda: None)
        assert handle.time == 1.0
        assert not handle.cancelled
        simulator.run(until=2.5)
        assert handle.time == 3.0

    def test_periodic_handle_counter_across_drain(self, simulator):
        handle = simulator.call_every(1.0, lambda: None)
        simulator.run(until=1.5)
        drained = list(simulator.drain())
        assert len(drained) == 1  # the pending next occurrence
        assert simulator.pending_events == 0
        # A late cancel of the drained occurrence must not underflow.
        handle.cancel()
        assert simulator.pending_events == 0
        # The stopped flag keeps a stray drained callback from rescheduling.
        drained[0].callback(*drained[0].args, **drained[0].kwargs)
        assert simulator.pending_events == 0

    def test_periodic_callback_exception_does_not_corrupt_counter(self, simulator):
        calls = []

        def boom():
            calls.append(simulator.now)
            raise RuntimeError("callback failure")

        simulator.call_every(1.0, boom)
        with pytest.raises(RuntimeError):
            simulator.run(until=3.0)
        # The failed occurrence was consumed; nothing rescheduled itself.
        assert calls == [1.0]
        assert simulator.pending_events == 0


class TestReproducibility:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=7).rng.integers(0, 1000, size=5).tolist()
        b = Simulator(seed=7).rng.integers(0, 1000, size=5).tolist()
        assert a == b

    def test_spawn_rng_is_deterministic_given_call_order(self):
        sim1, sim2 = Simulator(seed=3), Simulator(seed=3)
        assert sim1.spawn_rng().integers(0, 10**6) == sim2.spawn_rng().integers(0, 10**6)


class TestTimers:
    def test_one_shot_timer_fires_once(self, simulator):
        fired = []
        timer = OneShotTimer(simulator, 2.0, lambda: fired.append(simulator.now))
        timer.start()
        simulator.run()
        assert fired == [2.0]
        assert not timer.pending

    def test_one_shot_restart_postpones(self, simulator):
        fired = []
        timer = OneShotTimer(simulator, 2.0, lambda: fired.append(simulator.now))
        timer.start()
        simulator.schedule(1.0, timer.restart)
        simulator.run()
        assert fired == [3.0]

    def test_one_shot_cancel(self, simulator):
        fired = []
        timer = OneShotTimer(simulator, 2.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        simulator.run()
        assert fired == []

    def test_periodic_timer_without_jitter(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        timer.start()
        simulator.run(until=3.5)
        timer.stop()
        assert ticks == [1.0, 2.0, 3.0]
        assert timer.expirations == 3

    def test_periodic_timer_with_jitter_stays_in_band(self, simulator):
        times = []
        timer = PeriodicTimer(simulator, 1.0, lambda: times.append(simulator.now),
                              jitter=0.2, rng=simulator.rng)
        timer.start()
        simulator.run(until=20.0)
        timer.stop()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(0.8 <= gap <= 1.2 for gap in gaps)

    def test_periodic_timer_stop_prevents_future_fires(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        timer.start()
        simulator.run(until=2.5)
        timer.stop()
        simulator.run(until=10.0)
        assert len(ticks) == 2

    def test_invalid_timer_parameters(self, simulator):
        with pytest.raises(SimulationError):
            OneShotTimer(simulator, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTimer(simulator, -1.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTimer(simulator, 1.0, lambda: None, jitter=1.5)
