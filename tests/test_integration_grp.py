"""Integration tests: full GRP deployments on the simulated wireless network.

These are the executable counterparts of the paper's propositions on small
(hence fast) topologies; the full-scale versions live in the benchmark harness.
"""


from repro.core.node import GRPConfig
from repro.core.predicates import agreement, legitimate, safety
from repro.core.protocol import build_grp_network
from repro.experiments.runner import run_with_sampler
from repro.experiments.scenarios import line_topology, static_random, two_cluster_topology
from repro.metrics.continuity import continuity_summary
from repro.metrics.convergence import stabilization_time
from repro.metrics.groups import max_group_diameter
from repro.net.geometry import line_positions


class TestTwoNodes:
    def test_pair_forms_a_group(self):
        deployment = build_grp_network({0: (0, 0), 1: (30, 0)}, GRPConfig(dmax=2),
                                       radio_range=50, seed=1)
        deployment.run(20.0)
        views = deployment.views()
        assert views[0] == views[1] == frozenset({0, 1})
        assert legitimate(views, deployment.topology(), 2)

    def test_out_of_range_nodes_stay_singletons(self):
        deployment = build_grp_network({0: (0, 0), 1: (500, 0)}, GRPConfig(dmax=2),
                                       radio_range=50, seed=1)
        deployment.run(20.0)
        views = deployment.views()
        assert views[0] == frozenset({0})
        assert views[1] == frozenset({1})


class TestChainTopologies:
    def test_three_node_chain_dmax_one_splits(self):
        deployment = line_topology(n=3, spacing=40.0, radio_range=50.0, dmax=1, seed=7)
        sampler = run_with_sampler(deployment, duration=40.0)
        final = sampler.last
        assert final.report.legitimate
        sizes = sorted(len(g) for g in set(final.groups.values()))
        assert sizes == [1, 2]

    def test_chain_of_five_respects_dmax(self):
        deployment = line_topology(n=5, spacing=40.0, radio_range=50.0, dmax=2, seed=3)
        sampler = run_with_sampler(deployment, duration=60.0)
        final = sampler.last
        assert final.report.legitimate
        assert max_group_diameter([final]) <= 2

    def test_whole_chain_groups_when_dmax_large_enough(self):
        deployment = line_topology(n=4, spacing=40.0, radio_range=50.0, dmax=3, seed=5)
        deployment.run(50.0)
        views = deployment.views()
        assert legitimate(views, deployment.topology(), 3)
        assert views[0] == frozenset({0, 1, 2, 3})


class TestSelfStabilization:
    def test_random_graph_reaches_legitimate_configuration(self):
        deployment = static_random(n=10, area=220.0, radio_range=100.0, dmax=3, seed=11)
        sampler = run_with_sampler(deployment, duration=70.0)
        assert stabilization_time(sampler.samples) is not None
        final = sampler.last
        assert final.report.legitimate

    def test_group_diameter_never_exceeds_dmax_after_convergence(self):
        deployment = static_random(n=10, area=220.0, radio_range=100.0, dmax=2, seed=13)
        sampler = run_with_sampler(deployment, duration=60.0, warmup=40.0)
        assert max_group_diameter(sampler.samples) <= 2

    def test_recovery_after_memory_corruption(self):
        from repro.net.faults import FaultInjector
        deployment = static_random(n=8, area=200.0, radio_range=100.0, dmax=2, seed=17)
        deployment.run(40.0)
        injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
        injector.random_memory_corruption(fraction=0.5, ghost_pool=["ghost-a", "ghost-b"])
        deployment.run(60.0)
        views = deployment.views()
        graph = deployment.topology()
        assert not any(node.alist.contains("ghost-a") or node.alist.contains("ghost-b")
                       for node in deployment.nodes.values())
        assert agreement(views) and safety(views, graph, 2)


class TestMergingAndContinuity:
    def test_two_clusters_merge_when_brought_into_range(self):
        deployment, left, right = two_cluster_topology(cluster_size=2, gap=400.0,
                                                       spacing=30.0, radio_range=60.0,
                                                       dmax=3, seed=19)
        deployment.run(30.0)
        views = deployment.views()
        assert views[left[0]] == frozenset(left)
        assert views[right[0]] == frozenset(right)
        # Teleport the right cluster next to the left one.
        shift = 400.0 - 60.0
        new_positions = {node: (pos[0] - shift, pos[1])
                         for node, pos in deployment.network.positions.items()
                         if node in right}
        deployment.network.set_positions(new_positions)
        deployment.run(40.0)
        views = deployment.views()
        assert views[left[0]] == frozenset(left + right)
        assert legitimate(views, deployment.topology(), 3)

    def test_no_member_lost_on_static_topology_after_formation(self):
        deployment = static_random(n=10, area=220.0, radio_range=100.0, dmax=3, seed=23)
        sampler = run_with_sampler(deployment, duration=60.0, warmup=20.0)
        summary = continuity_summary(sampler.transitions)
        assert summary.violations_under_topological == 0

    def test_group_splits_when_member_moves_too_far(self):
        deployment = build_grp_network(line_positions(range(3), spacing=40.0),
                                       GRPConfig(dmax=2), radio_range=50.0, seed=29)
        deployment.run(40.0)
        assert deployment.views()[0] == frozenset({0, 1, 2})
        # Node 2 drives away: the group must shrink back to {0, 1}.
        deployment.network.set_position(2, (1000.0, 0.0))
        deployment.run(40.0)
        views = deployment.views()
        assert views[0] == frozenset({0, 1})
        assert views[2] == frozenset({2})
        assert legitimate(views, deployment.topology(), 2)


class TestChurn:
    def test_node_reappearing_rejoins_its_group(self):
        deployment = build_grp_network(line_positions(range(3), spacing=30.0),
                                       GRPConfig(dmax=2), radio_range=40.0, seed=31)
        deployment.run(40.0)
        assert deployment.views()[1] == frozenset({0, 1, 2})
        deployment.network.deactivate_node(2)
        deployment.run(30.0)
        assert 2 not in deployment.views()
        assert deployment.views()[0] == frozenset({0, 1})
        deployment.network.activate_node(2)
        deployment.run(40.0)
        views = deployment.views()
        assert views[2] == frozenset({0, 1, 2})
        assert legitimate(views, deployment.topology(), 2)


class TestLossyChannel:
    def test_convergence_with_moderate_message_loss(self):
        deployment = static_random(n=8, area=200.0, radio_range=100.0, dmax=3, seed=37,
                                   loss_probability=0.2)
        deployment.run(80.0)
        views = deployment.views()
        graph = deployment.topology()
        assert agreement(views)
        assert safety(views, graph, 3)
