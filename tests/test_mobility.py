"""Unit tests for the mobility models and churn schedules."""

import numpy as np
import pytest

from repro.mobility.churn import ChurnEvent, ChurnSchedule, random_churn_schedule
from repro.mobility.highway import HighwayMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.static import StaticMobility
from repro.net.geometry import distance


def rng():
    return np.random.default_rng(42)


class TestStatic:
    def test_positions_never_change(self):
        model = StaticMobility()
        positions = {"a": (1.0, 2.0)}
        assert model.step(positions, 10.0) == positions


class TestRandomWaypoint:
    def test_nodes_stay_in_area(self):
        model = RandomWaypointMobility((100, 100), 1.0, 5.0, rng=rng())
        positions = model.initial_positions(range(10))
        for _ in range(50):
            positions = model.step(positions, 1.0)
        assert all(0 <= x <= 100 and 0 <= y <= 100 for x, y in positions.values())

    def test_speed_bounds_respected(self):
        model = RandomWaypointMobility((200, 200), 2.0, 2.0, rng=rng())
        positions = model.initial_positions(range(5))
        new_positions = model.step(positions, 1.0)
        for node in positions:
            assert distance(positions[node], new_positions[node]) <= 2.0 + 1e-9

    def test_pause_keeps_node_still(self):
        model = RandomWaypointMobility((10, 10), 100.0, 100.0, pause_time=5.0, rng=rng())
        positions = {"a": (5.0, 5.0)}
        # First step reaches the destination (speed is huge), then pauses.
        positions = model.step(positions, 1.0)
        paused = model.step(positions, 1.0)
        assert paused == positions

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility((10, 10), 5.0, 1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility((10, 10), 1.0, 2.0, pause_time=-1.0)


class TestRandomWalk:
    def test_nodes_reflected_inside_area(self):
        model = RandomWalkMobility((50, 50), speed=10.0, turn_interval=2.0, rng=rng())
        positions = model.initial_positions(range(8))
        for _ in range(40):
            positions = model.step(positions, 1.0)
        assert all(0 <= x <= 50 and 0 <= y <= 50 for x, y in positions.values())

    def test_zero_speed_stays_put(self):
        model = RandomWalkMobility((50, 50), speed=0.0, rng=rng())
        positions = {"a": (10.0, 10.0)}
        assert model.step(positions, 1.0) == positions


class TestHighway:
    def test_vehicles_advance_along_road(self):
        model = HighwayMobility(road_length=1000.0, lane_count=2, base_speed=20.0,
                                lane_change_probability=0.0, rng=rng())
        positions = model.initial_positions(range(6), spacing=50.0)
        moved = model.step(positions, 1.0)
        for node in positions:
            delta = (moved[node][0] - positions[node][0]) % 1000.0
            assert 15.0 <= delta <= 35.0

    def test_positions_wrap_around_road(self):
        model = HighwayMobility(road_length=100.0, lane_count=1, base_speed=30.0,
                                speed_jitter=0.0, rng=rng())
        positions = {"a": (90.0, 0.0)}
        model._states.clear()
        moved = model.step(positions, 1.0)
        assert 0 <= moved["a"][0] < 100.0

    def test_lane_change_updates_y(self):
        model = HighwayMobility(road_length=1000.0, lane_count=3, lane_spacing=4.0,
                                lane_change_probability=1.0, rng=rng())
        positions = model.initial_positions(range(4), spacing=50.0)
        moved = model.step(positions, 1.0)
        assert all(y % 4.0 == pytest.approx(0.0) for _, y in moved.values())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HighwayMobility(road_length=0)
        with pytest.raises(ValueError):
            HighwayMobility(road_length=10, lane_count=0)
        with pytest.raises(ValueError):
            HighwayMobility(road_length=10, lane_speeds=[1.0], lane_count=2)


class TestRPGM:
    def test_members_stay_near_group_centre(self):
        groups = [list(range(0, 5)), list(range(5, 10))]
        model = ReferencePointGroupMobility((500, 500), groups, group_speed=5.0,
                                            member_radius=20.0, rng=rng())
        positions = model.initial_positions(range(10))
        for _ in range(20):
            positions = model.step(positions, 1.0)
        # Members of the same mobility group stay reasonably close together.
        for group in groups:
            xs = [positions[n][0] for n in group]
            ys = [positions[n][1] for n in group]
            assert max(xs) - min(xs) <= 120.0
            assert max(ys) - min(ys) <= 120.0
        assert model.group_index_of(0) == 0
        assert model.group_index_of(7) == 1

    def test_requires_at_least_one_group(self):
        with pytest.raises(ValueError):
            ReferencePointGroupMobility((10, 10), [])


class TestChurn:
    def test_schedule_applies_events(self, simulator):
        from repro.net.network import Network
        from repro.net.radio import UnitDiskRadio
        from repro.sim.process import Process
        network = Network(simulator, radio=UnitDiskRadio(10.0))
        network.add_node(Process("a"), (0, 0))
        schedule = ChurnSchedule([ChurnEvent(1.0, "a", False), ChurnEvent(2.0, "a", True),
                                  ChurnEvent(3.0, "ghost", False)])
        schedule.install(network)
        simulator.run(until=1.5)
        assert not network.process("a").active
        simulator.run(until=2.5)
        assert network.process("a").active
        simulator.run()
        assert schedule.applied == 2  # the ghost event is ignored

    def test_random_schedule_is_sorted_and_bounded(self):
        schedule = random_churn_schedule(range(5), duration=100.0, off_rate=0.05,
                                         mean_off_time=10.0, rng=rng(), start=10.0)
        times = [e.time for e in schedule.events]
        assert times == sorted(times)
        assert all(10.0 <= t < 100.0 for t in times)

    def test_random_schedule_parameter_validation(self):
        with pytest.raises(ValueError):
            random_churn_schedule(range(2), 10.0, off_rate=-1.0, mean_off_time=1.0)
