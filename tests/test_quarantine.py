"""Unit tests for the quarantine mechanism."""

import pytest

from repro.core.quarantine import QuarantineTracker


class TestQuarantineTracker:
    def test_owner_always_cleared(self):
        tracker = QuarantineTracker("v", dmax=3)
        assert tracker.is_cleared("v")
        tracker.update({"v", "a"})
        assert tracker.counter("v") == 0

    def test_new_member_starts_at_dmax(self):
        tracker = QuarantineTracker("v", dmax=3)
        tracker.update({"a"})
        assert tracker.counter("a") == 3
        assert not tracker.is_cleared("a")

    def test_counter_decrements_each_round(self):
        tracker = QuarantineTracker("v", dmax=2)
        tracker.update({"a"})
        tracker.update({"a"})
        assert tracker.counter("a") == 1
        tracker.update({"a"})
        assert tracker.is_cleared("a")

    def test_departed_member_is_forgotten_and_restarts(self):
        tracker = QuarantineTracker("v", dmax=2)
        tracker.update({"a"})
        tracker.update({"a"})
        tracker.update(set())          # a left
        tracker.update({"a"})          # a came back
        assert tracker.counter("a") == 2

    def test_cleared_set(self):
        tracker = QuarantineTracker("v", dmax=1)
        tracker.update({"a", "b"})
        tracker.update({"a", "b"})
        assert tracker.cleared() == {"v", "a", "b"}

    def test_unknown_member_counter_is_dmax(self):
        tracker = QuarantineTracker("v", dmax=4)
        assert tracker.counter("stranger") == 4

    def test_reset_and_force(self):
        tracker = QuarantineTracker("v", dmax=3)
        tracker.update({"a"})
        tracker.update({"a"})
        tracker.reset("a")
        assert tracker.counter("a") == 3
        tracker.force("a", 1)
        assert tracker.counter("a") == 1
        tracker.force("v", 5)          # owner cannot be quarantined
        assert tracker.counter("v") == 0

    def test_clear_all(self):
        tracker = QuarantineTracker("v", dmax=3)
        tracker.update({"a", "b"})
        tracker.clear_all()
        assert tracker.counters() == {"v": 0}

    def test_invalid_dmax_rejected(self):
        with pytest.raises(ValueError):
            QuarantineTracker("v", dmax=0)
