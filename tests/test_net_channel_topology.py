"""Unit tests for channel models and topology utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.net.channel import CollisionChannel, LossyChannel, PerfectChannel
from repro.net.topology import (connected_components, distance_matrix_within,
                                group_diameter_ok, group_is_connected, merged_diameter_ok,
                                neighbors_within, snapshot_graph, subgraph_diameter,
                                subgraph_distance)


class TestChannels:
    def test_perfect_channel_always_delivers(self):
        channel = PerfectChannel(delay=0.5)
        decision = channel.decide("a", "b", 0.0)
        assert decision.delivered and decision.delay == 0.5

    def test_perfect_channel_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PerfectChannel(delay=-1.0)

    def test_lossy_channel_zero_loss(self):
        channel = LossyChannel(loss_probability=0.0, rng=np.random.default_rng(0))
        assert all(channel.decide("a", "b", t).delivered for t in range(20))

    def test_lossy_channel_full_loss(self):
        channel = LossyChannel(loss_probability=1.0, rng=np.random.default_rng(0))
        decisions = [channel.decide("a", "b", t) for t in range(10)]
        assert not any(d.delivered for d in decisions)
        assert channel.dropped == 10

    def test_lossy_channel_delay_bounds(self):
        channel = LossyChannel(min_delay=0.1, max_delay=0.2, rng=np.random.default_rng(0))
        delays = [channel.decide("a", "b", 0.0).delay for _ in range(50)]
        assert all(0.1 <= d <= 0.2 for d in delays)

    def test_lossy_channel_parameter_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss_probability=1.5)
        with pytest.raises(ValueError):
            LossyChannel(min_delay=0.5, max_delay=0.1)

    def test_collision_channel_drops_overlapping_transmissions(self):
        channel = CollisionChannel(collision_window=1.0, rng=np.random.default_rng(0))
        first = channel.decide("a", "r", 0.0)
        second = channel.decide("b", "r", 0.5)
        assert first.delivered and not second.delivered
        assert second.reason == "collision"
        assert channel.collisions == 1

    def test_collision_channel_allows_spaced_transmissions(self):
        channel = CollisionChannel(collision_window=1.0, rng=np.random.default_rng(0))
        assert channel.decide("a", "r", 0.0).delivered
        assert channel.decide("b", "r", 2.0).delivered

    def test_same_sender_does_not_collide_with_itself(self):
        channel = CollisionChannel(collision_window=1.0)
        assert channel.decide("a", "r", 0.0).delivered
        assert channel.decide("a", "r", 0.1).delivered


def chain_graph(n):
    g = nx.path_graph(n)
    return g


class TestTopologyUtilities:
    def test_snapshot_graph_requires_symmetric_links(self):
        positions = {"a": (0, 0), "b": (5, 0), "c": (100, 0)}
        ranges = {"a": 10.0, "b": 10.0, "c": 500.0}

        def link(sender, receiver, spos, rpos):
            return ((spos[0] - rpos[0]) ** 2 + (spos[1] - rpos[1]) ** 2) ** 0.5 <= ranges[sender]

        graph = snapshot_graph(positions, link)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")  # c hears nobody's answer

    def test_subgraph_distance_respects_membership(self):
        g = chain_graph(4)
        assert subgraph_distance(g, {0, 1, 2, 3}, 0, 3) == 3
        assert subgraph_distance(g, {0, 3}, 0, 3) == float("inf")
        assert subgraph_distance(g, {0, 1}, 0, 99) == float("inf")

    def test_subgraph_diameter(self):
        g = chain_graph(4)
        assert subgraph_diameter(g, {0, 1, 2}) == 2
        assert subgraph_diameter(g, {0, 2}) == float("inf")
        assert subgraph_diameter(g, {0}) == 0
        assert subgraph_diameter(g, set()) == 0
        assert subgraph_diameter(g, {0, 99}) == float("inf")

    def test_group_connectivity_and_diameter_ok(self):
        g = chain_graph(5)
        assert group_is_connected(g, {0, 1, 2})
        assert not group_is_connected(g, {0, 2})
        assert group_diameter_ok(g, {0, 1, 2}, dmax=2)
        assert not group_diameter_ok(g, {0, 1, 2, 3}, dmax=2)

    def test_merged_diameter_ok(self):
        g = chain_graph(6)
        assert merged_diameter_ok(g, {0, 1}, {2, 3}, dmax=3)
        assert not merged_diameter_ok(g, {0, 1}, {2, 3, 4}, dmax=3)
        # Not disconnected: the chain connects the union, but too long.
        assert not merged_diameter_ok(g, {0, 1}, {4, 5}, dmax=10)
        # the union {0,1,4,5} misses nodes 2,3 so its subgraph is disconnected
        assert subgraph_diameter(g, {0, 1, 4, 5}) == float("inf")

    def test_distance_matrix_within(self):
        g = chain_graph(4)
        matrix = distance_matrix_within(g, [0, 1, 3])
        assert matrix[0][1] == 1
        assert matrix[0][3] == float("inf")

    def test_neighbors_within(self):
        g = chain_graph(5)
        assert neighbors_within(g, 2, 1) == {1, 3}
        assert neighbors_within(g, 2, 2) == {0, 1, 3, 4}
        assert neighbors_within(g, 99, 2) == set()

    def test_connected_components_deterministic(self):
        g = nx.Graph()
        g.add_edges_from([(1, 2), (3, 4)])
        comps = connected_components(g)
        assert comps == connected_components(g)
        assert {frozenset({1, 2}), frozenset({3, 4})} == set(comps)
