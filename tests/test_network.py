"""Integration-ish tests for the Network broadcast substrate."""

import pytest

from repro.net.channel import LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder


class Echo(Process):
    """Test process recording everything it receives."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.inbox = []

    def on_message(self, sender, payload):
        self.inbox.append((sender, payload))


def build_network(positions, radio_range=10.0, channel=None, trace=None, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, radio=UnitDiskRadio(radio_range), channel=channel, trace=trace)
    for node_id, position in positions.items():
        network.add_node(Echo(node_id), position)
    return sim, network


class TestBroadcast:
    def test_broadcast_reaches_only_vicinity(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (50, 0)})
        delivered = network.broadcast("a", "hello")
        sim.run()
        assert delivered == 1
        assert network.process("b").inbox == [("a", "hello")]
        assert network.process("c").inbox == []

    def test_inactive_nodes_neither_send_nor_receive(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.deactivate_node("b")
        assert network.broadcast("a", "x") == 0
        network.deactivate_node("a")
        assert network.broadcast("a", "x") == 0
        network.activate_node("a")
        network.activate_node("b")
        assert network.broadcast("a", "x") == 1

    def test_trace_records_send_and_receive(self):
        trace = TraceRecorder()
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, trace=trace)
        network.broadcast("a", "x")
        sim.run()
        assert trace.count("send") == 1
        assert trace.count("receive") == 1

    def test_lossy_channel_drops_are_counted(self):
        channel = LossyChannel(loss_probability=1.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        network.broadcast("a", "x")
        sim.run()
        assert network.messages_dropped == 1
        assert network.process("b").inbox == []

    def test_delayed_delivery(self):
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        network.broadcast("a", "x")
        assert network.process("b").inbox == []
        sim.run()
        assert sim.now == 2.0
        assert network.process("b").inbox == [("a", "x")]

    def test_delivery_counted_at_delivery_time_under_churn(self):
        # Regression: messages_delivered used to be incremented at schedule
        # time, over-counting when the receiver deactivated during the channel
        # delay.
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (5, 5)},
                                     channel=channel)
        accepted = network.broadcast("a", "x")
        assert accepted == 2
        assert network.messages_delivered == 0
        sim.schedule(1.0, network.deactivate_node, "b")
        sim.run()
        assert network.process("b").inbox == []
        assert network.process("c").inbox == [("a", "x")]
        assert network.messages_delivered == 1
        assert network.messages_dropped == 0

    def test_delivery_not_counted_for_removed_receiver(self):
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        assert network.broadcast("a", "x") == 1
        network.remove_node("b")
        sim.run()
        assert network.messages_delivered == 0


class TestTopologySnapshots:
    def test_topology_reflects_positions(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (50, 0)})
        graph = network.topology()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")
        assert network.neighbors_of("a") == {"b"}

    def test_topology_excludes_inactive_nodes(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.deactivate_node("b")
        assert "b" not in network.topology()

    def test_directed_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        digraph = network.directed_topology()
        assert digraph.has_edge("a", "b") and digraph.has_edge("b", "a")

    def test_set_position_updates_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.set_position("b", (100, 0))
        assert not network.topology().has_edge("a", "b")
        with pytest.raises(KeyError):
            network.set_position("zzz", (0, 0))


class TestNodeManagement:
    def test_duplicate_node_rejected(self):
        sim, network = build_network({"a": (0, 0)})
        with pytest.raises(ValueError):
            network.add_node(Echo("a"), (1, 1))

    def test_remove_node(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.remove_node("b")
        assert "b" not in network.node_ids
        assert network.broadcast("a", "x") == 0

    def test_position_listener_called_on_mobility_step(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        seen = []
        network.add_position_listener(lambda t, positions: seen.append(t))
        network.start()
        sim.run(until=3.5)
        assert seen == [1.0, 2.0, 3.0]
        network.stop_mobility()
        sim.run(until=10.0)
        assert len(seen) == 3


class TestGenerationBumping:
    def test_set_positions_bumps_generation_once(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (8, 0)})
        before = network.topology_generation
        network.set_positions({"a": (1, 0), "b": (6, 0), "c": (9, 0)})
        assert network.topology_generation == before + 1

    def test_set_positions_rejects_unknown_node_without_side_effects(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        before = network.topology_generation
        with pytest.raises(KeyError):
            network.set_positions({"a": (1, 0), "zzz": (2, 0)})
        # Nothing moved and no snapshot was invalidated.
        assert network.position_of("a") == (0.0, 0.0)
        assert network.topology_generation == before

    def test_set_positions_empty_is_a_no_op(self):
        sim, network = build_network({"a": (0, 0)})
        before = network.topology_generation
        network.set_positions({})
        assert network.topology_generation == before

    def test_set_positions_updates_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (50, 0)})
        assert not network.topology().has_edge("a", "b")
        network.set_positions({"b": (5, 0)})
        assert network.topology().has_edge("a", "b")

    def test_mobility_step_shares_one_snapshot_across_listeners(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        snapshots = []
        network.add_position_listener(lambda t, positions: snapshots.append(positions))
        network.add_position_listener(lambda t, positions: snapshots.append(positions))
        network.start()
        sim.run(until=1.5)
        assert len(snapshots) == 2
        # Both listeners of one step saw the very same dict (built once)...
        assert snapshots[0] is snapshots[1]
        # ...which is a snapshot, not the live position map.
        assert snapshots[0] == {"a": (0.0, 0.0)}
        snapshots[0]["a"] = (99.0, 99.0)
        assert network.position_of("a") == (0.0, 0.0)

    def test_mobility_step_bumps_generation_once_per_step(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (5, 0))
        network.start()
        before = network.topology_generation
        sim.run(until=1.5)  # exactly one mobility step
        assert network.topology_generation == before + 1
