"""Integration-ish tests for the Network broadcast substrate."""

import pytest

from repro.net.channel import LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder


class Echo(Process):
    """Test process recording everything it receives."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.inbox = []

    def on_message(self, sender, payload):
        self.inbox.append((sender, payload))


def build_network(positions, radio_range=10.0, channel=None, trace=None, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, radio=UnitDiskRadio(radio_range), channel=channel, trace=trace)
    for node_id, position in positions.items():
        network.add_node(Echo(node_id), position)
    return sim, network


class TestBroadcast:
    def test_broadcast_reaches_only_vicinity(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (50, 0)})
        delivered = network.broadcast("a", "hello")
        sim.run()
        assert delivered == 1
        assert network.process("b").inbox == [("a", "hello")]
        assert network.process("c").inbox == []

    def test_inactive_nodes_neither_send_nor_receive(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.deactivate_node("b")
        assert network.broadcast("a", "x") == 0
        network.deactivate_node("a")
        assert network.broadcast("a", "x") == 0
        network.activate_node("a")
        network.activate_node("b")
        assert network.broadcast("a", "x") == 1

    def test_trace_records_send_and_receive(self):
        trace = TraceRecorder()
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, trace=trace)
        network.broadcast("a", "x")
        sim.run()
        assert trace.count("send") == 1
        assert trace.count("receive") == 1

    def test_lossy_channel_drops_are_counted(self):
        channel = LossyChannel(loss_probability=1.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        network.broadcast("a", "x")
        sim.run()
        assert network.messages_dropped == 1
        assert network.process("b").inbox == []

    def test_delayed_delivery(self):
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        network.broadcast("a", "x")
        assert network.process("b").inbox == []
        sim.run()
        assert sim.now == 2.0
        assert network.process("b").inbox == [("a", "x")]

    def test_delivery_counted_at_delivery_time_under_churn(self):
        # Regression: messages_delivered used to be incremented at schedule
        # time, over-counting when the receiver deactivated during the channel
        # delay.
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (5, 5)},
                                     channel=channel)
        accepted = network.broadcast("a", "x")
        assert accepted == 2
        assert network.messages_delivered == 0
        sim.schedule(1.0, network.deactivate_node, "b")
        sim.run()
        assert network.process("b").inbox == []
        assert network.process("c").inbox == [("a", "x")]
        assert network.messages_delivered == 1
        assert network.messages_dropped == 0

    def test_delivery_not_counted_for_removed_receiver(self):
        channel = PerfectChannel(delay=2.0)
        sim, network = build_network({"a": (0, 0), "b": (5, 0)}, channel=channel)
        assert network.broadcast("a", "x") == 1
        network.remove_node("b")
        sim.run()
        assert network.messages_delivered == 0


class TestTopologySnapshots:
    def test_topology_reflects_positions(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (50, 0)})
        graph = network.topology()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")
        assert network.neighbors_of("a") == {"b"}

    def test_topology_excludes_inactive_nodes(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.deactivate_node("b")
        assert "b" not in network.topology()

    def test_directed_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        digraph = network.directed_topology()
        assert digraph.has_edge("a", "b") and digraph.has_edge("b", "a")

    def test_set_position_updates_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.set_position("b", (100, 0))
        assert not network.topology().has_edge("a", "b")
        with pytest.raises(KeyError):
            network.set_position("zzz", (0, 0))


class TestNodeManagement:
    def test_duplicate_node_rejected(self):
        sim, network = build_network({"a": (0, 0)})
        with pytest.raises(ValueError):
            network.add_node(Echo("a"), (1, 1))

    def test_remove_node(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.remove_node("b")
        assert "b" not in network.node_ids
        assert network.broadcast("a", "x") == 0

    def test_position_listener_called_on_mobility_step(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        seen = []
        network.add_position_listener(lambda t, positions: seen.append(t))
        network.start()
        sim.run(until=3.5)
        assert seen == [1.0, 2.0, 3.0]
        network.stop_mobility()
        sim.run(until=10.0)
        assert len(seen) == 3


class TestGenerationBumping:
    def test_set_positions_bumps_generation_once(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0), "c": (8, 0)})
        before = network.topology_generation
        network.set_positions({"a": (1, 0), "b": (6, 0), "c": (9, 0)})
        assert network.topology_generation == before + 1

    def test_set_positions_rejects_unknown_node_without_side_effects(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        before = network.topology_generation
        with pytest.raises(KeyError):
            network.set_positions({"a": (1, 0), "zzz": (2, 0)})
        # Nothing moved and no snapshot was invalidated.
        assert network.position_of("a") == (0.0, 0.0)
        assert network.topology_generation == before

    def test_set_position_unknown_node_leaves_caches_untouched(self):
        # KeyError must fire before any index/link-state/store mutation: a
        # failed scalar move leaves the generation counter and the cached
        # snapshot objects exactly as they were (cache-truth invariant).
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        graph = network._symmetric_snapshot()
        directed = network._directed_snapshot()
        before = network.topology_generation
        with pytest.raises(KeyError):
            network.set_position("zzz", (1.0, 1.0))
        assert network.topology_generation == before
        assert network._symmetric_snapshot() is graph
        assert network._directed_snapshot() is directed

    def test_set_position_malformed_position_leaves_caches_untouched(self):
        # Coordinate coercion failures are raised before mutation too, so a
        # half-valid position can never partially move a node.
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        graph = network._symmetric_snapshot()
        before = network.topology_generation
        with pytest.raises((TypeError, ValueError)):
            network.set_position("a", (1.0, "not-a-number"))
        assert network.position_of("a") == (0.0, 0.0)
        assert network.topology_generation == before
        assert network._symmetric_snapshot() is graph

    def test_set_positions_empty_is_a_no_op(self):
        sim, network = build_network({"a": (0, 0)})
        before = network.topology_generation
        network.set_positions({})
        assert network.topology_generation == before

    def test_set_positions_updates_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (50, 0)})
        assert not network.topology().has_edge("a", "b")
        network.set_positions({"b": (5, 0)})
        assert network.topology().has_edge("a", "b")

    def test_mobility_step_shares_one_snapshot_across_listeners(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        snapshots = []
        network.add_position_listener(lambda t, positions: snapshots.append(positions))
        network.add_position_listener(lambda t, positions: snapshots.append(positions))
        network.start()
        sim.run(until=1.5)
        assert len(snapshots) == 2
        # Both listeners of one step saw the very same dict (built once)...
        assert snapshots[0] is snapshots[1]
        # ...which is a snapshot, not the live position map.
        assert snapshots[0] == {"a": (0.0, 0.0)}
        snapshots[0]["a"] = (99.0, 99.0)
        assert network.position_of("a") == (0.0, 0.0)

    def test_mobility_step_bumps_generation_once_per_step(self):
        # A step that moves nodes invalidates exactly once — not once per
        # node; a step that moves nobody invalidates nothing (see
        # TestMobilityDeltas.test_static_step_keeps_caches_warm).
        from repro.mobility.random_walk import RandomWalkMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0),
                          mobility=RandomWalkMobility((100.0, 100.0), speed=5.0))
        network.add_node(Echo("a"), (50, 50))
        network.add_node(Echo("b"), (55, 50))
        network.start()
        before = network.topology_generation
        sim.run(until=1.5)  # exactly one mobility step
        assert network.topology_generation == before + 1


class TestRadioMutationNotification:
    """In-place radio mutations must invalidate cached neighbourhoods.

    Before the mutation listeners, ``radio.radio_range = x`` silently served
    stale topology snapshots (the cache key only sees ``max_range()`` at
    lookup time, and the link-state cache never re-tests links on its own).
    The stock radios now notify every listening network from their setters.
    """

    def test_unit_disk_range_change_refreshes_topology(self):
        sim, network = build_network({"a": (0, 0), "b": (20, 0)})
        assert not network.topology().has_edge("a", "b")
        assert network.neighbors_of("a") == set()
        network.radio.radio_range = 25.0
        assert network.topology().has_edge("a", "b")
        assert network.neighbors_of("a") == {"b"}
        network.radio.radio_range = 10.0
        assert network.neighbors_of("a") == set()
        assert network.broadcast("a", "ping") == 0

    def test_shrinking_nonmaximal_asymmetric_range_refreshes(self):
        from repro.net.radio import AsymmetricRangeRadio
        sim = Simulator(seed=0)
        radio = AsymmetricRangeRadio(default_range=30.0, ranges={"a": 50.0})
        network = Network(sim, radio=radio)
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (40, 0))
        # a -> b only (asymmetric): no symmetric edge, but a directed arc.
        assert network.directed_topology().has_edge("a", "b")
        # Shrinking a *non-maximal* range leaves max_range() untouched — the
        # historical stale-cache case.
        radio.set_range("b", 20.0)
        assert network.directed_topology().has_edge("a", "b")
        radio.set_range("a", 35.0)  # still the maximum, max_range changes
        assert not network.directed_topology().has_edge("a", "b")
        radio.set_range("a", 45.0)
        assert network.directed_topology().has_edge("a", "b")

    def test_default_range_assignment_notifies(self):
        from repro.net.radio import AsymmetricRangeRadio
        sim = Simulator(seed=0)
        radio = AsymmetricRangeRadio(default_range=10.0)
        network = Network(sim, radio=radio)
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (15, 0))
        assert network.neighbors_of("a") == set()
        radio.default_range = 20.0
        assert network.neighbors_of("a") == {"b"}

    def test_probabilistic_inner_range_assignment_notifies(self):
        from repro.net.radio import ProbabilisticDiskRadio
        sim = Simulator(seed=0)
        radio = ProbabilisticDiskRadio(10.0, 30.0, 0.5)
        network = Network(sim, radio=radio)
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (15, 0))
        # b sits in the fading band: not a (reliable) topology link.
        assert network.neighbors_of("a") == set()
        radio.inner_range = 20.0
        assert network.neighbors_of("a") == {"b"}

    def test_broadcast_fast_path_sees_mutated_radius(self):
        sim, network = build_network({"a": (0, 0), "b": (8, 0), "c": (20, 0)})
        assert network.broadcast("a", "m1") == 1  # warms the link-state cache
        network.radio.radio_range = 30.0
        assert network.broadcast("a", "m2") == 2
        sim.run()
        assert network.process("c").inbox == [("a", "m2")]

    def test_setter_validation_unchanged(self):
        from repro.net.radio import AsymmetricRangeRadio, ProbabilisticDiskRadio
        with pytest.raises(ValueError):
            UnitDiskRadio(10.0).radio_range = 0.0
        with pytest.raises(ValueError):
            AsymmetricRangeRadio(10.0).default_range = -1.0
        radio = ProbabilisticDiskRadio(10.0, 30.0, 0.5)
        with pytest.raises(ValueError):
            radio.inner_range = 40.0  # beyond outer_range
        with pytest.raises(ValueError):
            radio.outer_range = 5.0  # below inner_range
        with pytest.raises(ValueError):
            radio.band_probability = 1.5


class TestMobilityDeltas:
    def test_static_step_keeps_caches_warm(self):
        from repro.mobility.static import StaticMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=StaticMobility())
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (5, 0))
        network.start()
        before = network.topology_generation
        sim.run(until=3.5)  # three no-op mobility steps
        # Nothing moved, so snapshots/receiver caches were never invalidated.
        assert network.topology_generation == before
        assert network.neighbors_of("a") == {"b"}

    def test_moving_step_still_bumps(self):
        from repro.mobility.random_walk import RandomWalkMobility
        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0),
                          mobility=RandomWalkMobility((100.0, 100.0), speed=5.0))
        network.add_node(Echo("a"), (50, 50))
        network.start()
        before = network.topology_generation
        sim.run(until=1.5)
        assert network.topology_generation > before

    def test_moved_nodes_helper_matches_network_comparison(self):
        from repro.mobility.base import moved_nodes
        before = {"a": (0.0, 0.0), "b": (1.0, 2.0)}
        after = {"a": (0, 0), "b": (1.0, 2.5), "c": (9, 9)}
        assert moved_nodes(before, after) == {"b": (1.0, 2.5), "c": (9.0, 9.0)}


class TestMutationListenerLifetime:
    def test_dead_networks_are_not_kept_alive_by_the_radio(self):
        import gc
        import weakref as weakref_module
        radio = UnitDiskRadio(10.0)
        sim = Simulator(seed=0)
        network = Network(sim, radio=radio)
        network.add_node(Echo("a"), (0, 0))
        ref = weakref_module.ref(network)
        del network, sim
        gc.collect()
        assert ref() is None  # the listener registration held no strong ref
        radio.radio_range = 20.0  # notifying with a dead listener is a no-op
        assert radio.radio_range == 20.0


class TestCustomRadioContract:
    def test_silent_max_range_change_is_auto_detected(self):
        """Pre-PR contract: a mutation visible through max_range() needs no
        explicit invalidate_topology(), even on a notification-less radio."""
        from repro.net.radio import RadioModel

        class PlainRadio(RadioModel):
            def __init__(self, r):
                self.r = r  # plain attribute, no setter notification

            def in_vicinity(self, sender, receiver, sender_pos, receiver_pos):
                from repro.net.geometry import distance
                return distance(sender_pos, receiver_pos) <= self.r

            def max_range(self):
                return self.r

            def deterministic_vicinity(self):
                return True

        sim = Simulator(seed=0)
        network = Network(sim, radio=PlainRadio(10.0))
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (20, 0))
        assert network.neighbors_of("a") == set()
        assert network.broadcast("a", "x") == 0
        network.radio.r = 30.0  # silent, but visible through max_range()
        assert network.topology().has_edge("a", "b")
        assert network.neighbors_of("a") == {"b"}
        assert network.broadcast("a", "y") == 1

    def test_no_op_set_positions_keeps_caches_warm(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.topology()
        before = network.topology_generation
        network.set_positions({"a": (0.0, 0.0), "b": (5.0, 0.0)})  # no change
        assert network.topology_generation == before
        network.set_positions({"a": (1.0, 0.0), "b": (5.0, 0.0)})  # one change
        assert network.topology_generation == before + 1


class TestVectorizedToggle:
    def test_disabling_drops_linkstate_maintenance(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.broadcast("a", "x")  # builds the (array) link-state cache
        assert network._array_ls is not None
        network.vectorized_delivery = False
        # scan path pays zero maintenance on either backend
        assert network._array_ls is None and network._linkstate is None
        network.set_position("a", (1, 0))  # must not touch a dead cache
        assert network.neighbors_of("a") == {"b"}
        network.vectorized_delivery = True
        assert network.broadcast("a", "y") == 1  # rebuilt on demand

    def test_disabling_drops_dict_linkstate_too(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.array_state = False
        network.broadcast("a", "x")  # builds the dict link-state cache
        assert network._linkstate is not None
        network.vectorized_delivery = False
        assert network._linkstate is None
        network.set_position("a", (1, 0))
        assert network.neighbors_of("a") == {"b"}
        network.vectorized_delivery = True
        assert network.broadcast("a", "y") == 1

    def test_disabling_array_state_falls_back_to_dict_cache(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.broadcast("a", "x")
        assert network._array_ls is not None
        network.array_state = False
        assert network._array_ls is None and network._store is None
        assert network.broadcast("a", "y") == 1  # dict cache built on demand
        assert network._linkstate is not None
        network.array_state = True  # store rebuilt from the node table
        assert network.neighbors_of("a") == {"b"}
        assert network._store is not None


class TestInPlaceMobilityModels:
    def test_model_mutating_its_input_still_updates_the_engine(self):
        """Models receive a copy: in-place mutation + return keeps working."""
        from repro.mobility.base import MobilityModel

        class InPlaceShift(MobilityModel):
            def step(self, positions, dt):
                for node in list(positions):
                    x, y = positions[node]
                    positions[node] = (x + 6.0, y)  # mutate the mapping given
                return positions

        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0), mobility=InPlaceShift())
        network.add_node(Echo("a"), (0, 0))
        network.add_node(Echo("b"), (8, 0))
        assert network.neighbors_of("a") == {"b"}
        network.start()
        before = network.topology_generation
        sim.run(until=1.5)  # one step: both shift +6, distance stays 8
        assert network.position_of("a") == (6.0, 0.0)
        assert network.topology_generation > before
        # Index/link-state followed the move: still neighbours at new spots.
        assert network.neighbors_of("a") == {"b"}
        assert network.broadcast("a", "x") == 1

    def test_disabling_spatial_index_also_drops_linkstate(self):
        sim, network = build_network({"a": (0, 0), "b": (5, 0)})
        network.broadcast("a", "x")
        assert network._array_ls is not None
        network.use_spatial_index = False
        assert network._array_ls is None and network._linkstate is None
        network.set_position("a", (1, 0))  # brute baseline: no upkeep
        assert network.neighbors_of("a") == {"b"}
        network.use_spatial_index = True
        assert network.broadcast("a", "y") == 1
