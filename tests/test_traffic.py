"""Tests of the group-application traffic subsystem.

Covers the spec/registry value layer, the delivery ledger's accounting, the
generators' behaviour on live deployments, bit-exact replay across every
{spatial index x vectorized delivery} backend, the campaign traffic axis
(task ids, seed streams, spec hashes, store roundtrip, serial vs pool
equality) and the CLI surface (``--traffic`` / ``--traffic-sweep`` /
``--list-traffic`` and the final campaign summary line).
"""

import json

import pytest

from repro.campaign import CampaignSpec, ResultStore, deterministic_report, run_campaign
from repro.experiments.cli import main
from repro.experiments.suite import run_experiment
from repro.scenarios import ScenarioSpec, build
from repro.sim.randomness import derive_seed
from repro.traffic import (AppMessage, DeliveryLedger, TrafficSpec, attach_traffic,
                           format_traffic_catalog, get_traffic, normalize_traffic_spec,
                           traffic_names)

# --------------------------------------------------------------------- specs


class TestTrafficSpec:
    def test_params_canonically_ordered_and_hashable(self):
        a = TrafficSpec.create("periodic_beacon", size=32, interval=0.5)
        b = TrafficSpec.create("periodic_beacon", interval=0.5, size=32)
        assert a == b
        assert hash(a) == hash(b)
        assert {a, b} == {a}

    def test_json_roundtrip(self):
        spec = TrafficSpec.create("bursty_pubsub", burst_size=4, mean_gap=2.5)
        restored = TrafficSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert restored == spec
        assert restored.canonical_json() == spec.canonical_json()

    def test_label_is_compact_and_distinct(self):
        plain = TrafficSpec.create("state_sync")
        tuned = TrafficSpec.create("state_sync", interval=2.0)
        assert plain.label() == "state_sync"
        assert tuned.label() == "state_sync[interval=2.0]"
        assert plain.spec_key() != tuned.spec_key()

    def test_with_params_merges(self):
        spec = TrafficSpec.create("periodic_beacon", interval=1.0)
        assert spec.with_params(interval=0.2).param_dict == {"interval": 0.2}

    def test_scenario_and_traffic_specs_are_distinct_values(self):
        traffic = TrafficSpec.create("periodic_beacon", interval=1.0)
        scenario = ScenarioSpec.create("periodic_beacon", interval=1.0)
        assert traffic != scenario


class TestRegistry:
    def test_catalog_contains_the_four_patterns(self):
        assert set(traffic_names()) >= {"periodic_beacon", "bursty_pubsub",
                                        "request_reply", "state_sync"}

    def test_catalog_renders_every_pattern_and_parameter(self):
        text = format_traffic_catalog()
        for name in traffic_names():
            assert name in text
            for param in get_traffic(name).parameters:
                assert param.name in text

    def test_normalize_coerces_and_rejects_unknowns(self):
        spec = normalize_traffic_spec(TrafficSpec.create("periodic_beacon",
                                                         interval="2", size="16"))
        assert spec.param_dict == {"interval": 2.0, "size": 16}
        with pytest.raises(ValueError):
            normalize_traffic_spec(TrafficSpec.create("periodic_beacon", nope=1))
        with pytest.raises(KeyError):
            normalize_traffic_spec(TrafficSpec.create("no_such_traffic"))

    def test_resolve_params_fills_defaults(self):
        definition = get_traffic("request_reply")
        resolved = definition.resolve_params({"interval": 1.0})
        assert resolved["interval"] == 1.0
        assert resolved["reply_delay"] == 0.05


# -------------------------------------------------------------------- ledger


def _msg(sender, seq, t, group, size=10, kind="k", data=None):
    return AppMessage(kind=kind, sender=sender, seq=seq, send_time=t,
                      group=frozenset(group), size=size, data=data)


class TestDeliveryLedger:
    def test_in_group_delivery_accounting(self):
        ledger = DeliveryLedger()
        msg = _msg("a", 1, 0.0, {"a", "b", "c"})
        ledger.record_send(msg)
        ledger.record_delivery("b", msg, 0.25)
        totals = ledger.totals(duration=1.0)
        assert totals["offered"] == 1
        assert totals["expected"] == 2
        assert totals["delivered"] == 1
        assert totals["delivery_ratio"] == 0.5
        assert totals["goodput_msgs_per_s"] == 1.0
        assert totals["goodput_bytes_per_s"] == 10.0
        assert totals["latency_mean"] == 0.25
        assert totals["leaked"] == 0

    def test_leakage_counts_non_members(self):
        ledger = DeliveryLedger()
        msg = _msg("a", 1, 0.0, {"a", "b"})
        ledger.record_send(msg)
        ledger.record_delivery("b", msg, 0.1)
        ledger.record_delivery("z", msg, 0.1)  # vicinity, not group
        totals = ledger.totals(duration=1.0)
        assert totals["delivered"] == 1
        assert totals["leaked"] == 1
        assert totals["leakage_ratio"] == 0.5

    def test_staleness_lags_against_latest_sent(self):
        ledger = DeliveryLedger()
        first = _msg("a", 1, 0.0, {"a", "b"})
        second = _msg("a", 2, 1.0, {"a", "b"})
        ledger.record_send(first)
        ledger.record_send(second)
        ledger.record_delivery("b", first, 1.5)   # one message behind
        ledger.record_delivery("b", second, 1.5)  # fresh
        totals = ledger.totals(duration=2.0)
        assert totals["staleness_max"] == 1
        assert totals["staleness_mean"] == 0.5

    def test_round_trip_matching_takes_first_reply(self):
        ledger = DeliveryLedger()
        ledger.record_request("a", 7, 1.0)
        ledger.record_reply("a", 7, 1.4)
        ledger.record_reply("a", 7, 9.0)  # duplicate reply ignored
        totals = ledger.totals(duration=1.0)
        assert totals["requests"] == 1
        assert totals["replies"] == 1
        assert abs(totals["rtt_mean"] - 0.4) < 1e-9

    def test_group_rows_sorted_by_group_key(self):
        ledger = DeliveryLedger()
        for sender, group in (("z", {"z", "y"}), ("a", {"a", "b"})):
            ledger.record_send(_msg(sender, 1, 0.0, group))
        rows = ledger.group_rows()
        assert [row["group"] for row in rows] == ["a", "y"]

    def test_empty_ledger_totals(self):
        totals = DeliveryLedger().totals()
        assert totals["offered"] == 0
        assert totals["delivery_ratio"] is None
        assert totals["latency_mean"] is None

    def test_percentile_single_sample_any_fraction(self):
        # Nearest-rank edge case: one sample is every percentile of itself,
        # and fractions at or beyond 1.0 must clamp to the maximum instead of
        # indexing past the end of the list.
        from repro.traffic.ledger import _percentile
        for fraction in (0.0, 0.5, 0.95, 1.0, 1.5):
            assert _percentile([0.42], fraction) == 0.42
        assert _percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0, 3.0], 1.0) == 3.0
        assert _percentile([1.0, 2.0, 3.0], 2.0) == 3.0

    def test_single_delivery_latency_percentiles(self):
        ledger = DeliveryLedger()
        msg = _msg("a", 1, 0.0, {"a", "b"})
        ledger.record_send(msg)
        ledger.record_delivery("b", msg, 0.25)
        totals = ledger.totals(duration=1.0)
        assert totals["latency_p95"] == 0.25
        assert totals["latency_max"] == 0.25

    def test_totals_zero_duration_no_division(self):
        # duration=0.0 is a legitimate window (an instantaneous snapshot);
        # the rate columns degrade to None instead of dividing by zero.
        ledger = DeliveryLedger()
        msg = _msg("a", 1, 0.0, {"a", "b"})
        ledger.record_send(msg)
        ledger.record_delivery("b", msg, 0.0)
        totals = ledger.totals(duration=0.0)
        assert totals["goodput_msgs_per_s"] is None
        assert totals["goodput_bytes_per_s"] is None
        assert totals["delivered"] == 1
        # Same degradation when all events share one instant and the window
        # falls back to the (zero-width) observed span.
        assert ledger.observed_span() == 0.0
        assert ledger.totals()["goodput_msgs_per_s"] is None


# ------------------------------------------------- live deployments, replay

#: (use_spatial_index, vectorized_delivery) combinations; the vectorized
#: pipeline needs the index, so (False, True) degrades to the scan path.
BACKENDS = {
    "indexed+vectorized": (True, True),
    "indexed+scalar": (True, False),
    "brute+scalar": (False, False),
    "brute+vectorized-degraded": (False, True),
}


def traffic_fingerprint(traffic_name, use_spatial_index=True, vectorized_delivery=True,
                        n=40, duration=4.0, traffic_seed=77):
    """Full observable state of one seeded traffic run (for equality checks)."""
    deployment = build(ScenarioSpec.create(
        "manet_waypoint", n=n, area=450.0, radio_range=110.0, dmax=3, speed=8.0,
        loss_probability=0.05), seed=33)
    deployment.network.use_spatial_index = use_spatial_index
    deployment.network.vectorized_delivery = vectorized_delivery
    driver = attach_traffic(deployment, TrafficSpec.create(traffic_name),
                            seed=traffic_seed)
    deployment.run(duration)
    network = deployment.network
    return {
        "processed_events": deployment.sim.processed_events,
        "sent": network.messages_sent,
        "delivered": network.messages_delivered,
        "dropped": network.messages_dropped,
        "views": deployment.views(),
        "app_sent": driver.ledger.messages_sent,
        "app_receptions": driver.ledger.receptions,
        "group_rows": driver.ledger.group_rows(),
        "totals": driver.ledger.totals(duration),
    }


class TestTrafficReplay:
    @pytest.mark.parametrize("traffic_name", ["request_reply", "state_sync"])
    def test_bit_identical_across_all_backends(self, traffic_name):
        reference = traffic_fingerprint(traffic_name, *BACKENDS["indexed+vectorized"])
        assert reference["app_sent"] > 0 and reference["app_receptions"] > 0
        for name, flags in BACKENDS.items():
            if name == "indexed+vectorized":
                continue
            assert traffic_fingerprint(traffic_name, *flags) == reference, (
                f"seeded {traffic_name} run diverged between "
                f"indexed+vectorized and {name}")

    def test_same_seed_reruns_identically(self):
        assert (traffic_fingerprint("bursty_pubsub")
                == traffic_fingerprint("bursty_pubsub"))

    def test_different_traffic_seed_changes_the_run(self):
        assert (traffic_fingerprint("periodic_beacon", traffic_seed=77)
                != traffic_fingerprint("periodic_beacon", traffic_seed=78))

    def test_messages_are_scoped_to_groups(self):
        deployment = build(ScenarioSpec.create("static_random", n=12, area=240.0,
                                               radio_range=110.0), seed=9)
        deployment.run(30.0)  # let groups stabilize first
        driver = attach_traffic(deployment, TrafficSpec.create("periodic_beacon"),
                                seed=5)
        deployment.run(10.0)
        assert driver.ledger.messages_sent > 0
        totals = driver.ledger.totals(10.0)
        assert totals["delivered"] > 0
        assert 0 < totals["delivery_ratio"] < 1
        # The field stabilizes into one all-covering group, so every
        # reception is in-group: scoping leaks nothing.
        assert totals["leaked"] == 0

    def test_inactive_nodes_send_nothing(self):
        deployment = build(ScenarioSpec.create("static_random", n=6, area=150.0,
                                               radio_range=100.0), seed=4)
        for node_id in deployment.nodes:
            deployment.network.deactivate_node(node_id)
        driver = attach_traffic(deployment, TrafficSpec.create("periodic_beacon"),
                                seed=5)
        deployment.run(5.0)
        assert driver.ledger.messages_sent == 0


# ----------------------------------------------------------------- suite/E11


class TestE11:
    def test_e11_produces_the_grid(self):
        result = run_experiment("E11", quick=True, seed=3)
        assert len(result.rows) == 4  # 2 speeds x 2 loads
        for row in result.rows:
            assert row["offered"] > 0
            assert row["delivered"] > 0
            assert 0 < row["delivery_ratio"] <= 1

    def test_e11_accepts_traffic_override(self):
        result = run_experiment("E11", quick=True, seed=3,
                                traffic=TrafficSpec.create("request_reply"))
        assert any("request_reply" in note for note in result.notes)
        assert all(row["requests"] > 0 for row in result.rows)

    def test_traffic_unaware_experiment_notes_the_ignore(self):
        result = run_experiment("E6", quick=True, seed=3,
                                traffic=TrafficSpec.create("periodic_beacon"))
        assert any("ignored by E6" in note for note in result.notes)

    def test_e11_is_seed_deterministic(self):
        rows_a = run_experiment("E11", quick=True, seed=5).rows
        rows_b = run_experiment("E11", quick=True, seed=5).rows
        assert rows_a == rows_b


# ------------------------------------------------------------- campaign axis


def _spec(**overrides):
    defaults = dict(name="t", experiments=("E11",), replicates=1, root_seed=7)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignTrafficAxis:
    def test_expansion_covers_the_traffic_axis(self):
        spec = _spec(replicates=2,
                     traffics=(TrafficSpec.create("periodic_beacon", interval=0.5),
                               TrafficSpec.create("request_reply")))
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == [
            "E11/periodic_beacon[interval=0.5]/r0",
            "E11/periodic_beacon[interval=0.5]/r1",
            "E11/request_reply/r0",
            "E11/request_reply/r1",
        ]
        assert spec.task_count() == len(tasks) == 4
        assert len({t.seed for t in tasks}) == 4

    def test_traffic_less_campaigns_keep_ids_seeds_and_hash(self):
        spec = _spec(experiments=("E3", "E6"), replicates=2)
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == ["E3/r0", "E3/r1", "E6/r0", "E6/r1"]
        for task in tasks:
            assert task.seed == derive_seed(
                7, f"campaign/{task.experiment}/rep{task.replicate}")
        assert "traffics" not in spec.as_dict()
        # The hash is the canonical JSON digest of exactly the historical keys.
        legacy = dict(spec.as_dict())
        assert set(legacy) == {"name", "experiments", "replicates", "root_seed",
                               "quick", "max_trace_records"}

    def test_spec_hash_sensitive_to_the_traffic_axis(self):
        plain = _spec()
        with_axis = _spec(traffics=(TrafficSpec.create("periodic_beacon"),))
        other_cell = _spec(traffics=(TrafficSpec.create("state_sync"),))
        assert len({plain.spec_hash(), with_axis.spec_hash(),
                    other_cell.spec_hash()}) == 3

    def test_equivalent_traffic_cells_normalize_and_duplicate(self):
        with pytest.raises(ValueError, match="duplicate traffic"):
            _spec(traffics=(TrafficSpec.create("periodic_beacon", interval=2),
                            TrafficSpec.create("periodic_beacon", interval="2")))

    def test_traffic_cells_accept_dict_form(self):
        spec = _spec(traffics=(TrafficSpec.create("state_sync").as_dict(),))
        assert spec.traffics[0] == TrafficSpec.create("state_sync")

    def test_invalid_traffic_cell_fails_at_spec_creation(self):
        with pytest.raises(KeyError):
            _spec(traffics=(TrafficSpec.create("no_such_traffic"),))
        with pytest.raises(ValueError):
            _spec(traffics=(TrafficSpec.create("state_sync", bogus=1),))


class TestSeedStreamCollisions:
    """Scenario cells and traffic cells must never share a derive_seed stream."""

    def test_scenario_and_traffic_cells_never_collide(self):
        # Same name, same params — one as a scenario cell, one as a traffic
        # cell.  The stream names (and therefore the seeds) must differ.
        scenario_spec = ScenarioSpec.create("static_random", n=8)
        traffic_spec = TrafficSpec.create("periodic_beacon", interval=2.0)
        base = _spec(experiments=("E6",))
        seed_scenario = base.task_seed("E6", 0, scenario=scenario_spec)
        seed_traffic = base.task_seed("E6", 0, traffic=traffic_spec)
        seed_both = base.task_seed("E6", 0, scenario=scenario_spec,
                                   traffic=traffic_spec)
        seed_neither = base.task_seed("E6", 0)
        assert len({seed_scenario, seed_traffic, seed_both, seed_neither}) == 4

    def test_identically_rendered_cells_stay_distinct(self):
        # A scenario and a traffic cell whose canonical JSON is identical
        # must still derive different seeds: the traffic segment carries a
        # "traffic=" prefix no scenario JSON (which starts with "{") can
        # produce.
        scenario_json = ScenarioSpec.create("manet_waypoint", n=8).canonical_json()
        assert scenario_json.startswith("{")
        assert not scenario_json.startswith("traffic=")
        name_scenario = f"campaign/E6/{scenario_json}/rep0"
        name_traffic = f"campaign/E6/traffic={scenario_json}/rep0"
        assert derive_seed(7, name_scenario) != derive_seed(7, name_traffic)

    def test_task_seed_matches_direct_derivation(self):
        traffic = TrafficSpec.create("periodic_beacon", interval=0.5)
        base = _spec(experiments=("E11",))
        expected = derive_seed(
            7, f"campaign/E11/traffic={traffic.canonical_json()}/rep1")
        assert base.task_seed("E11", 1, traffic=traffic) == expected


class TestCampaignExecutionWithTraffic:
    def test_serial_and_parallel_reports_identical(self, tmp_path):
        spec = _spec(replicates=2,
                     traffics=(TrafficSpec.create("periodic_beacon", interval=0.5),))
        serial = run_campaign(spec, store=ResultStore(str(tmp_path / "serial.jsonl")),
                              jobs=1)
        parallel = run_campaign(spec, store=ResultStore(str(tmp_path / "pool.jsonl")),
                                jobs=2)
        assert deterministic_report(serial) == deterministic_report(parallel)
        assert [o.rows for o in serial.outcomes] == [o.rows for o in parallel.outcomes]

    def test_store_roundtrips_the_traffic_cell_and_resumes(self, tmp_path):
        spec = _spec(traffics=(TrafficSpec.create("state_sync", relay=False),))
        store = ResultStore(str(tmp_path / "store.jsonl"))
        first = run_campaign(spec, store=store)
        assert first.executed == 1
        record = store.load(spec.spec_hash())[0]
        assert record.traffic == TrafficSpec.create("state_sync", relay=False).as_dict()
        assert record.attempts == 1
        resumed = run_campaign(spec, store=store)
        assert resumed.executed == 0 and resumed.skipped == 1
        # Identical metric rows; only the executed/resumed header counts move.
        assert [o.rows for o in resumed.outcomes] == [o.rows for o in first.outcomes]

    def test_report_renders_one_block_per_traffic_cell(self):
        spec = _spec(traffics=(TrafficSpec.create("periodic_beacon", interval=0.5),
                               TrafficSpec.create("periodic_beacon", interval=1.0)))
        report = deterministic_report(run_campaign(spec))
        assert "traffic axis (2 cells)" in report
        assert "traffic periodic_beacon[interval=0.5]," in report
        assert "traffic periodic_beacon[interval=1.0]," in report


# ---------------------------------------------------------------------- CLI


class TestTrafficCli:
    def test_list_traffic(self, capsys):
        assert main(["--list-traffic"]) == 0
        out = capsys.readouterr().out
        for name in traffic_names():
            assert name in out

    def test_single_run_with_traffic_override(self, capsys):
        assert main(["E11", "--traffic", "periodic_beacon",
                     "--traffic-set", "interval=0.5"]) == 0
        out = capsys.readouterr().out
        assert "periodic_beacon[interval=0.5,size=64]" in out or \
            "periodic_beacon[interval=0.5]" in out

    def test_traffic_set_requires_traffic(self, capsys):
        assert main(["E11", "--traffic-set", "interval=1"]) == 2
        assert "--traffic" in capsys.readouterr().err

    def test_unknown_traffic_parameter_exits_before_running(self, capsys):
        assert main(["E11", "--traffic", "periodic_beacon",
                     "--traffic-set", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err

    def test_traffic_sweep_campaign_and_summary_line(self, tmp_path, capsys):
        store = str(tmp_path / "sweep.jsonl")
        args = ["E11", "--traffic", "periodic_beacon",
                "--traffic-sweep", "interval=0.5,1.0", "--store", store]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "traffic axis (2 cells)" in captured.out
        assert ("campaign summary: 2 tasks (2 executed, 0 resumed, "
                "0 failed, 0 retried)") in captured.err
        # Rerun resumes everything; the summary reflects it.
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "executed 0, resumed 2" in captured.out
        assert ("campaign summary: 2 tasks (0 executed, 2 resumed, "
                "0 failed, 0 retried)") in captured.err

    def test_duplicate_traffic_sweep_cells_rejected(self, capsys):
        assert main(["E11", "--traffic", "periodic_beacon",
                     "--traffic-sweep", "interval=1,1"]) == 2
        assert "duplicate traffic" in capsys.readouterr().err
