"""Deterministic replay at scale, across every neighbour/delivery backend.

The spatial index and the vectorized delivery pipeline (link-state receiver
lists + batched channel decisions + bulk scheduling) are pure query/dispatch
optimizations: a seeded run must unfold *identically* whether neighbour
queries go through the grid or the brute-force scan, whether broadcasts
take the batched fast path or the per-receiver loop, and whether the state
behind them is the contiguous array store (SoA positions + CSR link-state)
or the dict-based incremental cache.  These tests run a
500-node mobile lossy GRP deployment once per backend combination and require
bit-identical event counts, message counters, group assignments, topology
edges and metric reports across all of them (plus a same-seed rerun).

The traffic-laden variant layers an application workload
(:mod:`repro.traffic`) on top of a smaller deployment: application sends,
replies and relays interleave with protocol messages on the same event queue
and the same channel RNG stream, so any backend divergence — in either the
protocol or the traffic subsystem — shows up as a ledger or counter mismatch.
"""

import pytest

from repro.experiments.scenarios import manet_waypoint
from repro.metrics.overhead import overhead_summary
from repro.mobility.churn import ChurnEvent, ChurnSchedule
from repro.obs import ObsContext, observing
from repro.traffic import TrafficSpec, attach_traffic

N = 500
DURATION = 3.0
SEED = 2024

#: (use_spatial_index, vectorized_delivery, array_state, incremental_csr)
#: backend combinations.  The vectorized pipeline sits on top of the index,
#: so (False, True, *, *) degrades to the scan path — included to prove the
#: degradation is seamless.  The array axis pins the SoA/CSR backend against
#: the dict-based incremental cache (and against the scalar scan) on the
#: same seeds: the reference combination serves receiver batches from
#: :class:`ArrayLinkState`, the ``dictstate`` one from
#: :class:`LinkStateCache`, and both must replay bit-identically.  The
#: ``nopatch`` cell disables the incremental CSR patch so every topology
#: refresh is a full rebuild — any divergence convicts the patch path.
BACKENDS = {
    "indexed+vectorized": (True, True, True, True),
    "indexed+vectorized+nopatch": (True, True, True, False),
    "indexed+vectorized+dictstate": (True, True, False, True),
    "indexed+scalar": (True, False, True, True),
    "indexed+scalar+dictstate": (True, False, False, True),
    "brute+scalar": (False, False, False, True),
    "brute+vectorized-degraded": (False, True, True, True),
}


def rng_fingerprint(deployment):
    """Serialized post-run RNG states: the root sim stream and (when the
    channel draws randomness) the channel stream.  Any hidden consumer —
    an instrumentation layer included — would desynchronize these."""
    states = {"sim": repr(deployment.sim.rng.bit_generator.state)}
    channel_rng = getattr(deployment.network.channel, "_rng", None)
    if channel_rng is not None:
        states["channel"] = repr(channel_rng.bit_generator.state)
    return states


def run_once(use_spatial_index, vectorized_delivery, array_state=True,
             incremental_csr=True):
    deployment = manet_waypoint(n=N, area=1500.0, radio_range=100.0, dmax=3,
                                speed=10.0, seed=SEED, loss_probability=0.05)
    deployment.network.use_spatial_index = use_spatial_index
    deployment.network.vectorized_delivery = vectorized_delivery
    deployment.network.array_state = array_state
    deployment.network.incremental_csr = incremental_csr
    churn = ChurnSchedule([ChurnEvent(time=1.0, node_id=i, active=False) for i in range(25)]
                          + [ChurnEvent(time=2.0, node_id=i, active=True) for i in range(25)])
    churn.install(deployment.network)
    deployment.run(DURATION)
    network = deployment.network
    graph = deployment.topology()
    return {
        "processed_events": deployment.sim.processed_events,
        "sent": network.messages_sent,
        "delivered": network.messages_delivered,
        "dropped": network.messages_dropped,
        "views": deployment.views(),
        "edges": {frozenset(e) for e in graph.edges},
        "report": overhead_summary(deployment, DURATION).as_row(),
        "rng_state": rng_fingerprint(deployment),
    }


@pytest.fixture(scope="module")
def runs():
    return {name: run_once(*flags) for name, flags in BACKENDS.items()}


@pytest.mark.parametrize("backend", [name for name in BACKENDS
                                     if name != "indexed+vectorized"])
def test_backends_replay_identically(runs, backend):
    assert runs["indexed+vectorized"] == runs[backend], (
        f"seeded 500-node run diverged between indexed+vectorized and {backend}")


def test_rerun_with_same_seed_is_identical(runs):
    assert run_once(True, True, True, True) == runs["indexed+vectorized"]


def test_obs_enabled_replay_is_bit_identical(runs):
    """Observability must be invisible to the simulation: the 500-node run
    with metrics + spans collected matches the reference fingerprint exactly
    — deliveries, event counts, topology, and the post-run RNG states (the
    obs layer never consumes randomness)."""
    with observing(ObsContext()) as ctx:
        observed = run_once(True, True, True, True)
    assert observed == runs["indexed+vectorized"]
    export = ctx.export()
    assert export["counters"]["sim.events"] == observed["processed_events"]
    assert export["counters"]["net.delivered"] == observed["delivered"]
    assert "sim.event_pop" in export["spans"]


def test_views_cover_all_active_nodes(runs):
    views = runs["indexed+vectorized"]["views"]
    assert len(views) == N
    for node_id, view in views.items():
        assert node_id in view


# ------------------------------------------------------- with traffic on top

TRAFFIC_N = 200
#: Long enough for groups to form so that request/reply round trips happen
#: (requests are only recorded once the sender's view exceeds itself).
TRAFFIC_DURATION = 8.0


def run_traffic_once(use_spatial_index, vectorized_delivery, array_state=True,
                     incremental_csr=True):
    deployment = manet_waypoint(n=TRAFFIC_N, area=900.0, radio_range=100.0, dmax=3,
                                speed=10.0, seed=SEED, loss_probability=0.05)
    deployment.network.use_spatial_index = use_spatial_index
    deployment.network.vectorized_delivery = vectorized_delivery
    deployment.network.array_state = array_state
    deployment.network.incremental_csr = incremental_csr
    driver = attach_traffic(
        deployment, TrafficSpec.create("request_reply", interval=1.0), seed=SEED)
    churn = ChurnSchedule([ChurnEvent(time=1.0, node_id=i, active=False)
                           for i in range(10)]
                          + [ChurnEvent(time=2.0, node_id=i, active=True)
                             for i in range(10)])
    churn.install(deployment.network)
    deployment.run(TRAFFIC_DURATION)
    network = deployment.network
    ledger = driver.ledger
    return {
        "processed_events": deployment.sim.processed_events,
        "sent": network.messages_sent,
        "delivered": network.messages_delivered,
        "dropped": network.messages_dropped,
        "views": deployment.views(),
        "app_sent": ledger.messages_sent,
        "app_receptions": ledger.receptions,
        "requests": ledger.requests_sent,
        "replies": ledger.replies_matched,
        "group_rows": ledger.group_rows(),
        "totals": ledger.totals(TRAFFIC_DURATION),
    }


@pytest.fixture(scope="module")
def traffic_runs():
    return {name: run_traffic_once(*flags) for name, flags in BACKENDS.items()}


@pytest.mark.parametrize("backend", [name for name in BACKENDS
                                     if name != "indexed+vectorized"])
def test_traffic_backends_replay_identically(traffic_runs, backend):
    assert traffic_runs["indexed+vectorized"] == traffic_runs[backend], (
        f"seeded traffic run diverged between indexed+vectorized and {backend}")


def test_traffic_rerun_with_same_seed_is_identical(traffic_runs):
    assert (run_traffic_once(True, True, True, True)
            == traffic_runs["indexed+vectorized"])


def test_traffic_actually_flowed(traffic_runs):
    reference = traffic_runs["indexed+vectorized"]
    assert reference["app_sent"] > 0
    assert reference["app_receptions"] > 0
    assert reference["replies"] > 0


# ------------------------------------------------- sharded executor on top

#: The sharded executor (:mod:`repro.shard`) joins the backend matrix as a
#: new axis: the same 500-node world, split across worker shards by spatial
#: tile, must reproduce the ``shards=1`` fingerprint bit for bit — counters,
#: views, edges, overhead report and the post-run RNG states (root sim
#: stream + every per-sender channel stream).  The reference is the sharded
#: engine at one shard: sharding swaps the global channel RNG for per-sender
#: streams, so its fingerprint family is its own, anchored at k=1 where the
#: whole run takes the stock single-process pipeline.
SHARD_CELLS = {
    "2shards+arraystate+vectorized": (2, True, True, True),
    "2shards+arraystate+nopatch": (2, True, True, False),
    "2shards+dictstate+vectorized": (2, False, True, True),
    "2shards+arraystate+scalar": (2, True, False, True),
    "2shards+dictstate+scalar": (2, False, False, True),
    "4shards+arraystate+vectorized": (4, True, True, True),
    "4shards+dictstate+scalar": (4, False, False, True),
}

SHARD_CHURN = (tuple((1.0, i, False) for i in range(25))
               + tuple((2.0, i, True) for i in range(25)))


def shard_spec(shards, array_state=True, vectorized=True, incremental=True):
    from repro.shard import ShardSpec

    return ShardSpec.create(
        "manet_waypoint",
        params={"n": N, "area": 1500.0, "radio_range": 100.0, "dmax": 3,
                "speed": 10.0, "loss_probability": 0.05},
        seed=SEED, duration=DURATION, shards=shards,
        array_state=array_state, vectorized_delivery=vectorized,
        incremental_csr=incremental, churn=SHARD_CHURN)


def run_sharded_once(shards, array_state=True, vectorized=True, incremental=True,
                     transport="inproc", build="replicate"):
    from repro.shard import run_sharded

    result = run_sharded(shard_spec(shards, array_state, vectorized, incremental),
                         transport=transport, build=build)
    return result.fingerprint, result.stats


@pytest.fixture(scope="module")
def sharded_reference():
    fingerprint, _ = run_sharded_once(1)
    return fingerprint


@pytest.mark.parametrize("cell", list(SHARD_CELLS))
def test_sharded_backends_replay_identically(sharded_reference, cell):
    shards, array_state, vectorized, incremental = SHARD_CELLS[cell]
    fingerprint, stats = run_sharded_once(shards, array_state, vectorized,
                                          incremental)
    assert fingerprint == sharded_reference, (
        f"sharded 500-node run diverged between 1 shard and {cell}")
    # The split must be real: nodes crossing tile boundaries force actual
    # cross-shard traffic, otherwise the cell proves nothing.
    assert stats["remote_deliveries"] > 0


def test_sharded_mp_transport_matches(sharded_reference):
    """One OS process per shard (spawn context) replays the in-process
    reference exactly — the pipe transport adds no nondeterminism."""
    fingerprint, stats = run_sharded_once(2, transport="mp")
    assert fingerprint == sharded_reference
    assert stats["transport"] == "mp"
    assert stats["remote_deliveries"] > 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_snapshot_restore_matches(sharded_reference, shards):
    """Snapshot-restore builds (one scenario build, pickled, restored per
    worker) must reproduce the replicated-build fingerprint bit for bit at
    every shard count — counters, views, merged ledger and post-run RNG
    states all come through the pickle round trip unchanged."""
    fingerprint, stats = run_sharded_once(shards, build="snapshot")
    assert fingerprint == sharded_reference, (
        f"snapshot-restore diverged from replicated build at {shards} shards")
    assert stats["build"] == "snapshot"
    assert stats["base_build_s"] > 0
    assert len(stats["worker_build_s"]) == shards


def test_sharded_snapshot_restore_mp_matches(sharded_reference):
    """Snapshot-restore over the mp transport: the blob travels through the
    filesystem to spawned workers and must still replay exactly."""
    fingerprint, stats = run_sharded_once(2, transport="mp", build="snapshot")
    assert fingerprint == sharded_reference
    assert stats["transport"] == "mp" and stats["build"] == "snapshot"
    assert stats["remote_deliveries"] > 0


def test_sharded_fingerprint_includes_rng_states(sharded_reference):
    states = sharded_reference["rng_state"]
    assert "sim" in states and "'bit_generator'" in states["sim"]
    # Per-sender channel streams: every sender that ever broadcast reports
    # its post-run state, keyed by node id.
    assert len(states["channel"]) > 0
    assert all("'bit_generator'" in state for state in states["channel"].values())


@pytest.fixture(scope="module")
def sharded_traffic_reference():
    from repro.shard import run_sharded

    return run_sharded(shard_traffic_spec(1))


def shard_traffic_spec(shards):
    from repro.shard import ShardSpec

    return ShardSpec.create(
        "manet_waypoint",
        params={"n": TRAFFIC_N, "area": 900.0, "radio_range": 100.0, "dmax": 3,
                "speed": 10.0, "loss_probability": 0.05},
        seed=SEED, duration=TRAFFIC_DURATION, shards=shards,
        churn=(tuple((1.0, i, False) for i in range(10))
               + tuple((2.0, i, True) for i in range(10))),
        traffic="request_reply", traffic_params={"interval": 1.0},
        traffic_seed=SEED)


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_traffic_replays_identically(sharded_traffic_reference, shards):
    """Application workload (request/reply round trips) on the sharded
    engine: the merged ledger — group rows, RTTs, totals — and the protocol
    fingerprint must match the 1-shard reference at every shard count."""
    from repro.shard import run_sharded

    result = run_sharded(shard_traffic_spec(shards))
    assert result.fingerprint == sharded_traffic_reference.fingerprint
    assert result.traffic == sharded_traffic_reference.traffic
    assert result.stats["remote_deliveries"] > 0


def test_sharded_traffic_actually_flowed(sharded_traffic_reference):
    traffic = sharded_traffic_reference.traffic
    assert traffic["app_sent"] > 0
    assert traffic["app_receptions"] > 0
    assert traffic["replies"] > 0


# ------------------------------------- incremental CSR patch, engaged regime

#: ``manet_waypoint`` moves every node every tick, so the matrix's
#: ``nopatch`` cell above mostly proves the flag is harmless there (the
#: dirty fraction exceeds the patch threshold and the refresh falls back to
#: full rebuilds).  This section pins the patch path *while it is actually
#: running*: a scaled-down ``city_scale_mobile`` field, where only a sparse
#: mover subset dirties rows each tick, must replay bit-identically with
#: patching on and off — and the on-run must prove patches happened.


def run_sparse_mobile_once(incremental_csr):
    from repro.scenarios.registry import build
    from repro.scenarios.spec import ScenarioSpec

    deployment = build(ScenarioSpec.create(
        "city_scale_mobile", n=400, area=2000.0, hotspot_sigma=200.0,
        mover_fraction=0.02), seed=SEED)
    deployment.network.incremental_csr = incremental_csr
    deployment.run(4.0)
    network = deployment.network
    linkstate = network._array_ls
    fingerprint = {
        "processed_events": deployment.sim.processed_events,
        "sent": network.messages_sent,
        "delivered": network.messages_delivered,
        "dropped": network.messages_dropped,
        "views": deployment.views(),
        "edges": {frozenset(e) for e in deployment.topology().edges},
        "rng_state": rng_fingerprint(deployment),
    }
    return fingerprint, (linkstate.patch_count if linkstate is not None else 0)


def test_incremental_patch_replays_identically_when_engaged():
    patched, patch_count = run_sparse_mobile_once(True)
    rebuilt, rebuilt_patch_count = run_sparse_mobile_once(False)
    assert patch_count > 0, "sparse-mover run never took the patch path"
    assert rebuilt_patch_count == 0
    assert patched == rebuilt, (
        "sparse-mover run diverged between incremental CSR patch and full rebuild")


# ------------------------------------ observed sharded runs, bit-identical

#: Observability on the sharded executor crosses every seam at once: each
#: worker observes into its own ObsContext (captured at build time), the mp
#: transport ships contexts back over the pipe, and the coordinator merges
#: them and appends its convergence milestone.  None of that may perturb
#: the simulation: every cell must reproduce the unobserved 1-shard
#: fingerprint bit for bit — counters, views, edges and post-run RNG states.

OBS_SHARD_CELLS = [(1, "inproc"), (2, "inproc"), (4, "inproc"),
                   (1, "mp"), (2, "mp"), (4, "mp")]


@pytest.mark.parametrize("shards,transport", OBS_SHARD_CELLS,
                         ids=[f"{k}shards-{t}" for k, t in OBS_SHARD_CELLS])
def test_sharded_obs_replay_is_bit_identical(sharded_reference, shards,
                                             transport):
    from repro.shard import run_sharded

    result = run_sharded(shard_spec(shards), transport=transport, obs=True)
    assert result.fingerprint == sharded_reference, (
        f"observed sharded run diverged at {shards} shards over {transport}")
    assert "rng_state" in result.fingerprint
    merged = result.obs["merged"]
    assert len(result.obs["per_shard"]) == shards
    assert merged["counters"]["sim.events"] > 0
    assert merged["counters"]["shard.windows"] > 0
    assert "shard.outbox_entries" in merged["counters"]
    kinds = merged["events"]["kinds"]
    assert kinds.get("convergence.final") == 1


def test_sharded_obs_snapshot_restore_workers_observe(sharded_reference):
    """The satellite bugfix: snapshot-restored workers must re-capture the
    process-local context in ``_finalize`` — without it every restored
    component keeps the nulled handles from the pickled blob and the run
    is silently unobserved."""
    from repro.shard import run_sharded

    result = run_sharded(shard_spec(2), build="snapshot", obs=True)
    assert result.fingerprint == sharded_reference
    merged = result.obs["merged"]
    assert merged["counters"]["sim.events"] > 0
    assert merged["counters"]["net.delivered"] > 0
    assert merged["spans"].get("shard.snapshot_restore", {}).get("count") == 2
    for blob in result.obs["per_shard"]:
        assert blob["counters"].get("sim.events", 0) > 0, (
            "a snapshot-restored worker recorded nothing: the finalize "
            "re-capture is broken")


def test_sharded_obs_traffic_ledger_cell(sharded_traffic_reference):
    """Observability with an application workload attached: the merged
    ledger and fingerprint must still match the unobserved reference, and
    the per-shard blobs must carry the shard instruments."""
    from repro.shard import run_sharded

    result = run_sharded(shard_traffic_spec(2), obs=True)
    assert result.fingerprint == sharded_traffic_reference.fingerprint
    assert result.traffic == sharded_traffic_reference.traffic
    for blob in result.obs["per_shard"]:
        assert "shard.windows" in blob["counters"]
        assert "shard.outbox_entries" in blob["counters"]


def test_sharded_obs_merged_counters_reconcile(sharded_reference):
    """Merged per-shard counters must reconcile with the fingerprint:
    ``net.delivered`` sums exactly; ``sim.events`` counts the shared churn
    events once per shard, so the merged total exceeds the fingerprint by
    ``(k - 1) x shared``."""
    from repro.shard import run_sharded

    result = run_sharded(shard_spec(2), obs=True)
    merged = result.obs["merged"]
    assert merged["counters"]["net.delivered"] == result.fingerprint["delivered"]
    assert merged["counters"]["sim.events"] >= result.fingerprint["processed_events"]
