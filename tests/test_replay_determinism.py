"""Deterministic replay at scale, with and without the spatial index.

The spatial index is a pure query optimization: a seeded run must unfold
*identically* whether neighbour queries go through the grid or through the
brute-force scan.  These tests run a 500-node mobile GRP deployment twice per
backend and require bit-identical event counts, message counters, group
assignments and metric reports across all four runs.
"""

import pytest

from repro.experiments.scenarios import manet_waypoint
from repro.metrics.overhead import overhead_summary
from repro.mobility.churn import ChurnEvent, ChurnSchedule

N = 500
DURATION = 3.0
SEED = 2024


def run_once(use_spatial_index):
    deployment = manet_waypoint(n=N, area=1500.0, radio_range=100.0, dmax=3,
                                speed=10.0, seed=SEED, loss_probability=0.05)
    deployment.network.use_spatial_index = use_spatial_index
    churn = ChurnSchedule([ChurnEvent(time=1.0, node_id=i, active=False) for i in range(25)]
                          + [ChurnEvent(time=2.0, node_id=i, active=True) for i in range(25)])
    churn.install(deployment.network)
    deployment.run(DURATION)
    network = deployment.network
    graph = deployment.topology()
    return {
        "processed_events": deployment.sim.processed_events,
        "sent": network.messages_sent,
        "delivered": network.messages_delivered,
        "dropped": network.messages_dropped,
        "views": deployment.views(),
        "edges": {frozenset(e) for e in graph.edges},
        "report": overhead_summary(deployment, DURATION).as_row(),
    }


@pytest.fixture(scope="module")
def runs():
    return {flag: run_once(flag) for flag in (True, False)}


def test_indexed_run_matches_brute_force_run(runs):
    assert runs[True] == runs[False]


def test_rerun_with_same_seed_is_identical(runs):
    assert run_once(True) == runs[True]


def test_views_cover_all_active_nodes(runs):
    views = runs[True]["views"]
    assert len(views) == N
    for node_id, view in views.items():
        assert node_id in view
