"""Tests for the experiment scenarios, runner helpers and the CLI."""

import pytest

from repro.baselines.lowest_id import LowestIdClustering
from repro.experiments.cli import build_parser, main
from repro.experiments.runner import ExperimentResult, attach_baseline, run_with_sampler, sweep
from repro.experiments.scenarios import (dense_highway_convoy, large_manet_waypoint,
                                          line_topology, manet_waypoint, ring_of_clusters,
                                          rpgm_scenario, static_random, two_cluster_topology,
                                          vanet_highway)
from repro.experiments.suite import ALL_EXPERIMENTS, run_experiment


class TestScenarios:
    def test_static_random_builds_requested_size(self):
        deployment = static_random(n=7, area=100.0, radio_range=40.0, dmax=2, seed=1)
        assert len(deployment.nodes) == 7
        assert deployment.config.dmax == 2

    def test_line_topology_is_a_chain(self):
        deployment = line_topology(n=4, spacing=30.0, radio_range=35.0, dmax=2, seed=1)
        graph = deployment.topology()
        assert graph.number_of_edges() == 3

    def test_two_cluster_topology_starts_disconnected(self):
        deployment, left, right = two_cluster_topology(cluster_size=2, gap=300.0, spacing=20.0,
                                                       radio_range=50.0, dmax=2, seed=1)
        graph = deployment.topology()
        assert not any(graph.has_edge(a, b) for a in left for b in right)

    def test_ring_of_clusters_structure(self):
        deployment, clusters = ring_of_clusters(cluster_count=3, cluster_size=2,
                                                ring_radius=80.0, cluster_radius=10.0,
                                                radio_range=60.0, dmax=2, seed=1)
        assert len(clusters) == 3
        assert len(deployment.nodes) == 6

    def test_mobile_scenarios_build_and_run(self):
        for deployment in (
            manet_waypoint(n=5, area=120.0, radio_range=60.0, dmax=2, speed=2.0, seed=1),
            vanet_highway(n=5, road_length=500.0, radio_range=120.0, dmax=2, seed=1),
            rpgm_scenario(group_sizes=[3, 2], area=200.0, radio_range=80.0, dmax=2, seed=1),
        ):
            deployment.run(5.0)
            assert deployment.sim.now >= 5.0

    def test_large_scale_scenarios_build_and_run(self):
        # Shrunk sizes: the defaults (1000 / 600 nodes) are exercised by the
        # spatial-index benchmark, not the unit tests.
        for deployment in (
            large_manet_waypoint(n=40, area=400.0, radio_range=80.0, dmax=2, seed=1),
            dense_highway_convoy(n=30, road_length=600.0, radio_range=100.0, dmax=2, seed=1),
        ):
            assert deployment.network.use_spatial_index
            deployment.run(3.0)
            assert deployment.sim.now >= 3.0

    def test_large_scenario_spatial_index_toggle(self):
        deployment = large_manet_waypoint(n=10, area=200.0, radio_range=60.0, dmax=2,
                                          seed=1, use_spatial_index=False)
        assert not deployment.network.use_spatial_index
        deployment.run(2.0)

    def test_deterministic_given_seed(self):
        a = static_random(n=6, area=100.0, radio_range=40.0, dmax=2, seed=5)
        b = static_random(n=6, area=100.0, radio_range=40.0, dmax=2, seed=5)
        a.run(15.0)
        b.run(15.0)
        assert a.views() == b.views()


class TestRunner:
    def test_run_with_sampler_produces_samples(self):
        deployment = static_random(n=5, area=100.0, radio_range=60.0, dmax=2, seed=2)
        sampler = run_with_sampler(deployment, duration=10.0, sample_interval=2.0)
        assert len(sampler.samples) >= 5
        assert sampler.last.time >= 10.0

    def test_attach_baseline_views_cover_all_nodes(self):
        deployment = static_random(n=6, area=120.0, radio_range=60.0, dmax=2, seed=3)
        driver = attach_baseline(deployment, LowestIdClustering(), period=1.0)
        deployment.run(3.0)
        views = driver.views()
        assert set(views) == set(deployment.nodes)

    def test_sweep_collects_rows(self):
        rows = sweep([1, 2, 3], lambda v: {"value": v, "double": 2 * v})
        assert rows[2] == {"value": 3, "double": 6}

    def test_experiment_result_rendering(self):
        result = ExperimentResult("EX", "demo experiment")
        result.add_row(metric=1.0, ok=True)
        result.add_note("a note")
        text = result.to_text()
        assert "EX" in text and "a note" in text and "metric" in text


class TestSuiteAndCli:
    def test_registry_contains_eleven_experiments(self):
        assert len(ALL_EXPERIMENTS) == 11
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 12)}

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_cli_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_cli_unknown_experiment_returns_error_code(self, capsys):
        assert main(["E99"]) == 2

    def test_cli_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert not args.full
