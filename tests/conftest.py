"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.ancestor_list import AncestorList
from repro.core.identity import Mark
from repro.core.node import GRPConfig, GRPNode
from repro.sim.engine import Simulator


def alist(*levels):
    """Build an unmarked :class:`AncestorList` from plain iterables of node ids."""
    return AncestorList.from_levels(levels)


def marked(levels):
    """Build an :class:`AncestorList` from ``{node: mark}`` dicts."""
    return AncestorList(tuple({n: Mark(m) for n, m in level.items()} for level in levels))


@pytest.fixture
def simulator():
    """A fresh, seeded simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def grp_config():
    """A default GRP configuration with Dmax = 3."""
    return GRPConfig(dmax=3)


@pytest.fixture
def standalone_node(grp_config):
    """A GRP node not attached to any network (used for compute() unit tests)."""
    return GRPNode("v", grp_config)
