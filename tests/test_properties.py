"""Property-based tests (hypothesis) for the core data structures and predicates."""

import string

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ancestor_list import AncestorList
from repro.core.checks import compatible_list, good_list
from repro.core.identity import Mark
from repro.core.predicates import agreement, continuity, omega, safety
from repro.net.topology import subgraph_diameter

node_ids = st.sampled_from(list(string.ascii_lowercase[:8]))

levels_strategy = st.lists(
    st.dictionaries(node_ids, st.sampled_from([Mark.NONE, Mark.SINGLE, Mark.DOUBLE]),
                    max_size=4),
    max_size=5)


def make_list(levels):
    return AncestorList(tuple(levels))


@st.composite
def ancestor_lists(draw):
    return make_list(draw(levels_strategy))


class TestAncestorListAlgebra:
    @given(ancestor_lists())
    @settings(max_examples=80)
    def test_merge_idempotent(self, lst):
        assert lst.merge(lst) == lst

    @given(ancestor_lists(), ancestor_lists())
    @settings(max_examples=80)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(ancestor_lists(), ancestor_lists(), ancestor_lists())
    @settings(max_examples=60)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(ancestor_lists())
    @settings(max_examples=80)
    def test_each_identity_appears_once(self, lst):
        seen = []
        for level in lst.levels:
            seen.extend(level)
        assert len(seen) == len(set(seen))

    @given(ancestor_lists(), ancestor_lists())
    @settings(max_examples=80)
    def test_ant_never_loses_level_zero_of_left_operand(self, a, b):
        if not a:
            return
        combined = a.ant(b)
        for node in a.level_nodes(0):
            assert combined.position_of(node) == 0

    @given(ancestor_lists())
    @settings(max_examples=80)
    def test_wire_roundtrip(self, lst):
        assert AncestorList.from_wire(lst.to_wire()) == lst

    @given(ancestor_lists(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=80)
    def test_truncation_bounds_length(self, lst, limit):
        assert len(lst.truncated(limit)) <= limit

    @given(ancestor_lists())
    @settings(max_examples=80)
    def test_stripped_contains_no_marked_identity(self, lst):
        assert not lst.stripped().marked_nodes()

    @given(ancestor_lists(), node_ids)
    @settings(max_examples=80)
    def test_sanitized_never_keeps_foreign_marks(self, lst, receiver):
        sanitized = lst.sanitized_for(receiver)
        for node in sanitized.marked_nodes():
            assert node == receiver
            assert sanitized.mark_of(node) is Mark.SINGLE


class TestChecksProperties:
    @given(ancestor_lists(), node_ids, st.integers(min_value=1, max_value=5))
    @settings(max_examples=80)
    def test_good_list_never_accepts_overlong_lists(self, lst, receiver, dmax):
        if len(lst) > dmax + 1:
            assert not good_list(lst, receiver, dmax)

    @given(ancestor_lists(), ancestor_lists(), node_ids)
    @settings(max_examples=60)
    def test_naive_acceptance_implies_optimized_acceptance(self, local, received, receiver):
        dmax = 3
        if compatible_list(local, received, receiver, dmax, optimized=False):
            assert compatible_list(local, received, receiver, dmax, optimized=True)


@st.composite
def random_partitioned_graph(draw):
    """A random geometric-ish graph plus a partition of its nodes."""
    n = draw(st.integers(min_value=1, max_value=8))
    edge_flags = draw(st.lists(st.booleans(), min_size=n * (n - 1) // 2,
                               max_size=n * (n - 1) // 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    index = 0
    for i in range(n):
        for j in range(i + 1, n):
            if edge_flags[index]:
                graph.add_edge(i, j)
            index += 1
    assignment = draw(st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n))
    groups = {}
    for node, label in enumerate(assignment):
        groups.setdefault(label, set()).add(node)
    views = {}
    for members in groups.values():
        frozen = frozenset(members)
        for node in members:
            views[node] = frozen
    return graph, views


class TestPredicateProperties:
    @given(random_partitioned_graph())
    @settings(max_examples=80)
    def test_partition_views_always_agree(self, graph_and_views):
        _, views = graph_and_views
        assert agreement(views)

    @given(random_partitioned_graph())
    @settings(max_examples=80)
    def test_omega_is_a_partition(self, graph_and_views):
        _, views = graph_and_views
        groups = omega(views)
        distinct = set(groups.values())
        seen = set()
        for group in distinct:
            assert not (seen & group)
            seen |= group
        assert seen == set(views)

    @given(random_partitioned_graph(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=80)
    def test_safety_equivalent_to_diameter_bound(self, graph_and_views, dmax):
        graph, views = graph_and_views
        expected = all(subgraph_diameter(graph, group) <= dmax
                       for group in set(omega(views).values()))
        assert safety(views, graph, dmax) == expected

    @given(random_partitioned_graph())
    @settings(max_examples=50)
    def test_continuity_reflexive(self, graph_and_views):
        _, views = graph_and_views
        groups = omega(views)
        assert continuity(groups, groups)
