"""Unit tests for goodList and compatibleList."""


from repro.core.ancestor_list import AncestorList
from repro.core.checks import compatible_list, good_list, group_span, merged_pair_bound
from repro.core.identity import Mark

from conftest import alist, marked


class TestGoodList:
    def test_accepts_handshaked_list(self):
        # Sender u advertises v among its direct neighbours.
        lst = alist({"u"}, {"v", "w"})
        assert good_list(lst, "v", dmax=3)

    def test_accepts_marked_receiver_at_level_one(self):
        lst = marked([{"u": 0}, {"v": 1}])
        assert good_list(lst, "v", dmax=3)

    def test_accepts_receiver_known_deeper_unmarked(self):
        # Section 4.1 prose: the list "contains v" — alternate-path knowledge.
        lst = alist({"u"}, {"w"}, {"v"})
        assert good_list(lst, "v", dmax=3)

    def test_rejects_list_without_receiver(self):
        assert not good_list(alist({"u"}), "v", dmax=3)
        assert not good_list(alist({"u"}, {"w"}), "v", dmax=3)

    def test_rejects_too_long_list(self):
        lst = alist({"u"}, {"v"}, {"a"}, {"b"}, {"c"})
        assert not good_list(lst, "v", dmax=3)
        assert good_list(lst, "v", dmax=4)

    def test_rejects_empty_level(self):
        lst = AncestorList(({"u": Mark.NONE}, {"v": Mark.NONE}, {}, {"w": Mark.NONE}))
        assert not good_list(lst, "v", dmax=5)

    def test_rejects_receiver_only_double_marked_deep(self):
        lst = marked([{"u": 0}, {"w": 0}, {"v": 2}])
        assert not good_list(lst, "v", dmax=3)


class TestMergedPairBound:
    def test_route_through_both_nodes(self):
        pos_local = {"x": 2, "v": 0}
        pos_recv = {"y": 1, "u": 0}
        assert merged_pair_bound(pos_local, pos_recv, "x", "y") == 4

    def test_route_through_local_list_only(self):
        pos_local = {"x": 2, "y": 1}
        pos_recv = {"y": 3}
        assert merged_pair_bound(pos_local, pos_recv, "x", "y") == 3

    def test_unknown_positions_give_infinity(self):
        assert merged_pair_bound({}, {}, "x", "y") == float("inf")


class TestCompatibleList:
    def test_two_singletons_always_compatible(self):
        local = AncestorList.singleton("v")
        received = alist({"u"}, {"v"})
        assert compatible_list(local, received, "v", dmax=1)

    def test_adjacent_node_joining_small_group(self):
        # Group {v, a} (diameter 1), newcomer u adjacent to v only, Dmax=2:
        # union diameter 2 -> compatible.
        local = alist({"v"}, {"a"})
        received = alist({"u"}, {"v"})
        assert compatible_list(local, received, "v", dmax=2,
                               local_members={"v", "a"}, sender_members={"u"})

    def test_rejects_when_chain_would_exceed_dmax(self):
        # Group {v, a} with d(v, a)=1, newcomer u adjacent to v only, Dmax=1:
        # a-v-u has diameter 2 -> incompatible.
        local = alist({"v"}, {"a"})
        received = alist({"u"}, {"v"})
        assert not compatible_list(local, received, "v", dmax=1,
                                   local_members={"v", "a"}, sender_members={"u"})

    def test_shortcut_through_pairwise_knowledge(self):
        # v's group is {v, a} with a at distance 2.  The sender u brings member
        # b, but v already knows b at distance 1 (a shortcut the whole-span test
        # ignores): d(a, b) <= 2 + 1 = 3, so the merge fits Dmax = 3.
        local = alist({"v"}, {"b"}, {"a"})
        received = alist({"u"}, {"v", "b"})
        assert compatible_list(local, received, "v", dmax=3,
                               local_members={"v", "a"}, sender_members={"u", "b"})

    def test_naive_variant_rejects_shortcut_case(self):
        local = alist({"v"}, {"b"}, {"a"})
        received = alist({"u"}, {"v", "b"})
        assert not compatible_list(local, received, "v", dmax=3, optimized=False,
                                   local_members={"v", "a"}, sender_members={"u", "b"})

    def test_two_established_groups_merge_when_total_span_fits(self):
        # {v, a} and {u, b} in a chain a-v-u-b with Dmax=3.
        local = alist({"v"}, {"a"})
        received = alist({"u"}, {"v", "b"})
        assert compatible_list(local, received, "v", dmax=3,
                               local_members={"v", "a"}, sender_members={"u", "b"})

    def test_two_established_groups_rejected_when_too_long(self):
        local = alist({"v"}, {"a"})
        received = alist({"u"}, {"v", "b"})
        assert not compatible_list(local, received, "v", dmax=2,
                                   local_members={"v", "a"}, sender_members={"u", "b"})

    def test_overlapping_views_are_compatible(self):
        # Sender's exclusive members are already all in the local view.
        local = alist({"v"}, {"u", "a"})
        received = alist({"u"}, {"v", "a"})
        assert compatible_list(local, received, "v", dmax=1,
                               local_members={"v", "u", "a"}, sender_members={"u", "a"})

    def test_defaults_use_list_content_when_views_not_given(self):
        local = alist({"v"}, {"a"})
        received = alist({"u"}, {"v"}, {"b"})
        assert compatible_list(local, received, "v", dmax=4)
        assert not compatible_list(local, received, "v", dmax=2)


class TestGroupSpan:
    def test_span_of_restricted_members(self):
        lst = alist({"v"}, {"a", "x"}, {"b"})
        assert group_span(lst, members={"v", "b"}) == 2
        assert group_span(lst, members={"v"}) == 0
        assert group_span(lst) == 2

    def test_span_excludes_requested_nodes(self):
        lst = alist({"v"}, {"a"}, {"b"})
        assert group_span(lst, exclude={"b"}) == 1

    def test_span_of_empty_restriction_is_zero(self):
        assert group_span(alist({"v"}), members=set()) == 0
