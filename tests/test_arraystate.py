"""Unit and exactness tests for the array-native state backend.

:mod:`repro.net.arraystate` promises two things: the
:class:`NodeArrayStore` mirrors the network's node table exactly through any
insert/remove/update sequence (rows dense, swap-with-last removal, order
stamps intact), and the :class:`ArrayLinkState` CSR adjacency equals the
scalar ``math.hypot(dx, dy) <= r`` link predicate *bit for bit* — the
guard-banded squared-distance filter may never flip an inclusive comparison,
even for coincident points, nodes exactly at range and cell-edge placements.
The ``decide_batch_fast`` parity tests hold the zero-delay channel shortcut
to the same standard: identical accept/drop counts, counters and RNG stream
as the full batch path.
"""

import math

import numpy as np
import pytest

from repro.net.arraystate import ArrayLinkState, NodeArrayStore
from repro.net.channel import CollisionChannel, LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process


class Idle(Process):
    def on_message(self, sender, payload):
        pass


def make_store(points):
    store = NodeArrayStore()
    for i, pos in enumerate(points):
        store.insert(i, pos, order=i, proc=f"proc-{i}", active=True)
    return store


def brute_arcs(points, r):
    out = set()
    for i, p in enumerate(points):
        for j, q in enumerate(points):
            if i != j and math.hypot(p[0] - q[0], p[1] - q[1]) <= r:
                out.add((i, j))
    return out


# ------------------------------------------------------------ NodeArrayStore


class TestNodeArrayStore:
    def test_insert_assigns_dense_rows(self):
        store = make_store([(0.0, 0.0), (1.0, 2.0), (3.0, 4.0)])
        assert len(store) == 3
        assert [store.row_of[i] for i in range(3)] == [0, 1, 2]
        assert store.position_of(1) == (1.0, 2.0)
        assert 2 in store and 7 not in store

    def test_duplicate_insert_rejected(self):
        store = make_store([(0.0, 0.0)])
        with pytest.raises(ValueError):
            store.insert(0, (1.0, 1.0), order=9, proc=None, active=True)

    def test_remove_swaps_last_row_in(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        store.remove(0)
        assert len(store) == 2
        # Node 2 (last row) moved into row 0; all mirrors must follow.
        assert store.row_of[2] == 0
        assert store.position_of(2) == (2.0, 2.0)
        assert store.order[0] == 2
        assert store.ids[0] == 2
        assert store.procs[0] == "proc-2"
        # Vacated tail releases its object references.
        assert store.ids[2] is None and store.procs[2] is None

    def test_remove_last_row(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0)])
        store.remove(1)
        assert len(store) == 1
        assert 1 not in store.row_of
        assert store.position_of(0) == (0.0, 0.0)

    def test_update_and_write_rows(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        store.update(1, (9.0, 9.0))
        assert store.position_of(1) == (9.0, 9.0)
        store.write_rows(np.array([0, 2]), np.array([[5.0, 5.0], [6.0, 6.0]]))
        assert store.position_of(0) == (5.0, 5.0)
        assert store.position_of(2) == (6.0, 6.0)

    def test_set_active_tracks_mask(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0)])
        store.set_active(0, False)
        assert not store.active[store.row_of[0]]
        assert store.active[store.row_of[1]]
        store.set_active(99, False)  # unknown node: silent no-op

    def test_growth_beyond_initial_capacity(self):
        points = [(float(i), float(2 * i)) for i in range(200)]
        store = make_store(points)
        assert len(store) == 200
        for i in (0, 63, 64, 199):
            assert store.position_of(i) == points[i]
            assert store.order[store.row_of[i]] == i


# ----------------------------------------------------- ArrayLinkState exactness


class TestArrayLinkStateExactness:
    def build(self, points, r):
        store = make_store(points)
        return ArrayLinkState(r, store)

    def assert_matches_brute(self, points, r):
        ls = self.build(points, r)
        assert set(ls.arcs()) == brute_arcs(points, r)

    def test_random_field_matches_brute_force(self):
        rng = np.random.default_rng(7)
        points = [tuple(map(float, p)) for p in rng.uniform(0, 400, size=(150, 2))]
        self.assert_matches_brute(points, 60.0)

    def test_coincident_points_all_linked(self):
        # Zero-distance pairs sit exactly on the sq <= r*r boundary when
        # r == 0 and well inside it otherwise; both must link.
        points = [(10.0, 10.0)] * 5 + [(10.0, 11.0)]
        ls = self.build(points, 2.0)
        arcs = set(ls.arcs())
        assert arcs == brute_arcs(points, 2.0)
        assert (0, 1) in arcs and (4, 5) in arcs

    def test_exactly_at_range_is_inclusive(self):
        # d == r exactly: the inclusive scalar predicate keeps the link, so
        # the guard-band re-check must too.  3-4-5 triangles make d == r
        # exact in floating point.
        points = [(0.0, 0.0), (3.0, 4.0), (6.0, 8.0), (3.0, -4.0)]
        ls = self.build(points, 5.0)
        arcs = set(ls.arcs())
        assert arcs == brute_arcs(points, 5.0)
        assert (0, 1) in arcs and (1, 2) in arcs
        assert (0, 2) not in arcs  # d = 10 > 5

    def test_just_beyond_range_is_excluded(self):
        r = 5.0
        eps = math.ulp(5.0)
        points = [(0.0, 0.0), (r + eps, 0.0), (r, 0.0)]
        ls = self.build(points, r)
        arcs = set(ls.arcs())
        assert (0, 2) in arcs
        assert (0, 1) not in arcs

    def test_cell_edge_placements(self):
        # Nodes at exact multiples of the cell side (cell side == r in the
        # binning pass): every same-edge and cross-edge pair must match the
        # scalar predicate, including the corner pairs at exactly sqrt(2)*r
        # (excluded) and axis pairs at exactly r (included).
        r = 10.0
        points = [(x * r, y * r) for x in range(4) for y in range(4)]
        self.assert_matches_brute(points, r)
        ls = self.build(points, r)
        arcs = set(ls.arcs())
        assert (0, 1) in arcs       # (0,0)-(0,10): d == r
        assert (0, 5) not in arcs   # (0,0)-(10,10): d == sqrt(2)*r > r

    def test_negative_coordinates(self):
        rng = np.random.default_rng(3)
        points = [tuple(map(float, p)) for p in rng.uniform(-300, 300, size=(80, 2))]
        self.assert_matches_brute(points, 90.0)

    def test_rebuild_after_store_mutation(self):
        points = [(0.0, 0.0), (5.0, 0.0), (50.0, 0.0)]
        store = make_store(points)
        ls = ArrayLinkState(10.0, store)
        assert set(ls.arcs()) == {(0, 1), (1, 0)}
        store.update(2, (10.0, 0.0))
        ls.mark_dirty()
        assert set(ls.arcs()) == brute_arcs([(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)], 10.0)
        store.remove(1)
        assert set(ls.arcs()) == {(0, 2), (2, 0)}  # membership change auto-detected

    def test_active_receivers_filter_and_order(self):
        points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
        store = make_store(points)
        ls = ArrayLinkState(10.0, store)
        ids, procs = ls.active_receivers(0, token=1)
        assert ids == [1, 2, 3]  # insertion order
        assert list(procs) == ["proc-1", "proc-2", "proc-3"]
        store.set_active(2, False)
        ids, procs = ls.active_receivers(0, token=2)  # new token -> refilter
        assert ids == [1, 3]
        assert list(procs) == ["proc-1", "proc-3"]
        # Same token serves the cached filtered view.
        ids_again, _ = ls.active_receivers(0, token=2)
        assert ids_again == [1, 3]


# ------------------------------------------- incremental CSR patch exactness


class TestIncrementalPatchEquivalence:
    """The incremental CSR patch must be *byte*-identical to a full rebuild.

    Mirrors ``tests/test_linkstate.py``'s randomized delta-sequence test for
    the dict cache: after every batch of row moves, the patched ``_indptr``/
    ``_indices`` arenas must equal those a fresh full rebuild produces —
    same arcs, same receiver order, same dtypes — including coincident
    points, nodes exactly at range and cell-edge placements, and moves that
    leave the cached binning's occupied area entirely.
    """

    R = 60.0

    def reference_csr(self, store, r=None):
        ref = ArrayLinkState(self.R if r is None else r, store, incremental=False)
        ref._ensure()
        return (ref._indptr[: store.n + 1].copy(), ref._indices[: ref._m].copy())

    def assert_csr_equals_rebuild(self, ls, store, r=None):
        ls._ensure()
        got_indptr = ls._indptr[: store.n + 1]
        got_indices = ls._indices[: ls._m]
        ref_indptr, ref_indices = self.reference_csr(store, r)
        assert np.array_equal(got_indptr, ref_indptr)
        assert np.array_equal(got_indices, ref_indices)

    def test_randomized_delta_sequences_match_rebuild(self):
        rng = np.random.default_rng(42)
        patches = 0
        for _trial in range(8):
            n = int(rng.integers(30, 120))
            pts = rng.uniform(0.0, 400.0, size=(n, 2))
            store = make_store([tuple(map(float, p)) for p in pts])
            ls = ArrayLinkState(self.R, store, incremental=True)
            ls._ensure()  # initial full rebuild caches the cell binning
            next_id = n
            for _step in range(25):
                op = rng.random()
                if op < 0.08:
                    # Membership change: forces (and must survive) a rebuild.
                    store.insert(next_id, tuple(map(float, rng.uniform(0, 400, 2))),
                                 order=next_id, proc=f"proc-{next_id}", active=True)
                    next_id += 1
                    ls.mark_dirty()
                elif op < 0.14 and store.n > 10:
                    victim = store.ids[int(rng.integers(0, store.n))]
                    store.remove(victim)
                    ls.mark_dirty()
                else:
                    k = int(rng.integers(1, 6))
                    rows = rng.choice(store.n, size=k, replace=False)
                    # Mix in-area moves with excursions outside the cached
                    # binning's occupied cells (negative / far coordinates).
                    xy = rng.uniform(-80.0, 480.0, size=(k, 2))
                    store.write_rows(rows, xy)
                    ls.mark_rows_dirty(rows)
                self.assert_csr_equals_rebuild(ls, store)
            patches += ls.patch_count
        assert patches > 50  # the patch path, not the rebuild fallback, ran

    def test_patch_onto_coincident_and_exactly_at_range(self):
        # Far-away isolated padding keeps n large enough that two dirty rows
        # stay under the patch thresholds (tiny fields rebuild — cheaper).
        r = 5.0
        pad = [(2000.0 + 40.0 * i, 2000.0) for i in range(36)]
        store = make_store([(0.0, 0.0), (100.0, 100.0), (50.0, 50.0),
                            (200.0, 0.0)] + pad)
        ls = ArrayLinkState(r, store, incremental=True)
        ls._ensure()
        # Node 1 lands exactly on node 0 (coincident); node 3 lands at
        # d == r exactly (3-4-5 triangle) — both links must appear, bit-equal
        # to the rebuild's inclusive predicate.
        store.update(1, (0.0, 0.0))
        ls.mark_row_dirty(store.row_of[1])
        store.update(3, (3.0, 4.0))
        ls.mark_row_dirty(store.row_of[3])
        self.assert_csr_equals_rebuild(ls, store, r)
        arcs = set(ls.arcs())
        assert (0, 1) in arcs and (1, 0) in arcs
        assert (0, 3) in arcs and (1, 3) in arcs
        assert ls.patch_count == 1 and ls.rebuild_count == 1

    def test_patch_cell_edge_placements(self):
        # Movers landing on exact multiples of the cell side (== r): the
        # patched candidate harvest must keep axis pairs at exactly r and
        # exclude corner pairs at sqrt(2)*r, like the full binning pass.
        r = 10.0
        pts = [(x * r, y * r) for x in range(4) for y in range(4)]
        store = make_store(pts + [(1000.0, 1000.0), (1100.0, 1100.0)])
        ls = ArrayLinkState(r, store, incremental=True)
        ls._ensure()
        store.update(16, (2 * r, 4 * r))
        ls.mark_row_dirty(store.row_of[16])
        store.update(17, (4 * r, 2 * r))
        ls.mark_row_dirty(store.row_of[17])
        self.assert_csr_equals_rebuild(ls, store, r)
        arcs = set(ls.arcs())
        assert (16, 11) in arcs      # (20,40)-(20,30): d == r exactly
        assert (16, 7) not in arcs   # (20,40)-(10,30): d == sqrt(2)*r
        assert (17, 14) in arcs      # (40,20)-(30,20): d == r exactly
        assert ls.patch_count == 1

    def test_patch_pairs_between_two_movers(self):
        # Both endpoints dirty: the (moved, moved) mini-pass must find the
        # pair even though neither node sits where the cached binning put it.
        pad = [(5000.0 + 200.0 * i, 5000.0) for i in range(30)]
        store = make_store([(0.0, 0.0), (500.0, 0.0), (0.0, 500.0)] + pad)
        ls = ArrayLinkState(50.0, store, incremental=True)
        ls._ensure()
        assert set(ls.arcs()) == set()
        store.update(1, (900.0, 900.0))
        ls.mark_row_dirty(store.row_of[1])
        store.update(2, (930.0, 940.0))
        ls.mark_row_dirty(store.row_of[2])
        self.assert_csr_equals_rebuild(ls, store, 50.0)
        assert set(ls.arcs()) == {(1, 2), (2, 1)}
        assert ls.patch_count == 1

    def test_stale_accumulation_forces_rebuild(self):
        # Repeated small batches leave ever more rows whose cached-binning
        # cell is outdated; past STALE_MAX_FRACTION the refresh must fall
        # back to a rebuild (and stay exact throughout).
        rng = np.random.default_rng(9)
        pts = rng.uniform(0.0, 300.0, size=(60, 2))
        store = make_store([tuple(map(float, p)) for p in pts])
        ls = ArrayLinkState(self.R, store, incremental=True)
        ls._ensure()
        for _step in range(20):
            rows = rng.choice(store.n, size=3, replace=False)
            store.write_rows(rows, rng.uniform(0.0, 300.0, size=(3, 2)))
            ls.mark_rows_dirty(rows)
            self.assert_csr_equals_rebuild(ls, store)
        assert ls.rebuild_count > 1  # stale pressure triggered at least one
        assert ls.patch_count > 0

    def test_incremental_off_always_rebuilds(self):
        store = make_store([(0.0, 0.0), (10.0, 0.0)])
        ls = ArrayLinkState(15.0, store, incremental=False)
        ls._ensure()
        store.update(1, (5.0, 0.0))
        ls.mark_row_dirty(store.row_of[1])
        ls._ensure()
        assert ls.patch_count == 0 and ls.rebuild_count == 2


# ---------------------------------------------- network-level array semantics


class TestNetworkArrayBackend:
    def build(self, n=30, r=120.0, seed=5, area=400.0):
        sim = Simulator(seed=seed)
        network = Network(sim, radio=UnitDiskRadio(r), array_state=True)
        rng = np.random.default_rng(seed)
        for i in range(n):
            network.add_node(Idle(i), (float(rng.uniform(0, area)),
                                       float(rng.uniform(0, area))))
        return network

    def test_array_backend_engaged_for_uniform_radio(self):
        network = self.build()
        assert isinstance(network._link_state(), ArrayLinkState)

    def test_neighbors_match_dict_backend(self):
        fast = self.build()
        slow = self.build()
        slow.array_state = False
        assert slow._link_state() is not None
        assert not isinstance(slow._link_state(), ArrayLinkState)
        for node in fast.node_ids:
            assert fast.neighbors_of(node) == slow.neighbors_of(node)
        assert set(fast.topology().edges) == set(slow.topology().edges)
        assert (set(fast.directed_topology().edges)
                == set(slow.directed_topology().edges))


# ------------------------------------------------- decide_batch_fast parity


RECEIVERS = list(range(40))


class TestDecideBatchFastParity:
    """The zero-delay shortcut must be indistinguishable from decide_batch."""

    def test_perfect_channel_accepts_everything(self):
        channel = PerfectChannel()
        res = channel.decide_batch_fast("s", RECEIVERS, 0.0)
        assert res == (None, len(RECEIVERS))

    def test_perfect_channel_with_delay_declines(self):
        assert PerfectChannel(delay=0.5).decide_batch_fast("s", RECEIVERS, 0.0) is None

    def test_lossy_parity_counts_and_rng(self):
        fast = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(11))
        slow = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(11))
        for _ in range(10):
            mask, accepted = fast.decide_batch_fast("s", RECEIVERS, 0.0)
            batch = slow.decide_batch("s", RECEIVERS, 0.0)
            assert accepted == batch.accepted()
            assert mask.tolist() == list(batch.delivered)
            # Same RNG consumption: the streams stay in lockstep.
            assert (fast._rng.bit_generator.state
                    == slow._rng.bit_generator.state)
        assert fast.delivered == slow.delivered
        assert fast.dropped == slow.dropped

    def test_lossy_lossless_shortcut(self):
        channel = LossyChannel(loss_probability=0.0,
                               rng=np.random.default_rng(2))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) == (None, len(RECEIVERS))
        assert channel.delivered == len(RECEIVERS)
        # p == 0 consumes no randomness.
        assert channel._rng.bit_generator.state == state_before

    def test_lossy_with_delay_declines_without_rng_consumption(self):
        channel = LossyChannel(loss_probability=0.3, min_delay=0.1, max_delay=0.2,
                               rng=np.random.default_rng(4))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) is None
        assert channel._rng.bit_generator.state == state_before
        assert channel.delivered == 0 and channel.dropped == 0

    def test_lossy_empty_batch(self):
        channel = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(6))
        assert channel.decide_batch_fast("s", [], 0.0) == (None, 0)

    def test_collision_channel_always_declines(self):
        channel = CollisionChannel(collision_window=0.1,
                                   rng=np.random.default_rng(8))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) is None
        assert channel._rng.bit_generator.state == state_before
