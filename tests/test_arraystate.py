"""Unit and exactness tests for the array-native state backend.

:mod:`repro.net.arraystate` promises two things: the
:class:`NodeArrayStore` mirrors the network's node table exactly through any
insert/remove/update sequence (rows dense, swap-with-last removal, order
stamps intact), and the :class:`ArrayLinkState` CSR adjacency equals the
scalar ``math.hypot(dx, dy) <= r`` link predicate *bit for bit* — the
guard-banded squared-distance filter may never flip an inclusive comparison,
even for coincident points, nodes exactly at range and cell-edge placements.
The ``decide_batch_fast`` parity tests hold the zero-delay channel shortcut
to the same standard: identical accept/drop counts, counters and RNG stream
as the full batch path.
"""

import math

import numpy as np
import pytest

from repro.net.arraystate import ArrayLinkState, NodeArrayStore
from repro.net.channel import CollisionChannel, LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process


class Idle(Process):
    def on_message(self, sender, payload):
        pass


def make_store(points):
    store = NodeArrayStore()
    for i, pos in enumerate(points):
        store.insert(i, pos, order=i, proc=f"proc-{i}", active=True)
    return store


def brute_arcs(points, r):
    out = set()
    for i, p in enumerate(points):
        for j, q in enumerate(points):
            if i != j and math.hypot(p[0] - q[0], p[1] - q[1]) <= r:
                out.add((i, j))
    return out


# ------------------------------------------------------------ NodeArrayStore


class TestNodeArrayStore:
    def test_insert_assigns_dense_rows(self):
        store = make_store([(0.0, 0.0), (1.0, 2.0), (3.0, 4.0)])
        assert len(store) == 3
        assert [store.row_of[i] for i in range(3)] == [0, 1, 2]
        assert store.position_of(1) == (1.0, 2.0)
        assert 2 in store and 7 not in store

    def test_duplicate_insert_rejected(self):
        store = make_store([(0.0, 0.0)])
        with pytest.raises(ValueError):
            store.insert(0, (1.0, 1.0), order=9, proc=None, active=True)

    def test_remove_swaps_last_row_in(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        store.remove(0)
        assert len(store) == 2
        # Node 2 (last row) moved into row 0; all mirrors must follow.
        assert store.row_of[2] == 0
        assert store.position_of(2) == (2.0, 2.0)
        assert store.order[0] == 2
        assert store.ids[0] == 2
        assert store.procs[0] == "proc-2"
        # Vacated tail releases its object references.
        assert store.ids[2] is None and store.procs[2] is None

    def test_remove_last_row(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0)])
        store.remove(1)
        assert len(store) == 1
        assert 1 not in store.row_of
        assert store.position_of(0) == (0.0, 0.0)

    def test_update_and_write_rows(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        store.update(1, (9.0, 9.0))
        assert store.position_of(1) == (9.0, 9.0)
        store.write_rows(np.array([0, 2]), np.array([[5.0, 5.0], [6.0, 6.0]]))
        assert store.position_of(0) == (5.0, 5.0)
        assert store.position_of(2) == (6.0, 6.0)

    def test_set_active_tracks_mask(self):
        store = make_store([(0.0, 0.0), (1.0, 1.0)])
        store.set_active(0, False)
        assert not store.active[store.row_of[0]]
        assert store.active[store.row_of[1]]
        store.set_active(99, False)  # unknown node: silent no-op

    def test_growth_beyond_initial_capacity(self):
        points = [(float(i), float(2 * i)) for i in range(200)]
        store = make_store(points)
        assert len(store) == 200
        for i in (0, 63, 64, 199):
            assert store.position_of(i) == points[i]
            assert store.order[store.row_of[i]] == i


# ----------------------------------------------------- ArrayLinkState exactness


class TestArrayLinkStateExactness:
    def build(self, points, r):
        store = make_store(points)
        return ArrayLinkState(r, store)

    def assert_matches_brute(self, points, r):
        ls = self.build(points, r)
        assert set(ls.arcs()) == brute_arcs(points, r)

    def test_random_field_matches_brute_force(self):
        rng = np.random.default_rng(7)
        points = [tuple(map(float, p)) for p in rng.uniform(0, 400, size=(150, 2))]
        self.assert_matches_brute(points, 60.0)

    def test_coincident_points_all_linked(self):
        # Zero-distance pairs sit exactly on the sq <= r*r boundary when
        # r == 0 and well inside it otherwise; both must link.
        points = [(10.0, 10.0)] * 5 + [(10.0, 11.0)]
        ls = self.build(points, 2.0)
        arcs = set(ls.arcs())
        assert arcs == brute_arcs(points, 2.0)
        assert (0, 1) in arcs and (4, 5) in arcs

    def test_exactly_at_range_is_inclusive(self):
        # d == r exactly: the inclusive scalar predicate keeps the link, so
        # the guard-band re-check must too.  3-4-5 triangles make d == r
        # exact in floating point.
        points = [(0.0, 0.0), (3.0, 4.0), (6.0, 8.0), (3.0, -4.0)]
        ls = self.build(points, 5.0)
        arcs = set(ls.arcs())
        assert arcs == brute_arcs(points, 5.0)
        assert (0, 1) in arcs and (1, 2) in arcs
        assert (0, 2) not in arcs  # d = 10 > 5

    def test_just_beyond_range_is_excluded(self):
        r = 5.0
        eps = math.ulp(5.0)
        points = [(0.0, 0.0), (r + eps, 0.0), (r, 0.0)]
        ls = self.build(points, r)
        arcs = set(ls.arcs())
        assert (0, 2) in arcs
        assert (0, 1) not in arcs

    def test_cell_edge_placements(self):
        # Nodes at exact multiples of the cell side (cell side == r in the
        # binning pass): every same-edge and cross-edge pair must match the
        # scalar predicate, including the corner pairs at exactly sqrt(2)*r
        # (excluded) and axis pairs at exactly r (included).
        r = 10.0
        points = [(x * r, y * r) for x in range(4) for y in range(4)]
        self.assert_matches_brute(points, r)
        ls = self.build(points, r)
        arcs = set(ls.arcs())
        assert (0, 1) in arcs       # (0,0)-(0,10): d == r
        assert (0, 5) not in arcs   # (0,0)-(10,10): d == sqrt(2)*r > r

    def test_negative_coordinates(self):
        rng = np.random.default_rng(3)
        points = [tuple(map(float, p)) for p in rng.uniform(-300, 300, size=(80, 2))]
        self.assert_matches_brute(points, 90.0)

    def test_rebuild_after_store_mutation(self):
        points = [(0.0, 0.0), (5.0, 0.0), (50.0, 0.0)]
        store = make_store(points)
        ls = ArrayLinkState(10.0, store)
        assert set(ls.arcs()) == {(0, 1), (1, 0)}
        store.update(2, (10.0, 0.0))
        ls.mark_dirty()
        assert set(ls.arcs()) == brute_arcs([(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)], 10.0)
        store.remove(1)
        assert set(ls.arcs()) == {(0, 2), (2, 0)}  # membership change auto-detected

    def test_active_receivers_filter_and_order(self):
        points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
        store = make_store(points)
        ls = ArrayLinkState(10.0, store)
        ids, procs = ls.active_receivers(0, token=1)
        assert ids == [1, 2, 3]  # insertion order
        assert list(procs) == ["proc-1", "proc-2", "proc-3"]
        store.set_active(2, False)
        ids, procs = ls.active_receivers(0, token=2)  # new token -> refilter
        assert ids == [1, 3]
        assert list(procs) == ["proc-1", "proc-3"]
        # Same token serves the cached filtered view.
        ids_again, _ = ls.active_receivers(0, token=2)
        assert ids_again == [1, 3]


# ---------------------------------------------- network-level array semantics


class TestNetworkArrayBackend:
    def build(self, n=30, r=120.0, seed=5, area=400.0):
        sim = Simulator(seed=seed)
        network = Network(sim, radio=UnitDiskRadio(r), array_state=True)
        rng = np.random.default_rng(seed)
        for i in range(n):
            network.add_node(Idle(i), (float(rng.uniform(0, area)),
                                       float(rng.uniform(0, area))))
        return network

    def test_array_backend_engaged_for_uniform_radio(self):
        network = self.build()
        assert isinstance(network._link_state(), ArrayLinkState)

    def test_neighbors_match_dict_backend(self):
        fast = self.build()
        slow = self.build()
        slow.array_state = False
        assert slow._link_state() is not None
        assert not isinstance(slow._link_state(), ArrayLinkState)
        for node in fast.node_ids:
            assert fast.neighbors_of(node) == slow.neighbors_of(node)
        assert set(fast.topology().edges) == set(slow.topology().edges)
        assert (set(fast.directed_topology().edges)
                == set(slow.directed_topology().edges))


# ------------------------------------------------- decide_batch_fast parity


RECEIVERS = list(range(40))


class TestDecideBatchFastParity:
    """The zero-delay shortcut must be indistinguishable from decide_batch."""

    def test_perfect_channel_accepts_everything(self):
        channel = PerfectChannel()
        res = channel.decide_batch_fast("s", RECEIVERS, 0.0)
        assert res == (None, len(RECEIVERS))

    def test_perfect_channel_with_delay_declines(self):
        assert PerfectChannel(delay=0.5).decide_batch_fast("s", RECEIVERS, 0.0) is None

    def test_lossy_parity_counts_and_rng(self):
        fast = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(11))
        slow = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(11))
        for _ in range(10):
            mask, accepted = fast.decide_batch_fast("s", RECEIVERS, 0.0)
            batch = slow.decide_batch("s", RECEIVERS, 0.0)
            assert accepted == batch.accepted()
            assert mask.tolist() == list(batch.delivered)
            # Same RNG consumption: the streams stay in lockstep.
            assert (fast._rng.bit_generator.state
                    == slow._rng.bit_generator.state)
        assert fast.delivered == slow.delivered
        assert fast.dropped == slow.dropped

    def test_lossy_lossless_shortcut(self):
        channel = LossyChannel(loss_probability=0.0,
                               rng=np.random.default_rng(2))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) == (None, len(RECEIVERS))
        assert channel.delivered == len(RECEIVERS)
        # p == 0 consumes no randomness.
        assert channel._rng.bit_generator.state == state_before

    def test_lossy_with_delay_declines_without_rng_consumption(self):
        channel = LossyChannel(loss_probability=0.3, min_delay=0.1, max_delay=0.2,
                               rng=np.random.default_rng(4))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) is None
        assert channel._rng.bit_generator.state == state_before
        assert channel.delivered == 0 and channel.dropped == 0

    def test_lossy_empty_batch(self):
        channel = LossyChannel(loss_probability=0.3, rng=np.random.default_rng(6))
        assert channel.decide_batch_fast("s", [], 0.0) == (None, 0)

    def test_collision_channel_always_declines(self):
        channel = CollisionChannel(collision_window=0.1,
                                   rng=np.random.default_rng(8))
        state_before = channel._rng.bit_generator.state
        assert channel.decide_batch_fast("s", RECEIVERS, 0.0) is None
        assert channel._rng.bit_generator.state == state_before
