"""Unit tests for the ordered list of ancestors' sets and the ant r-operator."""

import pytest

from repro.core.ancestor_list import AncestorList
from repro.core.identity import Mark

from conftest import alist, marked


class TestConstruction:
    def test_singleton_has_one_level(self):
        lst = AncestorList.singleton("v")
        assert len(lst) == 1
        assert lst.level_nodes(0) == {"v"}
        assert lst.mark_of("v") is Mark.NONE

    def test_singleton_with_mark(self):
        lst = AncestorList.singleton("u", Mark.DOUBLE)
        assert lst.mark_of("u") is Mark.DOUBLE

    def test_from_levels_builds_unmarked_list(self):
        lst = alist({"a"}, {"b", "c"})
        assert len(lst) == 2
        assert lst.level_nodes(1) == {"b", "c"}
        assert lst.unmarked_nodes() == {"a", "b", "c"}

    def test_trailing_empty_levels_are_dropped(self):
        lst = AncestorList(({"a": Mark.NONE}, {}, {}))
        assert len(lst) == 1

    def test_duplicate_across_levels_keeps_smallest(self):
        lst = alist({"a"}, {"b"}, {"a", "c"})
        assert lst.position_of("a") == 0
        assert lst.level_nodes(2) == {"c"}

    def test_empty_list(self):
        lst = AncestorList()
        assert len(lst) == 0
        assert not lst
        assert lst.nodes() == set()


class TestPaperExample:
    def test_oplus_example_from_section_4_2(self):
        # ({d},{b},{a,c}) ⊕ ({c},{a,e},{b}) = ({d,c},{b,a,e})
        left = alist({"d"}, {"b"}, {"a", "c"})
        right = alist({"c"}, {"a", "e"}, {"b"})
        merged = left.merge(right)
        assert merged.level_nodes(0) == {"d", "c"}
        assert merged.level_nodes(1) == {"b", "a", "e"}
        assert len(merged) == 2

    def test_r_shift_example(self):
        lst = alist({"d"}, {"b"}, {"a", "c"})
        shifted = lst.shifted()
        assert len(shifted) == 4
        assert shifted.level_nodes(0) == set()
        assert shifted.level_nodes(1) == {"d"}

    def test_ant_is_merge_with_shift(self):
        l1 = alist({"v"})
        l2 = alist({"u"}, {"v"})
        result = l1.ant(l2)
        # v stays at level 0 (dedup), u arrives at level 1.
        assert result.position_of("v") == 0
        assert result.position_of("u") == 1


class TestOperatorProperties:
    def test_merge_is_idempotent(self):
        lst = alist({"a"}, {"b", "c"}, {"d"})
        assert lst.merge(lst) == lst

    def test_merge_is_commutative(self):
        l1 = alist({"a"}, {"b"})
        l2 = alist({"c"}, {"d", "a"})
        assert l1.merge(l2) == l2.merge(l1)

    def test_ant_keeps_self_at_level_zero(self):
        mine = AncestorList.singleton("v")
        theirs = alist({"u"}, {"v"}, {"w"})
        combined = mine.ant(theirs)
        assert combined.position_of("v") == 0
        assert combined.position_of("u") == 1
        assert combined.position_of("w") == 3

    def test_shift_of_empty_is_empty(self):
        assert len(AncestorList().shifted()) == 0


class TestQueriesAndTransforms:
    def test_contains_and_position(self):
        lst = alist({"a"}, {"b"})
        assert "b" in lst
        assert lst.position_of("b") == 1
        assert lst.position_of("zzz") is None
        assert lst.mark_of("zzz") is None

    def test_truncated(self):
        lst = alist({"a"}, {"b"}, {"c"}, {"d"})
        cut = lst.truncated(2)
        assert len(cut) == 2
        assert "c" not in cut

    def test_truncated_negative_raises(self):
        with pytest.raises(ValueError):
            alist({"a"}).truncated(-1)

    def test_without_marked_keeps_exception(self):
        lst = marked([{"u": 0}, {"v": 1, "w": 2, "x": 0}])
        cleaned = lst.without_marked(keep={"v"})
        assert cleaned.mark_of("v") is Mark.SINGLE
        assert "w" not in cleaned
        assert "x" in cleaned

    def test_sanitized_for_keeps_single_marked_receiver(self):
        lst = marked([{"u": 0}, {"v": 1, "w": 1}])
        cleaned = lst.sanitized_for("v")
        assert cleaned.mark_of("v") is Mark.SINGLE
        assert "w" not in cleaned

    def test_sanitized_for_drops_double_marked_receiver(self):
        # Proposition 3: a double-marked receiver must stop seeing itself.
        lst = marked([{"u": 0}, {"v": 2, "w": 0}])
        cleaned = lst.sanitized_for("v")
        assert "v" not in cleaned
        assert "w" in cleaned

    def test_restricted_to_members(self):
        lst = alist({"a"}, {"b", "c"}, {"d"})
        restricted = lst.restricted_to({"a", "d"})
        assert restricted.nodes() == {"a", "d"}
        assert restricted.position_of("d") == 2

    def test_stripped_removes_marked_and_receiver(self):
        lst = marked([{"u": 0}, {"v": 0, "w": 1}])
        stripped = lst.stripped(receiver="v")
        assert stripped.nodes() == {"u"}

    def test_has_empty_level(self):
        lst = AncestorList(({"a": Mark.NONE}, {}, {"b": Mark.NONE}))
        assert lst.has_empty_level()
        assert not alist({"a"}, {"b"}).has_empty_level()

    def test_relabel_mark(self):
        lst = alist({"a"}, {"b"})
        relabelled = lst.relabel_mark("b", Mark.DOUBLE)
        assert relabelled.mark_of("b") is Mark.DOUBLE
        assert lst.mark_of("b") is Mark.NONE  # original unchanged

    def test_size_counts_identities(self):
        assert alist({"a"}, {"b", "c"}).size() == 3


class TestWireFormat:
    def test_wire_roundtrip(self):
        lst = marked([{"v": 0}, {"a": 1, "b": 0}, {"c": 2}])
        assert AncestorList.from_wire(lst.to_wire()) == lst

    def test_equality_and_hash(self):
        l1 = alist({"a"}, {"b"})
        l2 = alist({"a"}, {"b"})
        assert l1 == l2
        assert hash(l1) == hash(l2)
        assert l1 != alist({"a"})

    def test_repr_mentions_marks(self):
        lst = marked([{"v": 0}, {"u": 2}])
        assert "u''" in repr(lst)
