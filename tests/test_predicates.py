"""Unit tests for the Dynamic Group Service predicates (ΠA, ΠS, ΠM, ΠT, ΠC, Ω)."""

import networkx as nx

from repro.core.predicates import (agreement, agreement_violations, continuity,
                                   continuity_violations, evaluate_configuration,
                                   groups_partition, legitimate, maximality,
                                   maximality_violations, omega, safety, safety_violations,
                                   topological)


def graph_from_edges(*edges):
    g = nx.Graph()
    g.add_edges_from(edges)
    return g


def views_of(partition):
    """Build a consistent views mapping from an iterable of member collections."""
    views = {}
    for group in partition:
        frozen = frozenset(group)
        for node in frozen:
            views[node] = frozen
    return views


class TestOmega:
    def test_consistent_views_define_groups(self):
        views = views_of([{"a", "b"}, {"c"}])
        groups = omega(views)
        assert groups["a"] == frozenset({"a", "b"})
        assert groups["c"] == frozenset({"c"})

    def test_disagreeing_member_collapses_to_singleton(self):
        views = {"a": frozenset({"a", "b"}), "b": frozenset({"b"})}
        groups = omega(views)
        assert groups["a"] == frozenset({"a"})
        assert groups["b"] == frozenset({"b"})

    def test_node_missing_from_own_view_is_singleton(self):
        views = {"a": frozenset({"b"}), "b": frozenset({"b"})}
        assert omega(views)["a"] == frozenset({"a"})

    def test_groups_partition(self):
        views = views_of([{"a", "b"}, {"c", "d"}])
        assert groups_partition(views) == {frozenset({"a", "b"}), frozenset({"c", "d"})}


class TestAgreement:
    def test_holds_on_consistent_partition(self):
        assert agreement(views_of([{"a", "b"}, {"c"}]))

    def test_fails_on_asymmetric_views(self):
        views = {"a": frozenset({"a", "b"}), "b": frozenset({"b"})}
        assert not agreement(views)
        assert agreement_violations(views)

    def test_fails_when_member_unknown(self):
        views = {"a": frozenset({"a", "zz"})}
        assert not agreement(views)


class TestSafety:
    def test_holds_when_diameter_within_bound(self):
        g = graph_from_edges(("a", "b"), ("b", "c"))
        assert safety(views_of([{"a", "b", "c"}]), g, dmax=2)

    def test_fails_when_diameter_exceeds_bound(self):
        g = graph_from_edges(("a", "b"), ("b", "c"), ("c", "d"))
        views = views_of([{"a", "b", "c", "d"}])
        assert not safety(views, g, dmax=2)
        assert safety_violations(views, g, dmax=2)

    def test_fails_when_group_disconnected_in_subgraph(self):
        g = graph_from_edges(("a", "b"), ("b", "c"))
        # group {a, c} is only connected through b, which is not a member
        assert not safety(views_of([{"a", "c"}, {"b"}]), g, dmax=2)

    def test_singletons_are_always_safe(self):
        g = nx.Graph()
        g.add_nodes_from(["a", "b"])
        assert safety(views_of([{"a"}, {"b"}]), g, dmax=1)


class TestMaximality:
    def test_fails_when_two_groups_could_merge(self):
        g = graph_from_edges(("a", "b"))
        views = views_of([{"a"}, {"b"}])
        assert not maximality(views, g, dmax=1)
        assert maximality_violations(views, g, dmax=1)

    def test_holds_when_merge_would_violate_diameter(self):
        g = graph_from_edges(("a", "b"), ("b", "c"))
        assert maximality(views_of([{"a", "b"}, {"c"}]), g, dmax=1)

    def test_holds_for_disconnected_groups(self):
        g = nx.Graph()
        g.add_nodes_from(["a", "b"])
        assert maximality(views_of([{"a"}, {"b"}]), g, dmax=3)


class TestLegitimate:
    def test_conjunction_of_three_predicates(self):
        g = graph_from_edges(("a", "b"), ("b", "c"), ("c", "d"))
        good = views_of([{"a", "b", "c"}, {"d"}])
        assert legitimate(good, g, dmax=2)
        assert not legitimate(views_of([{"a", "b"}, {"c"}, {"d"}]), g, dmax=2)


class TestTransitionPredicates:
    def test_topological_holds_when_group_distances_preserved(self):
        previous = omega(views_of([{"a", "b", "c"}]))
        new_graph = graph_from_edges(("a", "b"), ("b", "c"))
        assert topological(previous, new_graph, dmax=2)

    def test_topological_fails_when_member_moved_too_far(self):
        previous = omega(views_of([{"a", "b", "c"}]))
        new_graph = graph_from_edges(("a", "b"))  # c is now isolated
        new_graph.add_node("c")
        assert not topological(previous, new_graph, dmax=2)

    def test_continuity_holds_when_groups_only_grow(self):
        before = omega(views_of([{"a", "b"}, {"c"}]))
        after = omega(views_of([{"a", "b", "c"}]))
        assert continuity(before, after)

    def test_continuity_fails_when_member_lost(self):
        before = omega(views_of([{"a", "b", "c"}]))
        after = omega(views_of([{"a", "b"}, {"c"}]))
        assert not continuity(before, after)
        lost = continuity_violations(before, after)
        assert lost and all(prev - new for _, prev, new in lost)


class TestEvaluateConfiguration:
    def test_report_fields(self):
        g = graph_from_edges(("a", "b"), ("b", "c"), ("c", "d"))
        views = views_of([{"a", "b", "c"}, {"d"}])
        report = evaluate_configuration(5.0, views, g, dmax=2)
        assert report.time == 5.0
        assert report.legitimate
        assert report.group_count == 2
        assert report.largest_group == 3
        assert report.isolated_nodes == 1
