"""Unit tests for the clustering baselines."""

import networkx as nx
import pytest

from repro.baselines.base import clusters_from_heads, partition_to_views
from repro.baselines.kclustering import KHopClustering
from repro.baselines.lowest_id import LowestIdClustering
from repro.baselines.maxmin import MaxMinDCluster
from repro.core.predicates import agreement


def random_geometric(n, radius, seed):
    return nx.random_geometric_graph(n, radius, seed=seed)


ALGORITHMS = [LowestIdClustering(), MaxMinDCluster(), KHopClustering()]


class TestHelpers:
    def test_clusters_from_heads(self):
        g = nx.path_graph(3)
        views = clusters_from_heads(g, {0: 0, 1: 0, 2: 2})
        assert views[0] == frozenset({0, 1})
        assert views[2] == frozenset({2})

    def test_partition_to_views(self):
        views = partition_to_views([{1, 2}, {3}])
        assert views[1] == frozenset({1, 2})
        assert views[3] == frozenset({3})


class TestCommonProperties:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_every_node_is_assigned_and_views_agree(self, algorithm):
        g = random_geometric(25, 0.35, seed=1)
        views = algorithm.partition(g, dmax=4)
        assert set(views) == set(g.nodes)
        assert agreement(views)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_cluster_members_stay_within_dmax_in_the_graph(self, algorithm):
        # Clusterhead algorithms bound the distance to the head measured in the
        # full graph (routes may pass through other clusters), so the bound is
        # checked on full-graph distances rather than on the induced subgraph.
        g = random_geometric(25, 0.35, seed=2)
        dmax = 4
        views = algorithm.partition(g, dmax=dmax)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for group in set(views.values()):
            members = list(group)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert lengths[u].get(v, float("inf")) <= dmax

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_empty_graph(self, algorithm):
        assert algorithm.partition(nx.Graph(), dmax=2) == {}

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_invalid_dmax_rejected(self, algorithm):
        with pytest.raises(ValueError):
            algorithm.partition(nx.path_graph(3), dmax=0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_deterministic(self, algorithm):
        g = random_geometric(20, 0.3, seed=3)
        assert algorithm.partition(g, dmax=4) == algorithm.partition(g, dmax=4)


class TestLowestId:
    def test_head_is_smallest_identifier(self):
        g = nx.path_graph(3)  # 0-1-2
        views = LowestIdClustering().partition(g, dmax=2)
        assert views[0] == frozenset({0, 1})
        assert views[2] == frozenset({2})


class TestMaxMin:
    def test_isolated_nodes_become_their_own_cluster(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2])
        views = MaxMinDCluster().partition(g, dmax=2)
        assert views[1] == frozenset({1})
        assert views[2] == frozenset({2})

    def test_custom_d_parameter(self):
        g = nx.path_graph(7)
        views = MaxMinDCluster(d=3).partition(g, dmax=6)
        assert set(views) == set(g.nodes)


class TestKHop:
    def test_star_graph_single_cluster(self):
        g = nx.star_graph(6)
        views = KHopClustering().partition(g, dmax=2)
        assert len(set(views.values())) == 1


class TestPeriodicDriver:
    def test_driver_recomputes_on_schedule(self):
        from repro.baselines.periodic import PeriodicClusteringDriver
        from repro.net.network import Network
        from repro.net.radio import UnitDiskRadio
        from repro.sim.engine import Simulator
        from repro.sim.process import Process

        sim = Simulator(seed=0)
        network = Network(sim, radio=UnitDiskRadio(10.0))
        for node, pos in {"a": (0, 0), "b": (5, 0), "c": (50, 0)}.items():
            network.add_node(Process(node), pos)
        driver = PeriodicClusteringDriver(sim, network, LowestIdClustering(), dmax=2,
                                          period=1.0)
        driver.start()
        assert driver.views()["a"] == frozenset({"a", "b"})
        network.set_position("b", (100, 0))
        sim.run(until=1.5)
        assert driver.views()["a"] == frozenset({"a"})
        assert driver.recomputations >= 2
        driver.stop()
