"""Unit tests for the metrics package (sampler, convergence, continuity, groups, report)."""

import networkx as nx
import pytest

from repro.core.predicates import omega
from repro.metrics.collectors import ConfigurationSample, ConfigurationSampler, TransitionRecord
from repro.metrics.continuity import continuity_summary
from repro.metrics.convergence import (first_legitimate_time, legitimate_fraction,
                                       stabilization_time, time_until)
from repro.metrics.groups import (average_membership_churn, group_lifetimes,
                                  max_group_diameter, mean_group_lifetime, membership_churn,
                                  partition_quality)
from repro.metrics.report import aggregate_rows, format_table, format_value
from repro.core.predicates import evaluate_configuration
from repro.sim.engine import Simulator


def make_sample(time, partition, edges):
    views = {}
    for group in partition:
        frozen = frozenset(group)
        for node in frozen:
            views[node] = frozen
    graph = nx.Graph()
    graph.add_nodes_from(views)
    graph.add_edges_from(edges)
    return ConfigurationSample(time=time, views=views, groups=omega(views), graph=graph,
                               report=evaluate_configuration(time, views, graph, dmax=2))


class TestSampler:
    def test_sampler_records_samples_and_transitions(self):
        sim = Simulator(seed=0)
        views_sequence = [
            {"a": frozenset({"a"}), "b": frozenset({"b"})},
            {"a": frozenset({"a", "b"}), "b": frozenset({"a", "b"})},
            {"a": frozenset({"a"}), "b": frozenset({"b"})},
        ]
        graph = nx.Graph()
        graph.add_edge("a", "b")
        state = {"index": 0}

        def views_provider():
            return views_sequence[min(state["index"], len(views_sequence) - 1)]

        sampler = ConfigurationSampler(sim, views_provider, lambda: graph, dmax=2,
                                       interval=1.0)
        sampler.start()
        for _ in range(2):
            state["index"] += 1
            sim.run(until=sim.now + 1.0)
        sampler.stop()
        assert len(sampler.samples) == 3
        assert len(sampler.transitions) == 2
        # Second transition loses member b from a's group while the topology is fine.
        assert sampler.transitions[1].best_effort_violation
        assert sampler.best_effort_violations()

    def test_sampler_requires_positive_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ConfigurationSampler(sim, dict, nx.Graph, dmax=2, interval=0.0)


class TestConvergenceMetrics:
    def _samples(self, legits):
        samples = []
        for index, legitimate in enumerate(legits):
            partition = [{"a", "b"}] if legitimate else [{"a"}, {"b"}]
            samples.append(make_sample(float(index), partition, [("a", "b")]))
        return samples

    def test_first_legitimate_and_stabilization(self):
        samples = self._samples([False, True, False, True, True])
        assert first_legitimate_time(samples) == 1.0
        assert stabilization_time(samples) == 3.0

    def test_stabilization_none_when_end_not_legitimate(self):
        samples = self._samples([True, False])
        assert stabilization_time(samples) is None
        assert stabilization_time([]) is None

    def test_legitimate_fraction(self):
        samples = self._samples([False, True, True, True])
        assert legitimate_fraction(samples) == pytest.approx(0.75)
        assert legitimate_fraction(samples, start_time=1.0) == pytest.approx(1.0)
        assert legitimate_fraction([]) == 0.0

    def test_time_until(self):
        samples = self._samples([False, False, True, True])
        assert time_until(samples, lambda s: s.report.legitimate) == 2.0
        assert time_until(samples, lambda s: s.report.group_count == 99) is None


class TestContinuityMetrics:
    def test_summary_counts(self):
        transitions = [
            TransitionRecord(1.0, topological_ok=True, continuity_ok=True, lost_members=0),
            TransitionRecord(2.0, topological_ok=True, continuity_ok=False, lost_members=2),
            TransitionRecord(3.0, topological_ok=False, continuity_ok=False, lost_members=1),
        ]
        summary = continuity_summary(transitions)
        assert summary.transitions == 3
        assert summary.topological_held == 2
        assert summary.violations_total == 2
        assert summary.violations_under_topological == 1
        assert summary.members_lost_total == 3
        assert not summary.best_effort_respected
        assert summary.violation_rate_under_topological == pytest.approx(0.5)

    def test_empty_summary(self):
        summary = continuity_summary([])
        assert summary.best_effort_respected
        assert summary.violation_rate_under_topological == 0.0


class TestGroupMetrics:
    def test_partition_quality(self):
        sample = make_sample(0.0, [{"a", "b", "c"}, {"d"}],
                             [("a", "b"), ("b", "c"), ("c", "d")])
        quality = partition_quality(sample)
        assert quality.group_count == 2
        assert quality.isolated_nodes == 1
        assert quality.largest_group == 3
        assert quality.max_diameter == 2

    def test_membership_churn(self):
        before = make_sample(0.0, [{"a", "b", "c"}], [("a", "b"), ("b", "c")])
        after = make_sample(1.0, [{"a", "b"}, {"c"}], [("a", "b"), ("b", "c")])
        # a loses c, b loses c, c loses both a and b -> 1 + 1 + 2 = 4
        assert membership_churn(before, after) == 4
        assert average_membership_churn([before, after]) == pytest.approx(4.0)
        assert average_membership_churn([before]) == 0.0

    def test_group_lifetimes(self):
        s0 = make_sample(0.0, [{"a", "b"}, {"c"}], [("a", "b")])
        s1 = make_sample(1.0, [{"a", "b"}, {"c"}], [("a", "b")])
        s2 = make_sample(2.0, [{"a"}, {"b"}, {"c"}], [("a", "b")])
        lifetimes = group_lifetimes([s0, s1, s2])
        assert lifetimes == [1.0]
        assert mean_group_lifetime([s0, s1, s2]) == pytest.approx(1.0)
        assert mean_group_lifetime([s2]) == 0.0

    def test_max_group_diameter(self):
        s0 = make_sample(0.0, [{"a", "b", "c"}], [("a", "b"), ("b", "c")])
        s1 = make_sample(1.0, [{"a", "b"}, {"c"}], [("a", "b"), ("b", "c")])
        assert max_group_diameter([s0, s1]) == 2


class TestMembershipChurnArithmetic:
    def test_churn_counts_lost_pairs_only(self):
        before = make_sample(0.0, [{"a", "b"}], [("a", "b")])
        after = make_sample(1.0, [{"a", "b", "c"}], [("a", "b"), ("b", "c")])
        assert membership_churn(before, after) == 0


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(None) == "-"
        assert format_value(1.5) == "1.5"
        assert format_value(float("inf")) == "inf"

    def test_format_table_alignment_and_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "c": True}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
        assert len(lines) == 5


class TestAggregateRows:
    def test_numeric_columns_render_mean_plus_minus_std(self):
        rows = [{"n": 5, "latency": 1.0}, {"n": 5, "latency": 3.0}]
        out = aggregate_rows(rows, group_by=("n",))
        assert out == [{"n": 5, "replicates": 2, "latency": "2 ± 1"}]

    def test_single_replicate_reads_x_plus_minus_zero(self):
        out = aggregate_rows([{"n": 5, "latency": 2.5}], group_by=("n",))
        assert out[0]["latency"] == "2.5 ± 0"

    def test_groups_keep_first_seen_order(self):
        rows = [{"k": "b", "v": 1}, {"k": "a", "v": 2}, {"k": "b", "v": 3}]
        out = aggregate_rows(rows, group_by=("k",))
        assert [row["k"] for row in out] == ["b", "a"]
        assert out[0]["replicates"] == 2 and out[1]["replicates"] == 1

    def test_none_values_are_ignored_in_stats(self):
        rows = [{"k": 1, "t": 4.0}, {"k": 1, "t": None}, {"k": 1, "t": 8.0}]
        out = aggregate_rows(rows, group_by=("k",))
        assert out[0]["t"] == "6 ± 2"
        assert aggregate_rows([{"k": 1, "t": None}], group_by=("k",))[0]["t"] is None

    def test_bool_columns_unanimous_or_fraction(self):
        unanimous = aggregate_rows([{"ok": True}, {"ok": True}])
        assert unanimous[0]["ok"] is True
        mixed = aggregate_rows([{"ok": True}, {"ok": True}, {"ok": False}, {"ok": False}])
        assert mixed[0]["ok"] == "0.5 yes"

    def test_non_numeric_constant_kept_varying_collapsed(self):
        rows = [{"k": 1, "label": "x", "extra": "p"}, {"k": 1, "label": "x", "extra": "q"}]
        out = aggregate_rows(rows, group_by=("k",))
        assert out[0]["label"] == "x"
        assert out[0]["extra"] == "2 distinct"

    def test_non_numeric_constant_with_none_keeps_constant(self):
        rows = [{"k": 1, "label": "x"}, {"k": 1, "label": None}, {"k": 1, "label": "x"}]
        out = aggregate_rows(rows, group_by=("k",))
        assert out[0]["label"] == "x"

    def test_count_column_shadows_same_named_data_column(self):
        rows = [{"k": 1, "replicates": 7.0}, {"k": 1, "replicates": 9.0}]
        out = aggregate_rows(rows, group_by=("k",))
        assert out[0]["replicates"] == 2

    def test_drop_columns_omitted(self):
        rows = [{"n": 5, "seed": 1, "t": 1.0}, {"n": 5, "seed": 2, "t": 2.0}]
        out = aggregate_rows(rows, group_by=("n",), drop=("seed",))
        assert "seed" not in out[0]

    def test_empty_group_by_collapses_everything(self):
        rows = [{"t": 1.0}, {"t": 3.0}, {"t": 5.0}]
        out = aggregate_rows(rows)
        assert len(out) == 1 and out[0]["replicates"] == 3

    def test_renders_through_format_table(self):
        rows = aggregate_rows([{"n": 5, "t": 1.0}, {"n": 5, "t": 3.0}], group_by=("n",))
        text = format_table(rows)
        assert "2 ± 1" in text


class TestAggregateRowsNonFinite:
    def test_aggregate_rows_tolerates_inf_metrics(self):
        from repro.metrics.report import aggregate_rows
        rows = [{"dmax": 2, "max_group_diameter": 2.0},
                {"dmax": 2, "max_group_diameter": float("inf")}]
        table = aggregate_rows(rows, group_by=("dmax",))
        assert table[0]["max_group_diameter"] == "inf ± nan"
