"""Unit tests of the sharding building blocks.

The end-to-end bit-identity of the sharded executor lives in
``tests/test_replay_determinism.py`` (sharded section); this module covers
the pieces in isolation: tile cutting and ownership, the simulator's
window/clock primitives, the per-sender channel RNG, and the explicit
rejection of worlds that cannot shard bit-identically.
"""

import math

import pytest

from repro.net.channel import CollisionChannel
from repro.net.spatialindex import x_tile_cuts
from repro.shard import (PerSenderChannel, ShardSpec, ShardUnsupportedError,
                         ShardWorld, TileMap)
from repro.sim.engine import SimulationError, Simulator


# ------------------------------------------------------------------- tiles

class TestXTileCuts:
    def test_balanced_partition_of_uniform_columns(self):
        xs = [float(i) for i in range(100)]
        cuts = x_tile_cuts(xs, cell_size=10.0, tiles=2)
        assert len(cuts) == 1
        # 10 occupied columns, balanced -> cut near the middle column.
        assert cuts == [4]

    def test_cuts_are_ascending_and_deterministic(self):
        xs = [float((i * 37) % 500) for i in range(300)]
        cuts = x_tile_cuts(xs, cell_size=25.0, tiles=4)
        assert cuts == sorted(cuts)
        assert len(set(cuts)) == len(cuts) == 3
        assert cuts == x_tile_cuts(list(xs), cell_size=25.0, tiles=4)

    def test_no_empty_tile_with_enough_columns(self):
        # Heavily clustered mass must not starve the trailing tiles: the
        # greedy cut reserves one column per remaining tile.
        xs = [0.0] * 97 + [100.0, 200.0, 300.0]
        cuts = x_tile_cuts(xs, cell_size=10.0, tiles=4)
        assert len(cuts) == 3
        assert cuts == sorted(set(cuts))

    def test_single_tile_has_no_cuts(self):
        assert x_tile_cuts([1.0, 2.0], cell_size=1.0, tiles=1) == []


class TestTileMap:
    def positions(self):
        return {i: (float(i * 7 % 400), 0.0) for i in range(120)}

    def test_assign_is_a_partition(self):
        tiles = TileMap.from_positions(self.positions(), cell_size=40.0, tiles=3)
        owners = tiles.assign(self.positions())
        assert set(owners) == set(self.positions())
        assert set(owners.values()) == {0, 1, 2}

    def test_intervals_partition_the_axis(self):
        tiles = TileMap.from_positions(self.positions(), cell_size=40.0, tiles=3)
        lo0, hi0 = tiles.x_interval(0)
        lo2, hi2 = tiles.x_interval(2)
        assert lo0 == -math.inf and hi2 == math.inf
        # Consecutive intervals abut exactly.
        for tile in range(2):
            assert tiles.x_interval(tile)[1] == tiles.x_interval(tile + 1)[0]

    def test_interval_agrees_with_tile_of(self):
        tiles = TileMap.from_positions(self.positions(), cell_size=40.0, tiles=3)
        for x in [0.0, 39.9, 40.0, 123.4, 399.0, -50.0, 1e6]:
            tile = tiles.tile_of_x(x)
            lo, hi = tiles.x_interval(tile)
            assert lo <= x < hi
        assert tiles.tile_of((80.0, 55.0)) == tiles.tile_of_x(80.0)

    def test_out_of_range_tile_rejected(self):
        tiles = TileMap.from_positions(self.positions(), cell_size=40.0, tiles=2)
        with pytest.raises(ValueError):
            tiles.x_interval(2)


# --------------------------------------------------- engine window primitives

class TestWindowPrimitives:
    def test_advance_clock_moves_time_without_events(self):
        sim = Simulator(seed=1)
        sim.advance_clock(2.5)
        assert sim.now == 2.5
        assert sim.processed_events == 0

    def test_advance_clock_refuses_backwards(self):
        sim = Simulator(seed=1)
        sim.advance_clock(1.0)
        with pytest.raises(SimulationError):
            sim.advance_clock(0.5)

    def test_advance_clock_refuses_to_jump_pending_work(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_clock(2.0)

    def test_run_window_exclusive_and_inclusive_bounds(self):
        sim = Simulator(seed=1)
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, fired.append, t)
        assert sim.run_window(2.0, inclusive=False) == 1
        assert fired == [1.0]
        assert sim.run_window(2.0, inclusive=True) == 1
        assert fired == [1.0, 2.0]

    def test_run_window_clock_trails_last_event(self):
        # The clock must NOT advance to the window end on a dry queue:
        # remote deliveries may still be applied inside the window.
        sim = Simulator(seed=1)
        sim.schedule_at(1.0, lambda: None)
        sim.run_window(5.0)
        assert sim.now == 1.0

    def test_run_window_executes_cascades_inside_window(self):
        sim = Simulator(seed=1)
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(0.0, chain, depth + 1)

        sim.schedule_at(1.0, chain, 0)
        assert sim.run_window(2.0) == 4
        assert fired == [0, 1, 2, 3]


# ------------------------------------------------------- per-sender channel

class TestPerSenderChannel:
    def test_decisions_invariant_to_other_senders(self):
        """Sender A's decision stream must not move when sender B's
        broadcasts interleave — the property that makes the stream
        invariant under any partitioning of the senders across shards."""
        receivers = list(range(20))
        lone = PerSenderChannel(0.4, 0.0, 0.0, master_seed=99)
        mixed = PerSenderChannel(0.4, 0.0, 0.0, master_seed=99)
        lone_batches = [lone.decide_batch("A", receivers, t) for t in (0.0, 1.0)]
        first = mixed.decide_batch("A", receivers, 0.0)
        mixed.decide_batch("B", receivers, 0.5)
        second = mixed.decide_batch("A", receivers, 1.0)
        for ours, theirs in zip(lone_batches, (first, second)):
            assert list(ours.delivered) == list(theirs.delivered)
            assert list(ours.delays) == list(theirs.delays)

    def test_same_master_seed_replays(self):
        a = PerSenderChannel(0.3, 0.05, 0.2, master_seed=7)
        b = PerSenderChannel(0.3, 0.05, 0.2, master_seed=7)
        da = a.decide("s", "r", 0.0)
        db = b.decide("s", "r", 0.0)
        assert (da.delivered, da.delay) == (db.delivered, db.delay)

    def test_counters_aggregate_over_senders(self):
        channel = PerSenderChannel(0.5, 0.0, 0.0, master_seed=3)
        for sender in ("A", "B"):
            channel.decide_batch(sender, list(range(50)), 0.0)
        assert channel.dropped + channel.delivered == 100
        assert channel.dropped > 0 and channel.delivered > 0

    def test_rng_states_restrict_to_requested_senders(self):
        channel = PerSenderChannel(0.5, 0.0, 0.0, master_seed=3)
        channel.decide("A", "r", 0.0)
        channel.decide("B", "r", 0.0)
        assert set(channel.rng_states()) == {"A", "B"}
        assert set(channel.rng_states(senders={"A"})) == {"A"}
        # Senders that never broadcast have no materialized stream.
        assert "C" not in channel.rng_states()

    def test_from_lossy_copies_parameters(self):
        from repro.net.channel import LossyChannel
        wrapped = PerSenderChannel.from_lossy(
            LossyChannel(0.25, 0.1, 0.3), master_seed=11)
        assert wrapped.loss_probability == 0.25
        assert wrapped.min_delay == 0.1
        assert wrapped.max_delay == 0.3


# --------------------------------------------------- unsupported-world guard

from repro.core.node import GRPConfig  # noqa: E402
from repro.core.protocol import build_grp_network  # noqa: E402
from repro.net.network import Network  # noqa: E402
from repro.scenarios.registry import ScenarioParameter, scenario  # noqa: E402


@scenario("shardtest_collision",
          "collision-channel world (sharding must refuse it)",
          [ScenarioParameter("n", "int", 6, "nodes"),
           ScenarioParameter("dmax", "int", 3, "diameter bound")],
          tags=("test",))
def _collision_world(*, seed, config, n, dmax):
    positions = {i: (float(i * 30), 0.0) for i in range(n)}
    channel = CollisionChannel(collision_window=0.1)
    return build_grp_network(positions, config or GRPConfig(dmax=dmax),
                             radio_range=50.0, channel=channel, seed=seed)


@scenario("shardtest_subclassed_net",
          "network-subclass world (sharding must refuse it)",
          [ScenarioParameter("n", "int", 6, "nodes"),
           ScenarioParameter("dmax", "int", 3, "diameter bound")],
          tags=("test",))
def _subclassed_world(*, seed, config, n, dmax):
    positions = {i: (float(i * 30), 0.0) for i in range(n)}
    deployment = build_grp_network(positions, config or GRPConfig(dmax=dmax),
                                   radio_range=50.0, seed=seed)

    class _OddNetwork(Network):
        pass

    deployment.network.__class__ = _OddNetwork
    return deployment


class TestUnsupportedWorlds:
    def test_collision_channel_rejected(self):
        spec = ShardSpec.create("shardtest_collision", seed=1, duration=1.0, shards=2)
        with pytest.raises(ShardUnsupportedError, match="[Cc]ollision"):
            ShardWorld(spec, 0)

    def test_network_subclass_rejected(self):
        spec = ShardSpec.create("shardtest_subclassed_net", seed=1, duration=1.0,
                                shards=2)
        with pytest.raises(ShardUnsupportedError):
            ShardWorld(spec, 0)

    def test_bursty_pubsub_traffic_rejected(self):
        spec = ShardSpec.create(
            "static_random", params={"n": 10}, seed=1, duration=1.0, shards=2,
            traffic="bursty_pubsub")
        with pytest.raises(ShardUnsupportedError, match="bursty_pubsub"):
            ShardWorld(spec, 0)

    def test_supported_world_constructs(self):
        spec = ShardSpec.create("static_random", params={"n": 10}, seed=1,
                                duration=1.0, shards=2)
        world = ShardWorld(spec, 0)
        assert world.lookahead == 0.0
        assert 0 < len(world.owned) < 10


# ----------------------------------------------------- snapshot-restore build

def _mirror_ids(world):
    return [nid for nid, tile in world.owners.items() if tile != world.shard_id]


def _timers_running(process):
    timers = (process._tc_timer, process._ts_timer)
    return any(t is not None and t.running for t in timers)


class TestSnapshotRestore:
    def spec(self, churn=()):
        return ShardSpec.create(
            "manet_waypoint", seed=7, duration=2.0, shards=2,
            params={"n": 60, "area": 600.0, "radio_range": 120.0, "dmax": 3,
                    "speed": 5.0, "loss_probability": 0.1},
            churn=churn)

    def test_restored_world_equals_built_world(self):
        spec = self.spec()
        blob = ShardWorld.snapshot_base(spec)
        restored = ShardWorld.from_snapshot(spec, 0, blob)
        built = ShardWorld(spec, 0)
        assert restored.owned == built.owned
        assert restored.owners == built.owners
        assert restored.lookahead == built.lookahead
        assert restored.peek() == built.peek()
        assert (repr(restored.sim.rng.bit_generator.state)
                == repr(built.sim.rng.bit_generator.state))

    def test_one_blob_serves_every_shard(self):
        spec = self.spec()
        blob = ShardWorld.snapshot_base(spec)
        worlds = [ShardWorld.from_snapshot(spec, shard, blob)
                  for shard in range(spec.shards)]
        owned = sorted(nid for world in worlds for nid in world.owned)
        assert owned == sorted(worlds[0].owners)

    def test_restored_mirror_timers_quiesced(self):
        # The quiesce sweep runs in the shared finalize tail, so a restored
        # world's mirrors must sleep exactly like a replicated build's.
        spec = self.spec()
        blob = ShardWorld.snapshot_base(spec)
        world = ShardWorld.from_snapshot(spec, 0, blob)
        owned = set(world.owned)
        for nid in _mirror_ids(world):
            assert not _timers_running(world.network.processes[nid]), (
                f"mirror {nid} has running timers after restore")
        assert any(_timers_running(world.network.processes[nid]) for nid in owned)

    def test_restored_mirror_requiesced_after_churn_reactivation(self):
        # Reactivation restarts timers through on_activate; the ShardNetwork
        # override must put restored mirrors straight back to sleep, exactly
        # as it does on the replicated-build path.
        spec = self.spec()
        blob = ShardWorld.snapshot_base(spec)
        world = ShardWorld.from_snapshot(spec, 0, blob)
        victim = _mirror_ids(world)[0]
        network = world.network
        network.deactivate_node(victim)
        network.activate_node(victim)
        assert not _timers_running(network.processes[victim])
        # Same sequence on an owned node must leave its timers running.
        keeper = world.owned[0]
        network.deactivate_node(keeper)
        network.activate_node(keeper)
        assert _timers_running(network.processes[keeper])

    def test_unpicklable_world_raises_unsupported(self):
        spec = ShardSpec.create("shardtest_unpicklable", seed=1, duration=1.0,
                                shards=2)
        with pytest.raises(ShardUnsupportedError, match="snapshot"):
            ShardWorld.snapshot_base(spec)


@scenario("shardtest_unpicklable",
          "world holding an unpicklable object (snapshot must refuse it)",
          [ScenarioParameter("n", "int", 6, "nodes"),
           ScenarioParameter("dmax", "int", 3, "diameter bound")],
          tags=("test",))
def _unpicklable_world(*, seed, config, n, dmax):
    positions = {i: (float(i * 30), 0.0) for i in range(n)}
    deployment = build_grp_network(positions, config or GRPConfig(dmax=dmax),
                                   radio_range=50.0, seed=seed)
    deployment.network._stowaway = lambda: None  # lambdas don't pickle
    return deployment
