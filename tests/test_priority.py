"""Unit tests for priorities (oldness) and group priorities."""

from repro.core.identity import priority_key
from repro.core.priority import PriorityTable


class TestPriorityKey:
    def test_smaller_oldness_wins(self):
        assert priority_key(1, "z") < priority_key(2, "a")

    def test_ties_broken_by_identity(self):
        assert priority_key(3, "a") < priority_key(3, "b")

    def test_key_is_deterministic(self):
        assert priority_key(5, 42) == priority_key(5, 42)


class TestPriorityTable:
    def test_tick_increments_only_when_alone(self):
        table = PriorityTable("v", initial=0)
        table.tick(in_group=False)
        table.tick(in_group=False)
        assert table.own_oldness == 2
        table.tick(in_group=True)
        assert table.own_oldness == 2

    def test_learn_and_lookup(self):
        table = PriorityTable("v")
        table.learn({"a": 5, "b": 2})
        assert table.oldness_of("a") == 5
        assert table.oldness_of("b") == 2
        assert table.oldness_of("unknown") is None

    def test_learn_ignores_own_identity(self):
        table = PriorityTable("v", initial=1)
        table.learn({"v": 99})
        assert table.own_oldness == 1

    def test_key_of_unknown_with_default(self):
        table = PriorityTable("v")
        assert table.key_of("x") is None
        assert table.key_of("x", default_oldness=7) == priority_key(7, "x")

    def test_node_has_priority_over_self(self):
        table = PriorityTable("v", initial=5)
        table.learn({"older": 2, "younger": 9})
        assert table.node_has_priority_over_self("older")
        assert not table.node_has_priority_over_self("younger")
        assert not table.node_has_priority_over_self("unknown")

    def test_group_priority_is_min_over_members(self):
        table = PriorityTable("v", initial=4)
        table.learn({"a": 2, "b": 7})
        assert table.group_priority({"v", "a", "b"}) == priority_key(2, "a")

    def test_group_priority_with_extra_overrides(self):
        table = PriorityTable("v", initial=4)
        assert table.group_priority({"v", "w"}, extra={"w": 1}) == priority_key(1, "w")

    def test_group_priority_falls_back_to_own_key(self):
        table = PriorityTable("v", initial=4)
        assert table.group_priority({"unknown"}) == priority_key(4, "v")

    def test_forget_except(self):
        table = PriorityTable("v")
        table.learn({"a": 1, "b": 2, "c": 3})
        table.forget_except({"a"})
        assert table.oldness_of("a") == 1
        assert table.oldness_of("b") is None

    def test_snapshot_includes_owner(self):
        table = PriorityTable("v", initial=3)
        table.learn({"a": 1})
        snap = table.snapshot({"a", "missing"})
        assert snap == {"a": 1, "v": 3}

    def test_set_own(self):
        table = PriorityTable("v")
        table.set_own(17)
        assert table.own_oldness == 17
