"""Unit + contract tests of the observability layer (:mod:`repro.obs`).

Three layers of guarantee:

- **Instrument semantics** — counters, gauges, fixed-bucket histograms and
  span aggregates behave exactly as documented (kind pinning, sorted export,
  bounded record windows with exact aggregates).
- **Zero-cost-when-disabled contract** — components built while observability
  is off capture ``None`` once and never touch a registry or clock again;
  pinned with a sentinel context whose every instrument access raises.
- **Pipeline integration** — enabling observability around a run collects
  the expected counters/spans without changing simulation results, the
  campaign executor persists export blobs through the JSONL store, the spec
  hash only changes when ``obs`` is actually on, and the CLI writes parseable
  ``repro-obs/v1`` exports.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.net.channel import LossyChannel
from repro.net.geometry import random_positions
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.obs import (DEFAULT_WALL_NS_BUCKETS, Histogram, MetricsRegistry,
                       ObsContext, SpanStats, current, disable, enable,
                       observing, profile_summary, profiling)
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.randomness import SeedSequenceFactory
from repro.sim.trace import TraceRecorder

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class NullProcess(Process):
    def on_message(self, sender, payload):
        pass


def build_network(n=30, seed=7, loss=0.1):
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(300.0, 300.0),
                                 rng=seeds.stream("placement"))
    sim = Simulator(seed=seed)
    # Non-zero delays so deliveries go through the event queue (zero-delay
    # channels deliver inline and the drained sim would pop no events).
    network = Network(sim, radio=UnitDiskRadio(100.0),
                      channel=LossyChannel(loss_probability=loss,
                                           min_delay=0.01, max_delay=0.03,
                                           rng=seeds.stream("channel")))
    for node, pos in positions.items():
        network.add_node(NullProcess(node), pos)
    return sim, network


def run_broadcast_rounds(sim, network, rounds=3):
    for _ in range(rounds):
        for node in network.node_ids:
            network.broadcast(node, "x")
        sim.run()


# ------------------------------------------------------------ instruments


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        counter.inc(4)
        registry.gauge("b").set(2.5)
        assert registry.counter("a") is counter  # get-or-create
        assert registry.as_dict()["counters"] == {"a": 5}
        assert registry.as_dict()["gauges"] == {"b": 2.5}

    def test_kind_pinning(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name)
        assert registry.names() == ["alpha", "mid", "zeta"]

    def test_histogram_buckets(self):
        histogram = Histogram(bounds=(10.0, 100.0))
        for value in (1, 10, 11, 100, 1000):
            histogram.observe(value)
        data = histogram.as_dict()
        # Upper-inclusive buckets plus one overflow cell.
        assert data["counts"] == [2, 2, 1]
        assert data["count"] == 5
        assert data["sum"] == 1122


class TestSpans:
    def test_aggregates_exact_window_bounded(self):
        stats = SpanStats("s", max_records=4)
        for i in range(10):
            stats.observe(sim_time=float(i), seq=i, wall_ns=(i + 1) * 100,
                          counts={"items": i})
        data = stats.as_dict(include_records=True)
        assert data["count"] == 10
        assert data["wall_ns_total"] == sum((i + 1) * 100 for i in range(10))
        assert data["wall_ns_min"] == 100
        assert data["wall_ns_max"] == 1000
        assert data["payload_totals"] == {"items": sum(range(10))}
        # Window keeps the newest 4; the aggregate stays over all 10.
        assert data["dropped_records"] == 6
        assert [rec["seq"] for rec in data["records"]] == [6, 7, 8, 9]

    def test_percentiles_nearest_rank_over_window(self):
        stats = SpanStats("s", max_records=100)
        for i in range(100):
            stats.observe(0.0, i, i + 1, None)
        assert stats.percentile_ns(0.50) == 50
        assert stats.percentile_ns(0.95) == 95
        assert stats.percentile_ns(1.0) == 100

    def test_context_records_spans_with_monotonic_seq(self):
        ctx = ObsContext()
        with ctx.span("region", sim_time=1.5, items=3) as span:
            span.add(extra=2)
        t0 = ctx.clock()
        ctx.record_span("region", 2.0, t0, {"items": 1})
        stats = ctx.span_stats("region")
        assert stats.count == 2
        data = stats.as_dict(include_records=True)
        assert [rec["seq"] for rec in data["records"]] == [0, 1]
        assert [rec["sim_time"] for rec in data["records"]] == [1.5, 2.0]
        assert data["payload_totals"] == {"items": 4, "extra": 2}


# --------------------------------------------------------- runtime switch


class TestRuntime:
    def test_disabled_by_default(self):
        assert current() is None

    def test_observing_installs_and_restores(self):
        outer = ObsContext()
        with observing(outer):
            assert current() is outer
            inner = ObsContext()
            with observing(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_enable_disable(self):
        ctx = enable()
        try:
            assert current() is ctx
        finally:
            disable()
        assert current() is None

    def test_restored_even_on_error(self):
        with pytest.raises(RuntimeError):
            with observing():
                raise RuntimeError("boom")
        assert current() is None


# --------------------------------------------- zero-cost-when-disabled


class _ExplodingRegistry(MetricsRegistry):
    """Registry that fails the test on any instrument access."""

    def counter(self, name):
        raise AssertionError(f"disabled-path touched counter {name!r}")

    def gauge(self, name):
        raise AssertionError(f"disabled-path touched gauge {name!r}")

    def histogram(self, name, bounds=DEFAULT_WALL_NS_BUCKETS):
        raise AssertionError(f"disabled-path touched histogram {name!r}")


class _SentinelContext(ObsContext):
    """Context that fails the test on any observation."""

    def __init__(self):
        super().__init__()
        self.registry = _ExplodingRegistry()

    def span(self, name, sim_time=0.0, **counts):
        raise AssertionError(f"disabled-path opened span {name!r}")

    def record_span(self, name, sim_time, t0_ns, counts=None):
        raise AssertionError(f"disabled-path recorded span {name!r}")


class TestDisabledPathContract:
    def test_components_built_while_disabled_never_observe(self):
        """The whole overhead contract in one test: components capture the
        current context once, at construction.  Built while observability is
        off, their hot paths must never touch a context again — even one
        installed *afterwards*.  The sentinel raises on any touch."""
        assert current() is None
        sim, network = build_network()
        with observing(_SentinelContext()):
            run_broadcast_rounds(sim, network)
        assert network.messages_delivered > 0

    def test_disabled_components_cache_none(self):
        sim, network = build_network()
        assert sim._obs is None
        assert network._obs is None

    def test_enabled_components_observe(self):
        with observing() as ctx:
            sim, network = build_network()
            run_broadcast_rounds(sim, network)
        counters = ctx.registry.as_dict()["counters"]
        assert counters["net.broadcasts"] == 3 * len(network.node_ids)
        assert counters["net.delivered"] == network.messages_delivered
        assert counters["net.dropped"] == network.messages_dropped
        assert counters["sim.events"] == sim.processed_events
        assert ctx.span_stats("sim.event_pop").count == sim.processed_events
        assert ctx.span_stats("topology.csr_rebuild") is not None

    def test_enabling_changes_no_delivered_byte(self):
        """Replay contract at unit scale (the 500-node version lives in
        tests/test_replay_determinism.py): identical counters and identical
        post-run channel RNG state with observability on and off."""
        def fingerprint():
            sim, network = build_network()
            run_broadcast_rounds(sim, network)
            return (network.messages_sent, network.messages_delivered,
                    network.messages_dropped, sim.processed_events,
                    repr(network.channel._rng.bit_generator.state))

        baseline = fingerprint()
        with observing():
            observed = fingerprint()
        assert observed == baseline


# ------------------------------------------------------------------ export


class TestExport:
    def test_export_and_jsonl_roundtrip(self, tmp_path):
        with observing() as ctx:
            sim, network = build_network(n=10)
            run_broadcast_rounds(sim, network, rounds=1)
        blob = ctx.export()
        assert set(blob) >= {"counters", "gauges", "histograms", "spans"}
        assert blob["spans"]["sim.event_pop"]["count"] > 0
        assert json.loads(json.dumps(blob)) == blob  # JSON-serializable

        path = tmp_path / "metrics.jsonl"
        ctx.to_jsonl(str(path), meta={"run": "unit"})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == "repro-obs/v1"
        assert lines[0]["run"] == "unit"
        by_type = {}
        for line in lines[1:]:
            by_type.setdefault(line["type"], []).append(line)
        exported = {line["name"]: line["value"] for line in by_type["counter"]}
        assert exported == blob["counters"]
        span_names = {line["name"] for line in by_type["span"]}
        assert "sim.event_pop" in span_names

    def test_heap_tracking_opt_in(self):
        with observing(ObsContext(track_heap=True)) as ctx:
            list(range(50_000))
        assert ctx.heap_peak_bytes is not None
        assert ctx.heap_peak_bytes > 0
        assert ctx.export()["heap_peak_bytes"] == ctx.heap_peak_bytes

    def test_heap_tracking_off_by_default(self):
        with observing() as ctx:
            pass
        assert ctx.heap_peak_bytes is None
        assert "heap_peak_bytes" not in ctx.export()


# ------------------------------------------------------------- profiling


class TestProfiling:
    def test_none_path_is_noop(self):
        with profiling(None) as prof:
            assert prof is None

    def test_dumps_stats(self, tmp_path):
        path = tmp_path / "run.prof"
        with profiling(str(path)):
            sum(range(1000))
        assert path.exists()
        summary = profile_summary(str(path), top=5)
        assert "cumulative" in summary or "function" in summary


# ----------------------------------------------------- campaign integration


class TestCampaignObs:
    def test_spec_hash_unchanged_when_obs_off(self):
        spec = CampaignSpec(name="c", experiments=("E6",), replicates=1)
        assert "obs" not in spec.as_dict()
        assert "obs_heap" not in spec.as_dict()
        flagged = CampaignSpec(name="c", experiments=("E6",), replicates=1,
                               obs=True)
        assert spec.spec_hash() != flagged.spec_hash()
        assert flagged.as_dict()["obs"] is True

    def test_campaign_persists_obs_blobs(self, tmp_path):
        spec = CampaignSpec(name="obs-roundtrip", experiments=("E6",),
                            replicates=2, root_seed=11, obs=True)
        store = ResultStore(str(tmp_path / "store.jsonl"))
        result = run_campaign(spec, store=store)
        assert result.executed == 2
        for outcome in result.outcomes:
            assert outcome.obs is not None
            assert outcome.obs["counters"]["sim.events"] > 0
        # Blobs survive the JSONL roundtrip and resume with them intact.
        records = store.completed(spec.spec_hash())
        assert len(records) == 2
        for record in records.values():
            assert record.obs["counters"]["sim.events"] > 0
        resumed = run_campaign(spec, store=store)
        assert resumed.executed == 0
        assert [o.obs for o in resumed.outcomes] == [o.obs for o in result.outcomes]

    def test_obs_does_not_change_campaign_rows(self):
        base = dict(name="obs-equal", experiments=("E6",), replicates=1,
                    root_seed=3)
        plain = run_campaign(CampaignSpec(**base))
        observed = run_campaign(CampaignSpec(**base, obs=True))
        assert [o.rows for o in plain.outcomes] == [o.rows for o in observed.outcomes]
        assert plain.outcomes[0].obs is None
        assert observed.outcomes[0].obs is not None


# ------------------------------------------------------------ CLI export


class TestCliObs:
    def _run_cli(self, args, cwd):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", *args],
            cwd=cwd, env=env, capture_output=True, text=True, timeout=300)

    def test_single_run_obs_out(self, tmp_path):
        out = tmp_path / "metrics.jsonl"
        proc = self._run_cli(["E6", "--obs-out", str(out)], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-obs/v1"
        counters = {line["name"]: line["value"] for line in lines
                    if line["type"] == "counter"}
        assert counters.get("sim.events", 0) > 0
        assert "obs:" in proc.stderr

    def test_campaign_obs_out(self, tmp_path):
        out = tmp_path / "campaign-metrics.jsonl"
        proc = self._run_cli(["E6", "--seeds", "2", "--obs-out", str(out),
                              "--store", str(tmp_path / "store.jsonl")],
                             cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-obs/v1"
        tasks = [line for line in lines if line["type"] == "task"]
        assert len(tasks) == 2
        for task in tasks:
            assert task["obs"]["counters"]["sim.events"] > 0


# -------------------------------------------------------- trace recorder


class TestTraceRecorderBounds:
    def test_max_records_zero_stores_nothing_counts_everything(self):
        recorder = TraceRecorder(max_records=0)
        for i in range(5):
            recorder.record(float(i), "send", payload=i)
        assert len(recorder) == 0
        assert recorder.records == []
        assert recorder.count("send") == 5

    def test_max_records_zero_still_feeds_subscribers(self):
        recorder = TraceRecorder(max_records=0)
        seen = []
        recorder.subscribe("send", seen.append)
        recorder.record(1.0, "send", payload="x")
        recorder.record(2.0, "other")
        assert len(seen) == 1
        assert seen[0]["payload"] == "x"
        assert len(recorder) == 0

    def test_to_jsonl(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(1.0, "send", payload="a")
        recorder.record(2.0, "recv", payload=object())  # falls back to str()
        path = tmp_path / "trace.jsonl"
        assert recorder.to_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"time": 1.0, "category": "send", "payload": "a"}
        assert lines[1]["category"] == "recv"


# ------------------------------------------------------------------ merging


class TestMerge:
    """Context / registry / span / event merging for per-shard fold-in."""

    def test_registry_merge_disjoint_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("left").inc(3)
        b.counter("right").inc(4)
        b.gauge("depth").set(7)
        a.merge(b)
        exported = a.as_dict()
        assert exported["counters"] == {"left": 3, "right": 4}
        assert exported["gauges"] == {"depth": 7}

    def test_registry_merge_overlapping_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(3)
        b.counter("hits").inc(4)
        a.gauge("depth").set(1)
        b.gauge("depth").set(9)
        a.histogram("lat", (10, 100)).observe(5)
        b.histogram("lat", (10, 100)).observe(50)
        a.merge(b)
        exported = a.as_dict()
        assert exported["counters"] == {"hits": 7}
        assert exported["gauges"] == {"depth": 9}  # last write wins
        assert exported["histograms"]["lat"]["counts"] == [1, 1, 0]

    def test_registry_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_histogram_merge_bounds_mismatch_raises(self):
        a = Histogram((10, 100))
        b = Histogram((10, 1000))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_span_stats_merge_interleaves_by_sim_time(self):
        a, b = SpanStats("window", 16), SpanStats("window", 16)
        a.observe(sim_time=1.0, seq=0, wall_ns=100, counts=None)
        a.observe(sim_time=3.0, seq=2, wall_ns=300, counts=None)
        b.observe(sim_time=2.0, seq=1, wall_ns=200, counts=None)
        a.merge(b)
        assert a.count == 3
        assert a.wall_ns_total == 600
        assert [record.sim_time for record in a.records] == [1.0, 2.0, 3.0]

    def test_context_merge_combines_events(self):
        left, right = ObsContext(), ObsContext()
        left.record_event("group.formed", sim_time=1.0, size=3)
        right.record_event("group.formed", sim_time=0.5, size=2)
        right.record_event("group.split", sim_time=2.0, prev_size=4)
        left.merge(right)
        exported = left.export()["events"]
        assert exported["count"] == 3
        assert exported["kinds"] == {"group.formed": 2, "group.split": 1}
        times = [record["sim_time"] for record in exported["records"]]
        assert times == sorted(times)
        assert all("wall_ns" not in record for record in exported["records"])

    def test_merge_export_blobs_matches_context_merge(self):
        ctxs = []
        for base in (1, 10):
            ctx = ObsContext()
            ctx.registry.counter("sim.events").inc(base)
            ctx.record_span("shard.window", float(base), ctx.clock())
            ctx.record_event("group.formed", sim_time=float(base), size=base)
            ctxs.append(ctx)
        from repro.obs import merge_export_blobs

        folded = merge_export_blobs([ctx.export() for ctx in ctxs])
        live = ObsContext()
        for ctx in ctxs:
            live.merge(ctx)
        live_blob = live.export()
        assert folded["counters"] == live_blob["counters"]
        assert folded["events"]["kinds"] == live_blob["events"]["kinds"]
        assert folded["spans"]["shard.window"]["count"] == 2

    def test_event_stream_bounded_with_exact_kind_counts(self):
        from repro.obs import EventStream

        stream = EventStream(max_records=4)
        for i in range(10):
            stream.record("group.formed", sim_time=float(i), seq=i,
                          wall_ns=0, payload=None)
        assert stream.count == 10
        assert stream.kind_counts == {"group.formed": 10}
        assert len(stream.records) == 4
        assert stream.dropped == 6
        assert [event.sim_time for event in stream.ordered_records()] == \
            [6.0, 7.0, 8.0, 9.0]
