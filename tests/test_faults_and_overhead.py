"""Tests for fault injection and overhead measurement on live deployments."""

import numpy as np
import pytest

from repro.core.node import GRPConfig
from repro.core.protocol import build_grp_network
from repro.metrics.overhead import overhead_summary
from repro.net.faults import FaultInjector


def small_deployment(seed=0):
    positions = {0: (0.0, 0.0), 1: (40.0, 0.0), 2: (80.0, 0.0)}
    return build_grp_network(positions, GRPConfig(dmax=2), radio_range=50.0, seed=seed)


class TestFaultInjector:
    def test_ghost_injection_and_eventual_cleanup(self):
        deployment = small_deployment()
        deployment.run(20.0)
        injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
        injector.inject_ghost_identity(0, "ghost", position=1)
        assert deployment.node(0).alist.contains("ghost")
        deployment.run(15.0)
        assert not any(node.alist.contains("ghost") for node in deployment.nodes.values())
        assert injector.injected == 1

    def test_oversized_list_is_trimmed(self):
        deployment = small_deployment()
        deployment.run(10.0)
        injector = FaultInjector(deployment.network)
        injector.oversized_list(1, extra_ids=["g1", "g2", "g3", "g4"])
        assert len(deployment.node(1).alist) > deployment.config.dmax + 1
        deployment.run(10.0)
        assert len(deployment.node(1).alist) <= deployment.config.dmax + 1

    def test_view_and_priority_corruption_recovers(self):
        deployment = small_deployment()
        deployment.run(20.0)
        injector = FaultInjector(deployment.network)
        injector.corrupt_view(0, fake_members={"nobody"})
        injector.corrupt_priority(0, value=500)
        deployment.run(20.0)
        assert "nobody" not in deployment.node(0).current_view()

    def test_random_memory_corruption_selects_fraction(self):
        deployment = small_deployment()
        deployment.run(5.0)
        injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
        corrupted = injector.random_memory_corruption(fraction=0.5, ghost_pool=["g"])
        assert 1 <= len(corrupted) <= 2
        with pytest.raises(ValueError):
            injector.random_memory_corruption(fraction=0.0)


class TestPartitionHeal:
    def test_partition_then_heal_flips_and_generation_bumps(self):
        deployment = small_deployment()
        deployment.run(5.0)
        network = deployment.network
        injector = FaultInjector(network)
        gen0 = network.topology_generation
        affected = injector.partition([0, 1])
        assert affected == [0, 1]
        assert not network.process(0).active and not network.process(1).active
        # One generation bump per actual activation flip.
        assert network.topology_generation == gen0 + 2
        assert set(network.topology().nodes) == {2}
        # Re-partitioning inactive nodes is a no-op (no spurious bumps).
        assert injector.partition([0]) == []
        assert network.topology_generation == gen0 + 2
        healed = injector.heal()
        assert healed == [0, 1]
        assert network.process(0).active and network.process(1).active
        assert network.topology_generation == gen0 + 4
        assert set(network.topology().nodes) == {0, 1, 2}
        # Everything tracked was healed; a second heal flips nothing.
        assert injector.heal() == []

    def test_heal_subset_keeps_rest_partitioned(self):
        deployment = small_deployment()
        deployment.run(2.0)
        injector = FaultInjector(deployment.network)
        injector.partition([0, 1, 2])
        assert injector.heal([1]) == [1]
        assert deployment.network.process(1).active
        assert not deployment.network.process(0).active
        assert injector.heal() == [0, 2]

    def test_campaign_driven_churn_cycles_are_deterministic(self):
        """Partition→heal churn driven by campaign task seeds: every flip is
        traced and bumps the topology generation exactly once, identically
        across two executions of the same seeded sequence."""
        from repro.campaign import CampaignSpec
        from repro.sim.trace import TraceRecorder

        spec = CampaignSpec(name="churn", experiments=("E6",), replicates=2, root_seed=3)

        def run_churn(task):
            deployment = small_deployment(seed=task.replicate)
            deployment.run(5.0)
            network = deployment.network
            trace = TraceRecorder()
            rng = np.random.default_rng(task.seed)
            injector = FaultInjector(network, rng=rng, trace=trace)
            flips = 0
            for _ in range(3):
                victims = injector.random_memory_corruption(fraction=0.5)
                gen = network.topology_generation
                affected = injector.partition(victims)
                assert network.topology_generation == gen + len(affected)
                deployment.run(5.0)
                gen = network.topology_generation
                healed = injector.heal()
                assert sorted(map(str, healed)) == sorted(map(str, affected))
                assert network.topology_generation == gen + len(healed)
                deployment.run(5.0)
                flips += 2 * len(affected)
            partitions = trace.filter("fault.partition")
            heals = trace.filter("fault.heal")
            assert sum(len(rec["nodes"]) for rec in partitions + heals) == flips
            return [rec.data for rec in partitions + heals], network.topology_generation

        for task in spec.expand():
            assert run_churn(task) == run_churn(task)


class TestHashSeedIndependence:
    def test_corruption_recovery_reproduces_across_interpreters(self):
        """Campaign resume mixes records from different interpreter runs, so a
        seeded corruption run must not depend on PYTHONHASHSEED (regression:
        quarantine noise used to consume the rng in set-iteration order)."""
        import os
        import subprocess
        import sys

        script = (
            "from repro.net.faults import FaultInjector\n"
            "from repro.core.node import GRPConfig\n"
            "from repro.core.protocol import build_grp_network\n"
            "positions = {i: (40.0 * i, 0.0) for i in range(4)}\n"
            "d = build_grp_network(positions, GRPConfig(dmax=2), radio_range=50.0, seed=3)\n"
            "d.run(15.0)\n"
            "inj = FaultInjector(d.network, rng=d.sim.spawn_rng())\n"
            "inj.random_memory_corruption(fraction=0.6, ghost_pool=['g0', 'g1'])\n"
            "d.run(15.0)\n"
            "print(sorted((str(k), sorted(map(str, v))) for k, v in d.views().items()))\n"
            "print([n.quarantine.counters() for n in d.nodes.values()])\n")
        import repro
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        outputs = set()
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, check=True)
            outputs.add(proc.stdout)
        assert len(outputs) == 1


class TestOverhead:
    def test_overhead_summary_counts_messages(self):
        deployment = small_deployment()
        deployment.run(20.0)
        summary = overhead_summary(deployment, duration=20.0)
        assert summary.node_count == 3
        assert summary.messages_sent > 0
        assert summary.messages_per_node_per_second > 0
        assert summary.mean_payload_slots > 0
        row = summary.as_row()
        assert row["nodes"] == 3

    def test_overhead_requires_positive_duration(self):
        deployment = small_deployment()
        with pytest.raises(ValueError):
            overhead_summary(deployment, duration=0.0)
