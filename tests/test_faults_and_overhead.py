"""Tests for fault injection and overhead measurement on live deployments."""

import pytest

from repro.core.node import GRPConfig
from repro.core.protocol import build_grp_network
from repro.metrics.overhead import overhead_summary
from repro.net.faults import FaultInjector


def small_deployment(seed=0):
    positions = {0: (0.0, 0.0), 1: (40.0, 0.0), 2: (80.0, 0.0)}
    return build_grp_network(positions, GRPConfig(dmax=2), radio_range=50.0, seed=seed)


class TestFaultInjector:
    def test_ghost_injection_and_eventual_cleanup(self):
        deployment = small_deployment()
        deployment.run(20.0)
        injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
        injector.inject_ghost_identity(0, "ghost", position=1)
        assert deployment.node(0).alist.contains("ghost")
        deployment.run(15.0)
        assert not any(node.alist.contains("ghost") for node in deployment.nodes.values())
        assert injector.injected == 1

    def test_oversized_list_is_trimmed(self):
        deployment = small_deployment()
        deployment.run(10.0)
        injector = FaultInjector(deployment.network)
        injector.oversized_list(1, extra_ids=["g1", "g2", "g3", "g4"])
        assert len(deployment.node(1).alist) > deployment.config.dmax + 1
        deployment.run(10.0)
        assert len(deployment.node(1).alist) <= deployment.config.dmax + 1

    def test_view_and_priority_corruption_recovers(self):
        deployment = small_deployment()
        deployment.run(20.0)
        injector = FaultInjector(deployment.network)
        injector.corrupt_view(0, fake_members={"nobody"})
        injector.corrupt_priority(0, value=500)
        deployment.run(20.0)
        assert "nobody" not in deployment.node(0).current_view()

    def test_random_memory_corruption_selects_fraction(self):
        deployment = small_deployment()
        deployment.run(5.0)
        injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
        corrupted = injector.random_memory_corruption(fraction=0.5, ghost_pool=["g"])
        assert 1 <= len(corrupted) <= 2
        with pytest.raises(ValueError):
            injector.random_memory_corruption(fraction=0.0)


class TestOverhead:
    def test_overhead_summary_counts_messages(self):
        deployment = small_deployment()
        deployment.run(20.0)
        summary = overhead_summary(deployment, duration=20.0)
        assert summary.node_count == 3
        assert summary.messages_sent > 0
        assert summary.messages_per_node_per_second > 0
        assert summary.mean_payload_slots > 0
        row = summary.as_row()
        assert row["nodes"] == 3

    def test_overhead_requires_positive_duration(self):
        deployment = small_deployment()
        with pytest.raises(ValueError):
            overhead_summary(deployment, duration=0.0)
