"""Unit tests for the GRP wire messages."""

from repro.core.ancestor_list import AncestorList
from repro.core.identity import priority_key
from repro.core.messages import GRPMessage

from conftest import alist


class TestGRPMessage:
    def test_build_and_decode_roundtrip(self):
        lst = alist({"u"}, {"v", "w"})
        msg = GRPMessage.build("u", lst, priorities={"u": 1, "v": 2},
                               group_priority=priority_key(1, "u"),
                               view=frozenset({"u", "v"}))
        assert msg.sender == "u"
        assert msg.ancestor_list == lst
        assert msg.priority_map == {"u": 1, "v": 2}
        assert msg.view_set == frozenset({"u", "v"})
        assert msg.group_priority == priority_key(1, "u")

    def test_default_view_is_sender_singleton(self):
        msg = GRPMessage.build("u", AncestorList.singleton("u"), priorities={"u": 0})
        assert msg.view_set == frozenset({"u"})

    def test_messages_are_hashable_and_comparable(self):
        lst = alist({"u"}, {"v"})
        m1 = GRPMessage.build("u", lst, priorities={"u": 1})
        m2 = GRPMessage.build("u", lst, priorities={"u": 1})
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_size_estimate_counts_slots(self):
        lst = alist({"u"}, {"v", "w"})
        msg = GRPMessage.build("u", lst, priorities={"u": 1, "v": 2},
                               group_priority=priority_key(1, "u"),
                               view=frozenset({"u", "v"}))
        # 3 list slots + 2 priorities + 2 view members + 1 group priority
        assert msg.size_estimate() == 8

    def test_priorities_sorted_deterministically(self):
        lst = alist({"u"})
        m1 = GRPMessage.build("u", lst, priorities={"b": 2, "a": 1})
        m2 = GRPMessage.build("u", lst, priorities={"a": 1, "b": 2})
        assert m1.priorities == m2.priorities
