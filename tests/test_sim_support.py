"""Unit tests for the trace recorder, random streams and the Process base class."""

import pytest

from repro.sim.process import Process
from repro.sim.randomness import SeedSequenceFactory, derive_seed, substream
from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_and_count(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", sender="a")
        trace.record(2.0, "send", sender="b")
        trace.record(2.0, "drop", reason="loss")
        assert trace.count("send") == 2
        assert trace.count() == 3
        assert len(trace) == 3

    def test_filter_by_category_and_predicate(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", sender="a")
        trace.record(2.0, "send", sender="b")
        sends = trace.filter("send", predicate=lambda r: r["sender"] == "b")
        assert len(sends) == 1 and sends[0].time == 2.0

    def test_keep_categories_limits_storage_not_counts(self):
        trace = TraceRecorder(keep_categories={"drop"})
        trace.record(1.0, "send", sender="a")
        trace.record(1.0, "drop", reason="loss")
        assert trace.count("send") == 1
        assert all(r.category == "drop" for r in trace.records)

    def test_max_records_bound_drops_oldest(self):
        trace = TraceRecorder(max_records=2)
        for i in range(5):
            trace.record(float(i), "x", index=i)
        assert len(trace) == 2
        # Sliding window: the two *most recent* records survive.
        assert [rec["index"] for rec in trace.records] == [3, 4]
        # Counters stay exact past the storage bound.
        assert trace.count("x") == 5
        assert trace.counts() == {"x": 5}

    def test_max_records_counters_exact_per_category(self):
        trace = TraceRecorder(max_records=3)
        for i in range(4):
            trace.record(float(i), "send")
            trace.record(float(i), "drop")
        assert len(trace) == 3
        assert trace.count("send") == 4 and trace.count("drop") == 4
        assert trace.count() == 8

    def test_max_records_zero_stores_nothing(self):
        trace = TraceRecorder(max_records=0)
        trace.record(1.0, "x")
        assert len(trace) == 0 and trace.count("x") == 1

    def test_subscribers_see_dropped_records(self):
        trace = TraceRecorder(max_records=1)
        seen = []
        trace.subscribe("x", lambda rec: seen.append(rec.time))
        for i in range(3):
            trace.record(float(i), "x")
        assert seen == [0.0, 1.0, 2.0]

    def test_default_max_records_class_knob(self):
        # The campaign executor bounds worker memory through this class-level
        # default; explicit arguments always win over it.
        assert TraceRecorder.default_max_records is None
        TraceRecorder.default_max_records = 2
        try:
            capped = TraceRecorder()
            assert capped.max_records == 2
            for i in range(5):
                capped.record(float(i), "x")
            assert len(capped) == 2 and capped.count("x") == 5
            explicit = TraceRecorder(max_records=4)
            assert explicit.max_records == 4
        finally:
            TraceRecorder.default_max_records = None
        assert TraceRecorder().max_records is None

    def test_clear_preserves_bound(self):
        trace = TraceRecorder(max_records=2)
        for i in range(4):
            trace.record(float(i), "x")
        trace.clear()
        assert len(trace) == 0 and trace.count() == 0
        for i in range(4):
            trace.record(float(i), "x")
        assert len(trace) == 2

    def test_subscription_callbacks(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe("send", lambda rec: seen.append(rec.time))
        trace.record(3.0, "send")
        trace.record(3.0, "other")
        assert seen == [3.0]

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "x")
        trace.clear()
        assert len(trace) == 0 and trace.count() == 0


class TestRandomStreams:
    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(1, "mobility") == derive_seed(1, "mobility")
        assert derive_seed(1, "mobility") != derive_seed(1, "channel")
        assert derive_seed(1, "mobility") != derive_seed(2, "mobility")

    def test_substreams_reproducible(self):
        a = substream(5, "x").integers(0, 10**6)
        b = substream(5, "x").integers(0, 10**6)
        assert a == b

    def test_factory(self):
        factory = SeedSequenceFactory(9)
        assert factory.master_seed == 9
        assert factory.seed_for("a") == SeedSequenceFactory(9).seed_for("a")
        expected = SeedSequenceFactory(9).stream("a").integers(0, 100)
        assert factory.stream("a").integers(0, 100) == expected


class _Recorder(Process):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.started = 0
        self.received = []

    def on_start(self):
        self.started += 1

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


class TestProcess:
    def test_start_requires_binding(self):
        proc = _Recorder("a")
        with pytest.raises(RuntimeError):
            proc.start()

    def test_start_is_idempotent(self, simulator):
        proc = _Recorder("a")
        proc.bind(simulator, network=None)
        proc.start()
        proc.start()
        assert proc.started == 1

    def test_inactive_process_ignores_messages(self, simulator):
        proc = _Recorder("a")
        proc.bind(simulator, network=None)
        proc.deactivate()
        proc.deliver("b", "hello")
        assert proc.received == []
        proc.activate()
        proc.deliver("b", "hello")
        assert proc.received == [("b", "hello")]

    def test_broadcast_without_network_raises(self, simulator):
        proc = _Recorder("a")
        proc.bind(simulator, network=None)
        with pytest.raises(RuntimeError):
            proc.broadcast("x")

    def test_broadcast_while_inactive_is_noop(self, simulator):
        proc = _Recorder("a")
        proc.bind(simulator, network=None)
        proc.deactivate()
        assert proc.broadcast("x") == 0
