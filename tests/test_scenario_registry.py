"""Tests for the declarative scenario layer: specs, registry, builders."""

import json

import pytest

from repro.core.node import GRPConfig
from repro.mobility.manhattan import ManhattanGridMobility
from repro.net.channel import LossyChannel
from repro.scenarios import (ScenarioDefinition, ScenarioParameter, ScenarioSpec, build,
                             format_catalog, get_scenario, parameter_names,
                             register_scenario, scenario_names)


class TestScenarioSpec:
    def test_params_are_canonically_ordered(self):
        a = ScenarioSpec.create("static_random", n=5, area=100.0)
        b = ScenarioSpec.create("static_random", area=100.0, n=5)
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("area", 100.0), ("n", 5))

    def test_sequence_values_freeze_to_tuples(self):
        spec = ScenarioSpec.create("rpgm_scenario", group_sizes=[3, 2])
        assert spec.param_dict["group_sizes"] == (3, 2)
        hash(spec)  # hashable despite the sequence value

    def test_json_roundtrip_preserves_identity(self):
        spec = ScenarioSpec.create("rpgm_scenario", group_sizes=(4, 3), area=250.0,
                                   dmax=3)
        data = json.loads(json.dumps(spec.as_dict()))
        restored = ScenarioSpec.from_dict(data)
        assert restored == spec
        assert hash(restored) == hash(spec)
        assert restored.canonical_json() == spec.canonical_json()

    def test_with_params_merges_and_keeps_original(self):
        spec = ScenarioSpec.create("manet_waypoint", n=10)
        merged = spec.with_params(n=20, speed=5.0)
        assert merged.param_dict == {"n": 20, "speed": 5.0}
        assert spec.param_dict == {"n": 10}

    def test_label_is_unique_per_spec_and_readable(self):
        plain = ScenarioSpec.create("static_random")
        assert plain.label() == "static_random"
        spec = ScenarioSpec.create("rpgm_scenario", group_sizes=(4, 3), area=250.0)
        assert spec.label() == "rpgm_scenario[area=250.0,group_sizes=4+3]"
        assert spec.label() != spec.with_params(area=300.0).label()

    def test_normalize_spec_canonicalizes_types(self):
        from repro.scenarios import normalize_spec
        a = normalize_spec(ScenarioSpec.create("static_random", n=8.0))
        b = normalize_spec(ScenarioSpec.create("static_random", n="8"))
        c = normalize_spec(ScenarioSpec.create("static_random", n=8))
        assert a == b == c
        assert a.param_dict["n"] == 8 and a.label() == "static_random[n=8]"
        with pytest.raises(ValueError, match="unknown parameter"):
            normalize_spec(ScenarioSpec.create("static_random", bogus=1))
        with pytest.raises(KeyError):
            normalize_spec(ScenarioSpec.create("no_such_scenario"))

    def test_spec_key_is_stable(self):
        spec = ScenarioSpec.create("static_random", n=9)
        assert spec.spec_key() == ScenarioSpec.create("static_random", n=9).spec_key()
        assert spec.spec_key() != ScenarioSpec.create("static_random", n=10).spec_key()


class TestParameterCoercion:
    def test_kinds_coerce_cli_strings(self):
        assert ScenarioParameter("x", "int", 0).coerce("42") == 42
        assert ScenarioParameter("x", "float", 0.0).coerce("2.5") == 2.5
        assert ScenarioParameter("x", "bool", False).coerce("yes") is True
        assert ScenarioParameter("x", "bool", False).coerce("off") is False
        assert ScenarioParameter("x", "int_tuple", ()).coerce("4+4+3") == (4, 4, 3)
        assert ScenarioParameter("x", "int_tuple", ()).coerce([1, 2]) == (1, 2)

    def test_bad_values_raise_with_context(self):
        with pytest.raises(ValueError, match="expects kind 'int'"):
            ScenarioParameter("n", "int", 0).coerce("many")
        with pytest.raises(ValueError):
            ScenarioParameter("flag", "bool", False).coerce("maybe")
        with pytest.raises(ValueError):
            ScenarioParameter("sizes", "int_tuple", ()).coerce("")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioParameter("x", "complex", 0)


class TestRegistry:
    def test_catalog_has_at_least_twelve_scenarios(self):
        names = scenario_names()
        assert len(names) >= 12
        for legacy in ("static_random", "line_topology", "two_cluster_topology",
                       "ring_of_clusters", "manet_waypoint", "vanet_highway",
                       "rpgm_scenario", "large_manet_waypoint", "dense_highway_convoy"):
            assert legacy in names
        for new in ("manhattan_grid", "flash_crowd", "sparse_lossy_field",
                    "city_scale"):
            assert new in names

    def test_every_scenario_declares_dmax_and_descriptions(self):
        for name in scenario_names():
            definition = get_scenario(name)
            assert definition.description
            assert "dmax" in parameter_names(name)
            for parameter in definition.parameters:
                assert not parameter.required  # the stock catalog is runnable as-is

    def test_unknown_scenario_and_parameter_raise(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")
        with pytest.raises(ValueError, match="unknown parameter"):
            build(ScenarioSpec.create("static_random", bogus=1), seed=0)

    def test_duplicate_registration_rejected(self):
        definition = get_scenario("static_random")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(definition)

    def test_resolve_params_fills_defaults_and_coerces(self):
        definition = get_scenario("static_random")
        params = definition.resolve_params({"n": "9"})
        assert params["n"] == 9
        assert params["area"] == 300.0  # registry default

    def test_required_parameter_enforced(self):
        definition = ScenarioDefinition(
            name="_required_demo", description="demo",
            parameters=(ScenarioParameter("n", "int"),), builder=lambda **kw: None)
        with pytest.raises(ValueError, match="requires parameter"):
            definition.resolve_params({})

    def test_format_catalog_lists_every_scenario(self):
        catalog = format_catalog()
        for name in scenario_names():
            assert name in catalog
        assert "dmax" in catalog


class TestBuild:
    def test_build_matches_legacy_alias_bit_for_bit(self):
        from repro.experiments.scenarios import static_random
        legacy = static_random(n=6, area=100.0, radio_range=40.0, dmax=2, seed=5)
        registry = build(ScenarioSpec.create("static_random", n=6, area=100.0,
                                             radio_range=40.0, dmax=2), seed=5)
        legacy.run(15.0)
        registry.run(15.0)
        assert legacy.views() == registry.views()

    def test_build_is_deterministic_per_seed(self):
        spec = ScenarioSpec.create("manhattan_grid", n=8, area=300.0, block_size=100.0)
        a = build(spec, seed=3)
        b = build(spec, seed=3)
        a.run(10.0)
        b.run(10.0)
        assert a.views() == b.views()
        assert a.network.positions == b.network.positions

    def test_config_override_wins_over_dmax_param(self):
        config = GRPConfig(dmax=4, quarantine_enabled=False)
        deployment = build(ScenarioSpec.create("static_random", n=5, dmax=2),
                           seed=1, config=config)
        assert deployment.config is config
        assert deployment.config.dmax == 4

    def test_structural_metadata_published(self):
        deployment = build(ScenarioSpec.create("two_cluster_topology", cluster_size=2),
                           seed=1)
        assert deployment.scenario_metadata["left"] == [0, 1]
        assert deployment.scenario_metadata["right"] == [2, 3]
        ring = build(ScenarioSpec.create("ring_of_clusters", cluster_count=3,
                                         cluster_size=2), seed=1)
        assert len(ring.scenario_metadata["clusters"]) == 3


class TestNewScenarios:
    def test_manhattan_positions_stay_on_streets(self):
        spec = ScenarioSpec.create("manhattan_grid", n=12, area=400.0, block_size=100.0,
                                   speed=10.0)
        deployment = build(spec, seed=2)
        deployment.run(25.0)
        for x, y in deployment.network.positions.values():
            assert -1e-6 <= x <= 400.0 + 1e-6 and -1e-6 <= y <= 400.0 + 1e-6
            on_street = (abs(x - round(x / 100.0) * 100.0) < 1e-6
                         or abs(y - round(y / 100.0) * 100.0) < 1e-6)
            assert on_street, f"({x}, {y}) is off the street grid"

    def test_manhattan_degenerate_border_state_terminates(self):
        # A travel coordinate a hair inside either border (reachable through
        # partial moves) must bounce inward, not hang step() forever.
        from repro.mobility.manhattan import _WalkerState
        import numpy as np
        m = ManhattanGridMobility(area=400.0, block_size=100.0, speed=10.0,
                                  rng=np.random.default_rng(0))
        m._states["low"] = _WalkerState(axis=0, direction=-1)
        m._states["high"] = _WalkerState(axis=0, direction=1)
        out = m.step({"low": (4e-13, 100.0), "high": (400.0 - 4e-13, 100.0)}, 1.0)
        assert out["low"] == (10.0, 100.0)
        assert out["high"] == (390.0, 100.0)

    def test_manhattan_grid_clamped_to_block_multiple(self):
        # area=250 has no street at 250: the grid spans [0, 200] and motion
        # stays continuous (no re-snap teleports).
        import numpy as np
        m = ManhattanGridMobility(area=250.0, block_size=100.0, speed=10.0,
                                  rng=np.random.default_rng(1))
        assert m.extent == 200.0
        positions = m.initial_positions(range(6))
        for _ in range(30):
            new = m.step(positions, 1.0)
            for node in new:
                dx = abs(new[node][0] - positions[node][0])
                dy = abs(new[node][1] - positions[node][1])
                assert dx + dy <= 10.0 + 1e-9
                assert 0.0 <= new[node][0] <= 200.0 and 0.0 <= new[node][1] <= 200.0
            positions = new

    def test_manhattan_mobility_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ManhattanGridMobility(area=100.0, block_size=200.0, speed=1.0)
        with pytest.raises(ValueError):
            ManhattanGridMobility(area=100.0, block_size=50.0, speed=-1.0)
        with pytest.raises(ValueError):
            ManhattanGridMobility(area=100.0, block_size=50.0, speed=1.0,
                                  turn_probability=1.5)

    def test_flash_crowd_bursts_deactivate_and_restore(self):
        spec = ScenarioSpec.create("flash_crowd", n=12, burst_fraction=0.5,
                                   first_burst=20.0, burst_period=60.0, off_time=15.0,
                                   horizon=70.0, speed=0.0)
        deployment = build(spec, seed=4)
        deployment.run(25.0)  # inside the first burst's off window
        away = 12 - len(deployment.network.active_nodes())
        assert away == deployment.scenario_metadata["burst_size"] == 6
        deployment.run(20.0)  # past the burst's return
        assert len(deployment.network.active_nodes()) == 12

    def test_flash_crowd_validates_fraction(self):
        with pytest.raises(ValueError):
            build(ScenarioSpec.create("flash_crowd", burst_fraction=1.5), seed=0)

    def test_sparse_lossy_field_uses_lossy_delayed_channel(self):
        deployment = build(ScenarioSpec.create("sparse_lossy_field", n=8,
                                               loss_probability=0.4), seed=1)
        channel = deployment.network.channel
        assert isinstance(channel, LossyChannel)
        assert channel.loss_probability == 0.4
        assert channel.max_delay > 0
        deployment.run(10.0)


class TestSuiteOverrides:
    def test_run_experiment_accepts_scenario_override(self):
        from repro.experiments.suite import run_experiment
        spec = ScenarioSpec.create("manet_waypoint", n=8, area=200.0)
        result = run_experiment("E6", quick=True, seed=6, scenario=spec)
        assert result.rows
        default = run_experiment("E6", quick=True, seed=6)
        assert result.rows != default.rows  # the override really changed the workload

    def test_override_reapplies_internal_grid_values(self):
        from repro.experiments.suite import run_experiment
        spec = ScenarioSpec.create("static_random", n=30, area=200.0)
        result = run_experiment("E8", quick=True, seed=8, scenario=spec)
        # E8's n/dmax loop is re-applied onto the override: the row labels and
        # the workloads vary together, overriding the spec's own n.
        assert sorted({row["n"] for row in result.rows}) == [8, 16]
        assert sorted({row["dmax"] for row in result.rows}) == [2, 4]

    def test_override_undeclared_grid_parameter_noted(self):
        from repro.experiments.suite import run_experiment
        spec = ScenarioSpec.create("vanet_highway", n=8)
        result = run_experiment("E3", quick=True, seed=3, scenario=spec)
        assert any("does not declare" in note for note in result.notes)

    def test_structural_experiment_notes_ignored_override(self):
        from repro.experiments.suite import run_experiment
        spec = ScenarioSpec.create("manet_waypoint", n=6)
        result = run_experiment("E9", quick=True, seed=9, scenario=spec)
        assert any("ignored" in note for note in result.notes)

    def test_scenario_dict_form_accepted(self):
        from repro.experiments.suite import run_experiment
        spec = ScenarioSpec.create("static_random", n=8)
        by_spec = run_experiment("E6", quick=True, seed=6, scenario=spec)
        by_dict = run_experiment("E6", quick=True, seed=6, scenario=spec.as_dict())
        assert by_spec.rows == by_dict.rows
