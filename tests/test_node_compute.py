"""Unit tests for the GRP node's compute() procedure (no simulator involved)."""

import pytest

from repro.core.ancestor_list import AncestorList
from repro.core.identity import Mark, priority_key
from repro.core.messages import GRPMessage
from repro.core.node import GRPConfig, GRPNode

from conftest import alist


def msg(sender, levels, priorities=None, view=None, group_priority=None):
    """Build a GRPMessage from plain level sets."""
    lst = AncestorList.from_levels(levels)
    return GRPMessage.build(sender, lst, priorities=priorities or {sender: 0},
                            group_priority=group_priority, view=view)


def feed(node, *messages):
    """Put messages into the node's message set as if they had been received."""
    for message in messages:
        node.on_message(message.sender, message)


class TestConfigValidation:
    def test_rejects_bad_dmax(self):
        with pytest.raises(ValueError):
            GRPConfig(dmax=0)

    def test_rejects_ts_larger_than_tc(self):
        with pytest.raises(ValueError):
            GRPConfig(dmax=2, tc=1.0, ts=2.0)

    def test_rejects_non_positive_periods(self):
        with pytest.raises(ValueError):
            GRPConfig(dmax=2, tc=0.0, ts=0.0)

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            GRPConfig(dmax=2, exclusion_patience=0)
        with pytest.raises(ValueError):
            GRPConfig(dmax=2, neighbor_timeout_rounds=0)


class TestInitialState:
    def test_node_starts_alone(self, standalone_node):
        assert standalone_node.current_view() == frozenset({"v"})
        assert standalone_node.alist == AncestorList.singleton("v")
        assert not standalone_node.in_group()

    def test_compute_without_messages_keeps_singleton(self, standalone_node):
        standalone_node.compute()
        assert standalone_node.alist == AncestorList.singleton("v")
        assert standalone_node.current_view() == frozenset({"v"})


class TestHandshake:
    def test_unknown_sender_without_handshake_is_single_marked(self, standalone_node):
        feed(standalone_node, msg("u", [{"u"}]))
        standalone_node.compute()
        assert standalone_node.alist.mark_of("u") is Mark.SINGLE
        assert "u" not in standalone_node.current_view()

    def test_handshaked_sender_is_accepted_unmarked(self, standalone_node):
        feed(standalone_node, msg("u", [{"u"}, {"v"}]))
        standalone_node.compute()
        assert standalone_node.alist.mark_of("u") is Mark.NONE
        assert standalone_node.alist.position_of("u") == 1

    def test_new_member_enters_view_only_after_quarantine(self, standalone_node):
        dmax = standalone_node.config.dmax
        for round_index in range(dmax + 1):
            feed(standalone_node, msg("u", [{"u"}, {"v"}]))
            standalone_node.compute()
            if round_index < dmax:
                assert "u" not in standalone_node.current_view()
        assert "u" in standalone_node.current_view()

    def test_quarantine_disabled_admits_immediately(self):
        node = GRPNode("v", GRPConfig(dmax=3, quarantine_enabled=False))
        feed(node, msg("u", [{"u"}, {"v"}]))
        node.compute()
        assert "u" in node.current_view()


class TestListChecks:
    def test_too_long_list_is_rejected(self, standalone_node):
        dmax = standalone_node.config.dmax
        levels = [{"u"}, {"v"}] + [{f"x{i}"} for i in range(dmax)]
        feed(standalone_node, msg("u", levels))
        standalone_node.compute()
        assert standalone_node.alist.mark_of("u") is Mark.SINGLE

    def test_incompatible_group_is_double_marked(self):
        # v's established group spans v-a-b (Dmax=2); sender u brings two more
        # members in a chain: merging would exceed the diameter bound.
        node = GRPNode("v", GRPConfig(dmax=2))
        node.alist = alist({"v"}, {"a"}, {"b"})
        node.view = frozenset({"v", "a", "b"})
        node.quarantine.force("a", 0)
        node.quarantine.force("b", 0)
        feed(node,
             msg("a", [{"a"}, {"v", "b"}], view=frozenset({"v", "a", "b"})),
             msg("u", [{"u"}, {"v", "c"}, {"d"}], view=frozenset({"u", "c", "d"})))
        node.compute()
        assert node.alist.mark_of("u") is Mark.DOUBLE
        assert "u" not in node.view
        assert {"v", "a", "b"} <= set(node.view)

    def test_compatible_group_is_merged(self):
        node = GRPNode("v", GRPConfig(dmax=3))
        node.alist = alist({"v"}, {"a"})
        node.view = frozenset({"v", "a"})
        feed(node, msg("u", [{"u"}, {"v", "c"}], view=frozenset({"u", "c"})))
        node.compute()
        assert node.alist.mark_of("u") is Mark.NONE
        assert node.alist.position_of("c") == 2

    def test_view_member_skips_compatibility(self):
        node = GRPNode("v", GRPConfig(dmax=2))
        node.alist = alist({"v"}, {"u", "a"})
        node.view = frozenset({"v", "u", "a"})
        # u's list now spans further than a fresh compatibility check would like,
        # but u is already a member so its list is accepted.
        feed(node, msg("u", [{"u"}, {"v", "x"}, {"y"}], view=frozenset({"u", "x", "y"})))
        node.compute()
        assert node.alist.mark_of("u") is Mark.NONE


class TestTooFarArbitration:
    def _grow_chain(self, node, rounds):
        """Feed the node a chain neighbour advertising deeper and deeper content."""
        for _ in range(rounds):
            feed(node, msg("n1", [{"n1"}, {"v", "n2"}, {"n3"}, {"n4"}],
                           priorities={"n1": 0, "n2": 0, "n3": 0, "n4": 0},
                           view=frozenset({"n1"})))
            node.compute()

    def test_far_node_is_truncated_when_local_node_has_priority(self):
        # The far candidate n4 is much younger (larger oldness) than the local
        # node, so the local node keeps its list and simply truncates n4 away.
        node = GRPNode("a", GRPConfig(dmax=3, exclusion_patience=1))
        for _ in range(3):
            feed(node, msg("n1", [{"n1"}, {"a", "n2"}, {"n3"}, {"n4"}],
                           priorities={"n1": 99, "n2": 99, "n3": 99, "n4": 99},
                           view=frozenset({"n1"})))
            node.compute()
        assert len(node.alist) <= node.config.dmax + 1
        assert "n4" not in node.alist
        assert node.alist.mark_of("n1") is Mark.NONE

    def test_provider_double_marked_when_far_node_has_priority(self):
        # Local node "z" loses the identifier tie-break against far node "n4".
        node = GRPNode("z", GRPConfig(dmax=3, exclusion_patience=1))
        for _ in range(3):
            feed(node, msg("n1", [{"n1"}, {"z", "n2"}, {"n3"}, {"n4"}],
                           priorities={"n1": 0, "n2": 0, "n3": 0, "n4": 0},
                           view=frozenset({"n1"})))
            node.compute()
        assert node.alist.mark_of("n1") is Mark.DOUBLE

    def test_losing_node_backs_off_and_double_marks_the_provider(self):
        # Paper lines 16-21: when the persistent far identity n4 wins the
        # priority comparison, the local node must ignore (double-mark) the
        # neighbours that provided it — this is how nodes farther apart than
        # Dmax end up separated by a double-marked edge (Proposition 5).
        # The local group {z, n1} is young (oldness 5) while the far identity n4
        # belongs to an older group (oldness 0), so n4's side wins.
        node = GRPNode("z", GRPConfig(dmax=3, exclusion_patience=1, initial_oldness=5))
        node.alist = alist({"z"}, {"n1"})
        node.view = frozenset({"z", "n1"})
        node.quarantine.force("n1", 0)
        for _ in range(3):
            feed(node, msg("n1", [{"n1"}, {"z", "n2"}, {"n3"}, {"n4"}],
                           priorities={"n1": 5, "n2": 5, "n3": 0, "n4": 0},
                           view=frozenset({"n1", "z"})))
            node.compute()
        assert node.alist.mark_of("n1") is Mark.DOUBLE
        assert "n4" not in node.alist
        assert len(node.alist) <= node.config.dmax + 1


class TestPriorities:
    def test_oldness_grows_only_while_alone(self, standalone_node):
        standalone_node.compute()
        standalone_node.compute()
        assert standalone_node.priorities.own_oldness == 2
        # Join a group: oldness freezes.
        node = GRPNode("v", GRPConfig(dmax=2, quarantine_enabled=False))
        feed(node, msg("u", [{"u"}, {"v"}]))
        node.compute()
        frozen = node.priorities.own_oldness
        feed(node, msg("u", [{"u"}, {"v"}]))
        node.compute()
        assert node.priorities.own_oldness == frozen

    def test_group_priority_is_min_member_key(self):
        node = GRPNode("v", GRPConfig(dmax=2, quarantine_enabled=False))
        feed(node, msg("u", [{"u"}, {"v"}], priorities={"u": 0}))
        node.compute()
        assert node.group_priority() == priority_key(0, "u")


class TestFaultInjectionHooks:
    def test_ghost_insertion_and_cleanup(self, standalone_node):
        standalone_node.corrupt_state(ghost_nodes={"ghost": 2})
        assert standalone_node.alist.contains("ghost")
        # Without any neighbour confirming the ghost, the next computation
        # rebuilds the list from scratch and the ghost disappears.
        standalone_node.compute()
        assert not standalone_node.alist.contains("ghost")

    def test_append_levels_makes_list_too_long(self, standalone_node):
        standalone_node.corrupt_state(append_levels=["g1", "g2", "g3", "g4"])
        assert len(standalone_node.alist) > standalone_node.config.dmax + 1
        standalone_node.compute()
        assert len(standalone_node.alist) <= standalone_node.config.dmax + 1

    def test_view_and_priority_corruption(self, standalone_node):
        standalone_node.corrupt_state(view={"x", "y"}, priority=42)
        assert standalone_node.current_view() == frozenset({"x", "y", "v"})
        assert standalone_node.priorities.own_oldness == 42

    def test_quarantine_noise(self, standalone_node):
        import numpy as np
        standalone_node.corrupt_state(ghost_nodes={"a": 1})
        standalone_node.corrupt_state(quarantine_noise=(np.random.default_rng(0), 3))
        assert 0 <= standalone_node.quarantine.counter("a") <= 3


class TestMessageHandling:
    def test_last_message_per_sender_wins(self, standalone_node):
        feed(standalone_node, msg("u", [{"u"}]), msg("u", [{"u"}, {"v"}]))
        assert len(standalone_node.msg_set) == 1
        standalone_node.compute()
        assert standalone_node.alist.mark_of("u") is Mark.NONE

    def test_non_grp_payloads_are_ignored(self, standalone_node):
        standalone_node.on_message("u", {"not": "a GRP message"})
        assert standalone_node.msg_set == {}
