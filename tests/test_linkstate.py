"""Randomized equivalence of incremental link-state maintenance vs rebuild.

The :class:`repro.net.linkstate.LinkStateCache` patches only the links of the
nodes a delta touches; its one correctness obligation is that after *any*
sequence of moves, insertions, removals, churn and radio mutations, the stored
directed edge set is identical to a from-scratch recomputation over the
current positions.  These tests drive a network through long randomized delta
sequences (with several radios, densities and seeds) and compare the cache
against a brute-force rebuild after every step — including the reverse
adjacency and the sorted-candidate view the broadcast path consumes.
"""

import numpy as np
import pytest

from repro.net.network import Network
from repro.net.radio import AsymmetricRangeRadio, ProbabilisticDiskRadio, UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process


class Idle(Process):
    def on_message(self, sender, payload):
        pass


def brute_force_arcs(network):
    """Directed link set recomputed from scratch (all nodes, active or not)."""
    nodes = list(network.node_ids)
    positions = network.positions
    radio = network.radio
    arcs = set()
    for u in nodes:
        for v in nodes:
            if u != v and radio.link_exists(u, v, positions[u], positions[v]):
                arcs.add((u, v))
    return arcs


def cache_arcs(cache):
    return set(cache.arcs())


def assert_cache_consistent(network):
    """Cache ≡ rebuild, forward ≡ reverse adjacency, sorted view ≡ out-set."""
    cache = network._link_state()
    assert cache is not None
    expected = brute_force_arcs(network)
    assert cache_arcs(cache) == expected
    reverse = {(u, v) for v in network.node_ids for u in cache.in_neighbors(v)}
    assert reverse == expected
    for u in network.node_ids:
        assert set(cache.out_neighbors_sorted(u)) == set(cache.out_neighbors(u))
        orders = [network._order[v] for v in cache.out_neighbors_sorted(u)]
        assert orders == sorted(orders)


def build_network(radio, n, area, seed, array_state=True):
    sim = Simulator(seed=seed)
    network = Network(sim, radio=radio, array_state=array_state)
    rng = np.random.default_rng(seed)
    for i in range(n):
        network.add_node(Idle(i), (rng.uniform(0, area), rng.uniform(0, area)))
    return network, rng


RADIOS = [
    lambda: UnitDiskRadio(120.0),
    lambda: AsymmetricRangeRadio(100.0, ranges={0: 180.0, 3: 40.0}),
    lambda: ProbabilisticDiskRadio(90.0, 150.0, 0.5, rng=np.random.default_rng(5)),
]


@pytest.mark.parametrize("array_state", [True, False],
                         ids=["array", "dict"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("radio_factory", RADIOS)
def test_randomized_delta_sequence_matches_rebuild(radio_factory, seed, array_state):
    network, rng = build_network(radio_factory(), n=40, area=600.0, seed=seed,
                                 array_state=array_state)
    assert_cache_consistent(network)
    next_id = 40
    for step in range(60):
        op = rng.integers(0, 10)
        nodes = network.node_ids
        if op < 5:  # move a random node (the dominant delta under mobility)
            node = nodes[int(rng.integers(0, len(nodes)))]
            jump = rng.uniform(0, 200.0, size=2)
            old = network.position_of(node)
            network.set_position(node, (old[0] + jump[0] - 100.0,
                                        old[1] + jump[1] - 100.0))
        elif op < 6:  # batch teleport (mobility-step shaped delta)
            moved = {node: (rng.uniform(0, 600.0), rng.uniform(0, 600.0))
                     for node in nodes[:: int(rng.integers(2, 6))]}
            network.set_positions(moved)
        elif op < 7:  # insertion
            network.add_node(Idle(next_id), (rng.uniform(0, 600.0),
                                             rng.uniform(0, 600.0)))
            next_id += 1
        elif op < 8 and len(nodes) > 5:  # removal
            network.remove_node(nodes[int(rng.integers(0, len(nodes)))])
        else:  # churn: flips must not disturb the (activity-blind) cache
            node = nodes[int(rng.integers(0, len(nodes)))]
            if network.process(node).active:
                network.deactivate_node(node)
            else:
                network.activate_node(node)
        if step % 5 == 0 or step > 50:
            assert_cache_consistent(network)
    assert_cache_consistent(network)


def test_radio_mutation_forces_rebuild():
    radio = UnitDiskRadio(80.0)
    network, rng = build_network(radio, n=30, area=500.0, seed=11)
    before = cache_arcs(network._link_state())
    radio.radio_range = 200.0  # property setter notifies the network
    after = cache_arcs(network._link_state())
    assert after == brute_force_arcs(network)
    assert after != before  # densification at 500x500/30 nodes is certain
    assert_cache_consistent(network)


def test_asymmetric_range_override_rebuilds():
    radio = AsymmetricRangeRadio(90.0)
    network, _ = build_network(radio, n=25, area=400.0, seed=13)
    assert_cache_consistent(network)
    radio.set_range(0, 400.0)  # non-uniform growth: node 0 reaches everyone
    cache = network._link_state()
    assert all(cache.has_arc(0, v) for v in network.node_ids if v != 0)
    assert_cache_consistent(network)
    radio.clear_range(0)
    assert_cache_consistent(network)


def test_symmetric_neighbors_match_topology():
    network, rng = build_network(UnitDiskRadio(150.0), n=35, area=500.0, seed=7)
    for _ in range(3):
        node = int(rng.integers(0, 35))
        network.deactivate_node(node)
    cache = network._link_state()
    graph = network.topology()
    for node in network.node_ids:
        assert network.neighbors_of(node) == (
            set(graph.neighbors(node)) if node in graph else set())
    # symmetric_neighbors is activity-blind; neighbors_of filters activity.
    for node in network.node_ids:
        sym = set(cache.symmetric_neighbors(node))
        assert {w for w in sym if network.process(w).active
                and network.process(node).active} == network.neighbors_of(node)


def test_cache_disabled_paths_still_agree():
    """vectorized_delivery=False serves identical snapshots via the scan path."""
    fast, _ = build_network(UnitDiskRadio(130.0), n=30, area=500.0, seed=21)
    slow, _ = build_network(UnitDiskRadio(130.0), n=30, area=500.0, seed=21)
    slow.vectorized_delivery = False
    assert slow._link_state() is None
    assert set(fast.topology().edges) == set(slow.topology().edges)
    assert set(fast.directed_topology().edges) == set(slow.directed_topology().edges)
    for node in fast.node_ids:
        assert fast.neighbors_of(node) == slow.neighbors_of(node)
