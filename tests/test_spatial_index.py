"""Equivalence suite for the spatial-index neighbour engine.

The grid index must be *behaviourally invisible*: for every radio with a
bounded range, the indexed network and the brute-force network must report
identical neighbour sets, identical topology snapshots and identical broadcast
receiver sets — across random placements, mobility steps, churn, and the nasty
geometric corner cases (nodes exactly on cell edges, exactly at radio range,
coincident points, empty networks).
"""

import math

import numpy as np
import pytest

from repro.net.geometry import distance
from repro.net.network import Network
from repro.net.radio import AsymmetricRangeRadio, ProbabilisticDiskRadio, UnitDiskRadio
from repro.net.spatialindex import UniformGridIndex
from repro.net.topology import snapshot_graph
from repro.sim.engine import Simulator
from repro.sim.process import Process


class Recorder(Process):
    """Test process recording every received (sender, payload)."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.inbox = []

    def on_message(self, sender, payload):
        self.inbox.append((sender, payload))


def brute_pairs(positions, r):
    nodes = list(positions)
    out = set()
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if distance(positions[u], positions[v]) <= r:
                out.add(frozenset((u, v)))
    return out


# --------------------------------------------------------------- index itself


class TestUniformGridIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex(0.0)

    def test_empty_index(self):
        index = UniformGridIndex(10.0)
        assert len(index) == 0
        assert index.query_ball((0, 0), 100.0) == []
        assert list(index.pairs_within(100.0)) == []

    def test_insert_remove_update(self):
        index = UniformGridIndex(10.0, {"a": (0, 0), "b": (5, 5)})
        assert "a" in index and len(index) == 2
        with pytest.raises(ValueError):
            index.insert("a", (1, 1))
        index.update("a", (100, 100))
        assert index.position_of("a") == (100.0, 100.0)
        assert set(index.query_ball((100, 100), 1.0)) == {"a"}
        index.remove("a")
        index.remove("a")  # no-op
        assert "a" not in index and len(index) == 1

    def test_nodes_exactly_on_cell_edges(self):
        # Positions at exact multiples of the cell size land in one cell only
        # and are still found by queries from either side of the edge.
        index = UniformGridIndex(10.0)
        for i, pos in enumerate([(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (-10.0, 0.0)]):
            index.insert(i, pos)
        assert set(index.query_ball((0.0, 0.0), 10.0)) == {0, 1, 3}
        assert set(index.query_ball((9.999, 0.0), 10.0)) == {0, 1}
        assert brute_pairs(dict(enumerate([(0.0, 0.0), (10.0, 0.0), (20.0, 0.0),
                                           (-10.0, 0.0)])), 10.0) == \
            {frozenset(p) for p in index.pairs_within(10.0)}

    def test_coincident_points(self):
        index = UniformGridIndex(5.0, {"a": (3, 3), "b": (3, 3), "c": (3, 3)})
        assert set(index.neighbors_within("a", 0.0)) == {"b", "c"}
        assert {frozenset(p) for p in index.pairs_within(0.0)} == \
            {frozenset(("a", "b")), frozenset(("a", "c")), frozenset(("b", "c"))}

    def test_radius_larger_than_cell(self):
        rng = np.random.default_rng(7)
        positions = {i: (float(x), float(y))
                     for i, (x, y) in enumerate(rng.uniform(-50, 50, size=(40, 2)))}
        index = UniformGridIndex(4.0, positions)
        for r in (0.0, 3.0, 17.5, 200.0):
            assert {frozenset(p) for p in index.pairs_within(r)} == brute_pairs(positions, r)
            for node, pos in positions.items():
                expected = {n for n, p in positions.items()
                            if n != node and distance(pos, p) <= r}
                assert set(index.neighbors_within(node, r)) == expected

    def test_pairs_are_unique(self):
        rng = np.random.default_rng(3)
        positions = {i: (float(x), float(y))
                     for i, (x, y) in enumerate(rng.uniform(0, 30, size=(25, 2)))}
        index = UniformGridIndex(10.0, positions)
        pairs = list(index.pairs_within(10.0))
        assert len(pairs) == len({frozenset(p) for p in pairs})


# ------------------------------------------------- randomized network twins


def make_radio(kind, r, seed):
    if kind == "unit":
        return UnitDiskRadio(r)
    if kind == "asymmetric":
        rng = np.random.default_rng(seed + 1)
        ranges = {i: float(rng.uniform(0.3 * r, r)) for i in range(0, 40, 3)}
        return AsymmetricRangeRadio(r, ranges=ranges)
    raise ValueError(kind)


def random_placement(seed, r):
    """Random placement with cell-edge, at-range and coincident corner cases."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 60))
    area = float(rng.uniform(2 * r, 10 * r))
    positions = {i: (float(x), float(y))
                 for i, (x, y) in enumerate(rng.uniform(0, area, size=(n, 2)))}
    nodes = list(positions)
    for node in nodes:
        draw = rng.random()
        x, y = positions[node]
        if draw < 0.15:  # snap onto a grid-cell edge
            positions[node] = (round(x / r) * r, y)
        elif draw < 0.25 and len(nodes) > 1:  # coincide with another node
            other = nodes[int(rng.integers(0, len(nodes)))]
            positions[node] = positions[other]
        elif draw < 0.35 and len(nodes) > 1:  # exactly at radio range
            other = nodes[int(rng.integers(0, len(nodes)))]
            if other != node:
                ox, oy = positions[other]
                angle = float(rng.uniform(0, 2 * math.pi))
                positions[node] = (ox + r * math.cos(angle), oy + r * math.sin(angle))
    return positions, area, rng


def build_twins(positions, radio_factory, seed):
    """Two identical networks, one indexed, one brute-force."""
    nets = []
    for use_index in (True, False):
        sim = Simulator(seed=seed)
        net = Network(sim, radio=radio_factory(), use_spatial_index=use_index)
        for node, pos in positions.items():
            net.add_node(Recorder(node), pos)
        nets.append((sim, net))
    return nets


def assert_topologies_match(indexed, brute):
    gi, gb = indexed.topology(), brute.topology()
    assert set(gi.nodes) == set(gb.nodes)
    assert {frozenset(e) for e in gi.edges} == {frozenset(e) for e in gb.edges}
    di, db = indexed.directed_topology(), brute.directed_topology()
    assert set(di.nodes) == set(db.nodes)
    assert set(di.edges) == set(db.edges)
    for node in indexed.node_ids:
        assert indexed.neighbors_of(node) == brute.neighbors_of(node)
    # Cross-check against the reference snapshot builder as well.
    reference = snapshot_graph(brute.positions, brute.radio.link_exists,
                               active=brute.active_nodes())
    assert {frozenset(e) for e in gi.edges} == {frozenset(e) for e in reference.edges}


def assert_broadcasts_match(sim_i, net_i, sim_b, net_b, payload):
    for sender in net_i.node_ids:
        got_i = net_i.broadcast(sender, payload)
        got_b = net_b.broadcast(sender, payload)
        assert got_i == got_b
        sim_i.run()
        sim_b.run()
    for node in net_i.node_ids:
        assert net_i.process(node).inbox == net_b.process(node).inbox


@pytest.mark.parametrize("radio_kind", ["unit", "asymmetric"])
@pytest.mark.parametrize("seed", range(12))
def test_randomized_equivalence(radio_kind, seed):
    """Indexed and brute-force backends agree through placement/mobility/churn."""
    r = float(np.random.default_rng(seed + 100).uniform(5.0, 40.0))
    positions, area, rng = random_placement(seed, r)
    (sim_i, net_i), (sim_b, net_b) = build_twins(
        positions, lambda: make_radio(radio_kind, r, seed), seed)
    assert_topologies_match(net_i, net_b)
    assert_broadcasts_match(sim_i, net_i, sim_b, net_b, ("hello", 0))

    nodes = list(positions)
    for step in range(4):
        if nodes:
            # Random waypoint-ish jiggle, applied identically to both twins.
            moved = {node: (float(rng.uniform(0, area)), float(rng.uniform(0, area)))
                     for node in nodes if rng.random() < 0.5}
            net_i.set_positions(moved)
            net_b.set_positions(moved)
            # Churn: flip a random subset.
            for node in nodes:
                if rng.random() < 0.2:
                    if net_i.process(node).active:
                        net_i.deactivate_node(node)
                        net_b.deactivate_node(node)
                    else:
                        net_i.activate_node(node)
                        net_b.activate_node(node)
        assert_topologies_match(net_i, net_b)
        assert_broadcasts_match(sim_i, net_i, sim_b, net_b, ("round", step))


def test_probabilistic_radio_equivalence():
    """Stochastic radios draw the same stream on both backends (same seed)."""
    rng = np.random.default_rng(42)
    positions = {i: (float(x), float(y))
                 for i, (x, y) in enumerate(rng.uniform(0, 80, size=(30, 2)))}
    inboxes = []
    for use_index in (True, False):
        sim = Simulator(seed=5)
        radio = ProbabilisticDiskRadio(10.0, 25.0, band_probability=0.5,
                                       rng=np.random.default_rng(99))
        net = Network(sim, radio=radio, use_spatial_index=use_index)
        for node, pos in positions.items():
            net.add_node(Recorder(node), pos)
        for sender in net.node_ids:
            net.broadcast(sender, "p")
        sim.run()
        inboxes.append({node: net.process(node).inbox for node in net.node_ids})
    assert inboxes[0] == inboxes[1]


@pytest.mark.parametrize("use_index", [True, False])
def test_mobility_ghost_nodes_are_ignored(use_index):
    """Mobility models emitting unknown node ids must not pollute the tables."""
    from repro.mobility.static import StaticMobility

    class GhostMobility(StaticMobility):
        def step(self, positions, dt):
            return dict(positions, ghost=(1.0, 1.0))

    sim = Simulator(seed=0)
    net = Network(sim, radio=UnitDiskRadio(10.0), mobility=GhostMobility(),
                  use_spatial_index=use_index)
    net.add_node(Recorder("a"), (0, 0))
    net.add_node(Recorder("b"), (3, 0))
    net.neighbors_of("a")  # force index build before the first mobility step
    net.start()
    sim.run(until=2.5)
    assert sorted(net.positions) == ["a", "b"]
    assert net.broadcast("a", "x") == 1
    assert net.neighbors_of("a") == {"b"}


def test_unbounded_radio_falls_back_to_brute_force():
    class EverywhereRadio(UnitDiskRadio):
        def __init__(self):
            super().__init__(1.0)

        def in_vicinity(self, sender, receiver, sender_pos, receiver_pos):
            return True

        def max_range(self):
            return None

    sim = Simulator(seed=0)
    net = Network(sim, radio=EverywhereRadio(), use_spatial_index=True)
    for i in range(5):
        net.add_node(Recorder(i), (i * 1000.0, 0.0))
    assert net._spatial_index() is None
    assert net.broadcast(0, "x") == 4
    assert net.neighbors_of(0) == {1, 2, 3, 4}


# ------------------------------------------------------------ cache behaviour


class TestSnapshotCache:
    def build(self, use_index=True):
        sim = Simulator(seed=0)
        net = Network(sim, radio=UnitDiskRadio(10.0), use_spatial_index=use_index)
        for node, pos in {"a": (0, 0), "b": (5, 0), "c": (50, 0)}.items():
            net.add_node(Recorder(node), pos)
        return sim, net

    @pytest.mark.parametrize("use_index", [True, False])
    def test_snapshot_is_cached_until_invalidated(self, use_index):
        sim, net = self.build(use_index)
        first = net._symmetric_snapshot()
        assert net._symmetric_snapshot() is first
        net.set_position("c", (8, 0))
        second = net._symmetric_snapshot()
        assert second is not first
        assert second.has_edge("b", "c")

    def test_returned_graph_is_a_copy(self):
        sim, net = self.build()
        graph = net.topology()
        graph.remove_edge("a", "b")
        assert net.topology().has_edge("a", "b")

    def test_activation_change_invalidates_cache(self):
        sim, net = self.build()
        assert "b" in net.topology()
        # Deactivate through the process directly, bypassing the network API.
        net.process("b").deactivate()
        assert "b" not in net.topology()
        net.process("b").activate()
        assert "b" in net.topology()

    def test_remove_node_invalidates_cache_and_index(self):
        sim, net = self.build()
        assert net.neighbors_of("a") == {"b"}
        net.remove_node("b")
        assert net.neighbors_of("a") == set()
        assert net.broadcast("a", "x") == 0

    def test_growing_asymmetric_range_is_observed(self):
        sim = Simulator(seed=0)
        radio = AsymmetricRangeRadio(10.0)
        net = Network(sim, radio=radio, use_spatial_index=True)
        net.add_node(Recorder("a"), (0, 0))
        net.add_node(Recorder("b"), (30, 0))
        assert net.neighbors_of("a") == set()
        # Raising the maximum range changes the cache key and the grid cell
        # size, so the new link shows up without an explicit invalidation.
        radio.set_range("a", 40.0)
        radio.set_range("b", 40.0)
        assert net.neighbors_of("a") == {"b"}
        assert net.broadcast("a", "x") == 1

    def test_invalidate_topology_after_in_place_radio_mutation(self):
        sim = Simulator(seed=0)
        radio = AsymmetricRangeRadio(10.0, ranges={"a": 40.0, "b": 40.0})
        net = Network(sim, radio=radio, use_spatial_index=True)
        net.add_node(Recorder("a"), (0, 0))
        net.add_node(Recorder("b"), (30, 0))
        assert net.neighbors_of("a") == {"b"}
        # Shrinking one range does not change max_range(): the cache cannot
        # see it, which is exactly what invalidate_topology() is for.
        radio.set_range("a", 5.0)
        net.invalidate_topology()
        assert net.neighbors_of("a") == set()


# ---------------------------------------------------- vectorized query filter


class TestVectorizedQueryFilter:
    """query_ball's dense-candidate path must match the scalar loop exactly.

    Above ``_VECTOR_MIN_CANDIDATES`` harvested candidates the filter runs on
    numpy squared distances with a guard-band re-check; these tests force both
    branches over the same geometry — including coincident points, nodes
    exactly at range and exact cell-edge placements — and require identical
    results.
    """

    def scalar_reference(self, positions, q, r):
        return [n for n, p in positions.items()
                if math.hypot(p[0] - q[0], p[1] - q[1]) <= r]

    def test_dense_query_matches_brute_force(self):
        rng = np.random.default_rng(42)
        index = UniformGridIndex(25.0)
        positions = {}
        for i, (x, y) in enumerate(rng.uniform(0, 200, size=(300, 2))):
            positions[i] = (float(x), float(y))
            index.insert(i, positions[i])
        for q in [(100.0, 100.0), (0.0, 0.0), (199.0, 3.0)]:
            for r in [30.0, 75.0, 250.0]:
                got = index.query_ball(q, r)
                assert sorted(got) == sorted(self.scalar_reference(positions, q, r))
                # Candidate harvesting preserves cell-scan order either way.
                assert got == [n for n in got]

    def test_coincident_points_all_found(self):
        # 100 nodes on the same point exceed the vectorization threshold in a
        # single cell; a zero-radius query must return every one of them.
        index = UniformGridIndex(10.0)
        for i in range(100):
            index.insert(i, (5.0, 5.0))
        assert sorted(index.query_ball((5.0, 5.0), 0.0)) == list(range(100))
        assert sorted(index.query_ball((5.0, 5.0), 1.0)) == list(range(100))
        assert index.query_ball((5.01, 5.0), 0.0) == []

    def test_exactly_at_range_is_inclusive_in_both_branches(self):
        # A ring of nodes exactly at distance r: the inclusive d <= r
        # comparison must keep them all, whether the filter runs scalar
        # (few candidates) or vectorized (many).
        r = 50.0
        center = (500.0, 500.0)
        for n in (8, 200):  # below and above the vectorization threshold
            index = UniformGridIndex(50.0)
            expected = []
            for i in range(n):
                angle = 2.0 * math.pi * i / n
                x = center[0] + r * math.cos(angle)
                y = center[1] + r * math.sin(angle)
                if math.hypot(x - center[0], y - center[1]) <= r:
                    expected.append(i)
                index.insert(i, (x, y))
            got = index.query_ball(center, r)
            assert sorted(got) == expected

    def test_cell_edge_placements_dense(self):
        # Nodes on exact multiples of the cell size, enough of them to force
        # the vectorized branch: membership is single-cell, queries from both
        # sides of each edge agree with brute force.
        index = UniformGridIndex(10.0)
        positions = {}
        i = 0
        for gx in range(10):
            for gy in range(10):
                positions[i] = (gx * 10.0, gy * 10.0)
                index.insert(i, positions[i])
                i += 1
        for q in [(0.0, 0.0), (50.0, 50.0), (49.999, 50.0), (90.0, 90.0)]:
            for r in [10.0, 14.142135623730951, 30.0]:
                got = index.query_ball(q, r)
                assert sorted(got) == sorted(self.scalar_reference(positions, q, r))
