"""Unit tests for marks and priority keys."""

from repro.core.identity import Mark, priority_key


def test_mark_ordering():
    assert Mark.NONE < Mark.SINGLE < Mark.DOUBLE


def test_only_unmarked_identities_are_propagatable():
    assert Mark.NONE.propagatable
    assert not Mark.SINGLE.propagatable
    assert not Mark.DOUBLE.propagatable


def test_priority_key_total_order_over_mixed_ids():
    keys = [priority_key(0, 10), priority_key(0, 2), priority_key(1, 1)]
    assert sorted(keys) == [priority_key(0, 10), priority_key(0, 2), priority_key(1, 1)]
