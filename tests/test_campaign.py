"""Tests for the campaign orchestrator: spec, store, executors, aggregation."""


import pytest

from repro.campaign import (CampaignSpec, ResultStore, SQLiteResultStore, TaskRecord,
                            aggregate_metrics, column_stats, deterministic_report,
                            open_store, run_campaign)
from repro.campaign.executor import execute_task


def small_spec(**overrides):
    """The cheapest real campaign: E6 quick runs in about a second."""
    params = dict(name="test", experiments=("E6",), replicates=2, root_seed=7)
    params.update(overrides)
    return CampaignSpec(**params)


class TestCampaignSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = CampaignSpec(name="x", experiments=("E1", "E3"), replicates=3, root_seed=5)
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == [
            "E1/r0", "E1/r1", "E1/r2", "E3/r0", "E3/r1", "E3/r2"]
        assert tasks == spec.expand()
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_seeds_derive_from_root_seed(self):
        a = CampaignSpec(name="x", experiments=("E1",), replicates=2, root_seed=1)
        b = CampaignSpec(name="x", experiments=("E1",), replicates=2, root_seed=2)
        assert [t.seed for t in a.expand()] != [t.seed for t in b.expand()]
        assert a.task_seed("E1", 0) == a.expand()[0].seed

    def test_spec_hash_sensitive_to_every_field(self):
        base = small_spec()
        assert base.spec_hash() == small_spec().spec_hash()
        for variant in (small_spec(name="other"), small_spec(replicates=3),
                        small_spec(root_seed=8), small_spec(quick=False),
                        small_spec(experiments=("E6", "E8")),
                        small_spec(max_trace_records=None)):
            assert variant.spec_hash() != base.spec_hash()

    def test_experiment_ids_normalized_to_upper(self):
        spec = CampaignSpec(name="x", experiments=("e2",))
        assert spec.experiments == ("E2",)

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=())
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=("E1",), replicates=0)
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=("E1",), max_trace_records=-1)


def make_record(spec, task, rows=None):
    return TaskRecord(
        spec_hash=spec.spec_hash(), task_id=task.task_id, experiment=task.experiment,
        replicate=task.replicate, seed=task.seed, quick=task.quick,
        description="prefilled", wall_time=0.5,
        rows=rows if rows is not None else [{"metric": 1.0}], notes=["fake"])


class TestResultStore:
    def test_append_load_roundtrip(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec, task))
        records = store.load()
        assert len(records) == 1
        assert records[0].task_id == task.task_id
        assert records[0].rows == [{"metric": 1.0}]

    def test_load_skips_blank_and_corrupt_lines(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(spec, task))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n{not json\n")
            handle.write('{"task_id": "missing-keys"}\n')
            handle.write('{"spec_hash": "x", "trunc')  # crashed writer
        assert len(store.load()) == 1

    def test_completed_namespaced_by_spec_hash(self, tmp_path):
        spec_a, spec_b = small_spec(), small_spec(root_seed=99)
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec_a, spec_a.expand()[0]))
        assert set(store.completed(spec_a.spec_hash())) == {"E6/r0"}
        assert store.completed(spec_b.spec_hash()) == {}

    def test_duplicate_task_last_wins(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec, task, rows=[{"metric": 1.0}]))
        store.append(make_record(spec, task, rows=[{"metric": 2.0}]))
        assert store.completed(spec.spec_hash())[task.task_id].rows == [{"metric": 2.0}]

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == []

    def test_pre_scenario_records_still_load(self, tmp_path):
        # Stores written before the scenario axis existed have no "scenario"
        # key; they must keep loading (and resuming) unchanged.
        spec = small_spec()
        task = spec.expand()[0]
        record = make_record(spec, task)
        data = record.as_dict()
        del data["scenario"]
        path = tmp_path / "old-store.jsonl"
        import json as _json
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(data) + "\n")
        loaded = ResultStore(path).load()
        assert len(loaded) == 1
        assert loaded[0].scenario is None
        assert loaded[0].task_id == task.task_id


#: Both store backends must satisfy the identical semantics contract; the
#: fixtures below run the shared suite over each.
STORE_BACKENDS = {
    "jsonl": lambda path: ResultStore(str(path) + ".jsonl"),
    "sqlite": lambda path: SQLiteResultStore(str(path) + ".db"),
}


@pytest.fixture(params=sorted(STORE_BACKENDS))
def any_store(request, tmp_path):
    return STORE_BACKENDS[request.param](tmp_path / "store")


def _concurrent_append_worker(path, spec_hash, worker, count):
    """Spawned-process body: hammer one SQLite store with appends."""
    store = SQLiteResultStore(path)
    for index in range(count):
        store.append(TaskRecord(
            spec_hash=spec_hash, task_id=f"E6/w{worker}/r{index}",
            experiment="E6", replicate=index, seed=index, quick=True,
            description="concurrent", wall_time=0.0,
            rows=[{"worker": worker, "index": index}], notes=[]))


class TestStoreBackends:
    """Backend-agnostic store semantics (JSONL reference and SQLite)."""

    def test_append_load_roundtrip(self, any_store):
        spec = small_spec()
        task = spec.expand()[0]
        any_store.append(make_record(spec, task))
        records = any_store.load()
        assert len(records) == 1
        assert records[0].task_id == task.task_id
        assert records[0].rows == [{"metric": 1.0}]

    def test_completed_namespaced_by_spec_hash(self, any_store):
        spec_a, spec_b = small_spec(), small_spec(root_seed=99)
        any_store.append(make_record(spec_a, spec_a.expand()[0]))
        any_store.append(make_record(spec_b, spec_b.expand()[1]))
        assert set(any_store.completed(spec_a.spec_hash())) == {"E6/r0"}
        assert set(any_store.completed(spec_b.spec_hash())) == {"E6/r1"}

    def test_duplicate_task_last_wins(self, any_store):
        spec = small_spec()
        task = spec.expand()[0]
        any_store.append(make_record(spec, task, rows=[{"metric": 1.0}]))
        any_store.append(make_record(spec, task, rows=[{"metric": 2.0}]))
        assert any_store.completed(spec.spec_hash())[task.task_id].rows == [
            {"metric": 2.0}]

    def test_missing_file_loads_empty(self, any_store):
        assert any_store.load() == []
        assert any_store.compact() == 0

    def test_compact_drops_superseded_records_only(self, any_store):
        spec, other = small_spec(), small_spec(root_seed=99)
        tasks = spec.expand()
        any_store.append(make_record(spec, tasks[0], rows=[{"metric": 1.0}]))
        any_store.append(make_record(spec, tasks[1]))
        any_store.append(make_record(other, other.expand()[0]))  # same task_id,
        # different campaign: must survive compaction untouched.
        any_store.append(make_record(spec, tasks[0], rows=[{"metric": 2.0}]))
        removed = any_store.compact()
        assert removed == 1
        assert len(any_store.load()) == 3
        # Exactly the records completed() already resolved to survive.
        assert any_store.completed(spec.spec_hash())[tasks[0].task_id].rows == [
            {"metric": 2.0}]
        assert set(any_store.completed(other.spec_hash())) == {"E6/r0"}
        # Idempotent: a second pass finds nothing to drop.
        assert any_store.compact() == 0

    def test_resume_parity_with_backend(self, any_store):
        """A campaign resumed from either backend skips exactly the stored
        tasks and reproduces the serial report body."""
        spec = small_spec(replicates=4)
        tasks = spec.expand()
        for task in tasks[:2]:
            any_store.append(make_record(spec, task))
        result = run_campaign(spec, store=any_store, jobs=1)
        assert result.executed == 2 and result.skipped == 2
        by_id = {o.task_id: o for o in result.outcomes}
        for task in tasks[:2]:
            assert by_id[task.task_id].from_store
        for task in tasks[2:]:
            assert not by_id[task.task_id].from_store
        assert set(any_store.completed(spec.spec_hash())) == {
            t.task_id for t in tasks}


class TestSQLiteStore:
    """SQLite-only behaviour: factory routing, concurrency, compaction."""

    def test_open_store_picks_backend_from_path(self, tmp_path):
        assert isinstance(open_store(tmp_path / "r.jsonl"), ResultStore)
        assert isinstance(open_store(tmp_path / "r.sqlite"), SQLiteResultStore)
        assert isinstance(open_store(tmp_path / "r.db"), SQLiteResultStore)
        prefixed = open_store(f"sqlite:{tmp_path}/plain-name")
        assert isinstance(prefixed, SQLiteResultStore)
        assert prefixed.path == f"{tmp_path}/plain-name"

    def test_concurrent_writers_lose_no_rows(self, tmp_path):
        """Two processes appending to the same SQLite store concurrently:
        every row lands (WAL + busy-wait serializes the writes)."""
        import multiprocessing

        path = str(tmp_path / "concurrent.db")
        count = 25
        ctx = multiprocessing.get_context("spawn")
        workers = [ctx.Process(target=_concurrent_append_worker,
                               args=(path, "hash", worker, count))
                   for worker in range(2)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        records = SQLiteResultStore(path).load("hash")
        assert len(records) == 2 * count
        seen = {(r.rows[0]["worker"], r.rows[0]["index"]) for r in records}
        assert seen == {(w, i) for w in range(2) for i in range(count)}

    def test_sqlite_run_campaign_pool_and_resume(self, tmp_path):
        """The multiprocessing campaign pool writes through the SQLite store
        and a rerun resumes every task from it (the CI smoke, in-suite)."""
        spec = small_spec()
        store = SQLiteResultStore(str(tmp_path / "campaign.db"))
        first = run_campaign(spec, store=store, jobs=2)
        assert first.executed == 2
        resumed = run_campaign(spec, store=store, jobs=1)
        assert resumed.executed == 0 and resumed.skipped == 2
        serial = run_campaign(spec, store=None, jobs=1)
        def body(result):
            return deterministic_report(result).split("\n\n", 1)[1]
        assert body(resumed) == body(serial)

    def test_jsonl_compact_preserves_corrupt_line_semantics(self, tmp_path):
        """Compacting a JSONL store with a crashed-writer trailing line drops
        the corrupt line (its task re-runs either way) and keeps the parseable
        records byte-identical."""
        spec = small_spec()
        tasks = spec.expand()
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(spec, tasks[0]))
        store.append(make_record(spec, tasks[1]))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "x", "trunc')  # crashed writer
        before = store.load()
        store.compact()
        content = open(path, encoding="utf-8").read()
        assert "trunc" not in content
        assert store.load() == before


class TestExecutor:
    def test_serial_and_parallel_reports_identical(self, tmp_path):
        spec = small_spec()
        serial = run_campaign(spec, store=None, jobs=1)
        parallel = run_campaign(spec, store=ResultStore(tmp_path / "p.jsonl"), jobs=2)
        assert serial.executed == parallel.executed == 2
        # Metric rows are bit-identical backend to backend...
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.task_id == b.task_id
            assert a.rows == b.rows
            assert a.notes == b.notes
        # ...and so is the aggregate report (minus wall-time notes).
        assert deterministic_report(serial) == deterministic_report(parallel)
        # The parallel run's store records survive a JSON roundtrip unchanged:
        # the resumed report matches the serial one below the campaign header
        # (whose executed/resumed counts legitimately differ).
        resumed = run_campaign(spec, store=ResultStore(tmp_path / "p.jsonl"), jobs=1)
        assert resumed.executed == 0 and resumed.skipped == 2
        def body(result):
            return deterministic_report(result).split("\n\n", 1)[1]
        assert body(resumed) == body(serial)

    def test_resume_runs_only_missing_tasks(self, tmp_path):
        spec = small_spec(replicates=4)
        tasks = spec.expand()
        store = ResultStore(tmp_path / "store.jsonl")
        for task in tasks[:2]:
            store.append(make_record(spec, task))
        result = run_campaign(spec, store=store, jobs=1)
        assert result.executed == 2 and result.skipped == 2
        by_id = {o.task_id: o for o in result.outcomes}
        for task in tasks[:2]:
            assert by_id[task.task_id].from_store
            assert by_id[task.task_id].rows == [{"metric": 1.0}]
        for task in tasks[2:]:
            assert not by_id[task.task_id].from_store
            assert by_id[task.task_id].rows  # really executed
        # The store now covers the whole campaign.
        assert set(store.completed(spec.spec_hash())) == {t.task_id for t in tasks}

    def test_unknown_experiment_propagates(self):
        spec = CampaignSpec(name="x", experiments=("E99",))
        with pytest.raises(KeyError):
            run_campaign(spec, store=None, jobs=1)

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_campaign(small_spec(), jobs=0)

    def test_execute_task_applies_trace_cap(self):
        from repro.sim.trace import TraceRecorder
        spec = small_spec(max_trace_records=10)
        execute_task(spec.expand()[0], max_trace_records=spec.max_trace_records)
        # The cap is scoped to the task: the global default is restored after.
        assert TraceRecorder.default_max_records is None
        assert TraceRecorder().max_records is None


class TestFailurePolicy:
    """Per-task timeout + bounded retries -> structured failure rows."""

    def test_policy_fields_validate_and_hash(self):
        base = small_spec()
        assert small_spec(task_timeout=None, task_retries=0).spec_hash() == base.spec_hash()
        assert small_spec(task_timeout=30.0).spec_hash() != base.spec_hash()
        assert small_spec(task_retries=2).spec_hash() != base.spec_hash()
        with pytest.raises(ValueError):
            small_spec(task_timeout=0.0)
        with pytest.raises(ValueError):
            small_spec(task_retries=-1)

    def test_crash_retries_then_records_failure_row(self, monkeypatch):
        import repro.experiments.suite as suite
        calls = []

        def explode(*args, **kwargs):
            calls.append(1)
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(suite, "run_experiment", explode)
        task = small_spec().expand()[0]
        outcome = execute_task(task, retries=2)
        assert len(calls) == 3  # 1 attempt + 2 retries
        assert len(outcome.rows) == 1
        row = outcome.rows[0]
        assert row["status"] == "failed" and row["failure"] == "RuntimeError"
        assert row["attempts"] == 3 and "synthetic crash" in row["error"]
        assert outcome.attempts == 3
        assert outcome.task_id == task.task_id and outcome.seed == task.seed

    def test_retry_recovers_from_transient_crash(self, monkeypatch):
        import repro.experiments.suite as suite
        real = suite.run_experiment
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                raise OSError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(suite, "run_experiment", flaky)
        task = small_spec().expand()[0]
        outcome = execute_task(task, retries=1)
        reference = execute_task(task)  # later calls pass straight through
        assert len(calls) == 3
        # A successful retry is bit-identical to a clean first attempt: every
        # attempt restarts from the task's derived seed.
        assert outcome.rows == reference.rows
        assert outcome.notes == reference.notes
        # The retry is visible in the attempt count (the CLI's final summary
        # line reports such tasks as retried) without perturbing the rows.
        assert outcome.attempts == 2
        assert reference.attempts == 1

    def test_timeout_aborts_attempt(self, monkeypatch):
        import time as time_module

        import repro.experiments.suite as suite

        def hang(*args, **kwargs):
            time_module.sleep(60.0)

        monkeypatch.setattr(suite, "run_experiment", hang)
        task = small_spec().expand()[0]
        start = time_module.perf_counter()
        outcome = execute_task(task, timeout=0.2, retries=1)
        elapsed = time_module.perf_counter() - start
        assert elapsed < 5.0  # two 0.2s budgets, not two 60s sleeps
        row = outcome.rows[0]
        assert row["status"] == "failed" and row["failure"] == "timeout"
        assert row["attempts"] == 2

    def test_failed_task_does_not_kill_the_campaign(self, tmp_path, monkeypatch):
        import repro.experiments.suite as suite
        real = suite.run_experiment

        # Fail exactly the first replicate (deterministic by derived seed).
        spec = small_spec(task_retries=0)
        doomed_seed = spec.expand()[0].seed

        def selective(experiment_id, *args, **kwargs):
            if kwargs.get("seed") == doomed_seed:
                raise RuntimeError("doomed replicate")
            return real(experiment_id, *args, **kwargs)

        monkeypatch.setattr(suite, "run_experiment", selective)
        store = ResultStore(tmp_path / "fail.jsonl")
        result = run_campaign(spec, store=store, jobs=1)
        assert result.executed == 2
        failed, ok = result.outcomes
        assert failed.rows[0]["status"] == "failed"
        assert ok.rows and "status" not in ok.rows[0]
        # The failure row is persisted, resumes like any record, and the
        # report renders without special-casing.
        resumed = run_campaign(spec, store=store, jobs=1)
        assert resumed.executed == 0 and resumed.skipped == 2
        assert resumed.outcomes[0].rows == failed.rows
        report = deterministic_report(result)
        assert "FAILED after 1 attempt(s)" in report
        # The failed *first* replicate must not mislabel the block header:
        # the surviving replicate's real description wins.
        assert "E6 (failed) ==" not in report
        assert ok.description in report

    def test_raising_task_restores_sigalrm_state(self, monkeypatch):
        """A task that raises mid-timer must not leak handler or armed timer.

        Restoration is try/finally in ``_attempt_deadline``: after a failing
        attempt (plus its retry) the previous SIGALRM handler is back in
        place and the interval timer is disarmed, so the next attempt's
        retry accounting cannot be corrupted by a stale alarm.
        """
        import signal

        import repro.experiments.suite as suite

        def sentinel_handler(signum, frame):  # pragma: no cover - never fired
            raise AssertionError("stale alarm leaked into later code")

        previous = signal.signal(signal.SIGALRM, sentinel_handler)
        try:
            def explode(*args, **kwargs):
                raise RuntimeError("boom mid-timer")

            monkeypatch.setattr(suite, "run_experiment", explode)
            task = small_spec().expand()[0]
            outcome = execute_task(task, timeout=30.0, retries=1)
            assert outcome.rows[0]["status"] == "failed"
            assert outcome.rows[0]["failure"] == "RuntimeError"
            # Handler restored to ours, timer fully disarmed.
            assert signal.getsignal(signal.SIGALRM) is sentinel_handler
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_deadline_restores_handler_when_body_raises(self):
        import signal

        from repro.campaign.executor import _attempt_deadline

        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(ValueError):
            with _attempt_deadline(30.0):
                raise ValueError("mid-timer failure")
        assert signal.getsignal(signal.SIGALRM) is before
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_timeout_disabled_off_main_thread(self, monkeypatch):
        """A worker thread cannot use SIGALRM; tasks run undeadlined, not failed."""
        import threading

        results = []

        def in_thread():
            task = small_spec().expand()[0]
            results.append(execute_task(task, timeout=30.0))

        worker = threading.Thread(target=in_thread)
        worker.start()
        worker.join()
        (outcome,) = results
        assert outcome.rows and "status" not in outcome.rows[0]  # really ran


class TestProgressStreaming:
    def test_progress_counts_fresh_and_resumed_tasks(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "progress.jsonl")
        seen = []
        run_campaign(spec, store=store, jobs=1, progress=seen.append)
        assert [o.from_store for o in seen] == [False, False]
        seen.clear()
        run_campaign(spec, store=store, jobs=1, progress=seen.append)
        assert [o.from_store for o in seen] == [True, True]
        assert [o.task_id for o in seen] == [t.task_id for t in spec.expand()]

    def test_cli_progress_streams_to_stderr_only(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--seeds", "2", "--progress"]) == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.err.splitlines() if line.startswith("[")]
        assert lines[0].startswith("[1/2] E6/r0 (")
        assert lines[1].startswith("[2/2] E6/r1 (")
        assert "[1/2]" not in captured.out  # stdout report stays clean

    def test_cli_without_progress_is_silent(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--seeds", "2"]) == 0
        assert "[1/2]" not in capsys.readouterr().err


class TestAggregation:
    def test_column_stats(self):
        stats = column_stats([1.0, 3.0, None, True, "text"])
        assert stats.count == 2
        assert stats.mean == 2.0 and stats.std == 1.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert column_stats([None, "x", True]) is None

    def test_column_stats_tolerates_non_finite_values(self):
        # Some metrics are legitimately inf (diameter of a momentarily
        # disconnected group); aggregation must not crash on them.
        stats = column_stats([2.0, float("inf")])
        assert stats.mean == float("inf") and stats.max == float("inf")
        assert stats.std != stats.std  # NaN
        assert stats.min == 2.0

    def test_aggregate_metrics_groups_and_drops(self):
        rows = [
            {"n": 5, "seed": 1, "latency": 2.0},
            {"n": 5, "seed": 2, "latency": 4.0},
            {"n": 9, "seed": 1, "latency": 10.0},
        ]
        stats = aggregate_metrics(rows, group_by=("n",), drop=("seed",))
        assert list(stats) == [(5,), (9,)]
        assert stats[(5,)]["latency"].mean == 3.0
        assert stats[(5,)]["latency"].min == 2.0
        assert stats[(9,)]["latency"].count == 1
        assert "seed" not in stats[(5,)] and "n" not in stats[(5,)]


class TestCampaignCli:
    def test_cli_campaign_mode_resumes(self, tmp_path, capsys):
        from repro.experiments.cli import main
        store_path = str(tmp_path / "cli-store.jsonl")
        assert main(["E6", "--seeds", "2", "--jobs", "1", "--store", store_path]) == 0
        first = capsys.readouterr().out
        assert "executed 2, resumed 0" in first
        assert "== E6 —" in first
        assert main(["E6", "--seeds", "2", "--jobs", "1", "--store", store_path]) == 0
        second = capsys.readouterr().out
        assert "executed 0, resumed 2" in second
        # Everything below the campaign header is reproducible across runs.
        def strip(text):
            return [line for line in text.splitlines()
                    if not line.startswith(("campaign ", "note: wall time"))]
        assert strip(first) == strip(second)

    def test_cli_campaign_unknown_experiment(self, capsys):
        from repro.experiments.cli import main
        assert main(["E99", "--seeds", "2"]) == 2

    def test_cli_parser_campaign_defaults(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args([])
        assert args.seeds == 1 and args.jobs == 1 and args.store is None


class TestScenarioAxis:
    def scenario_spec(self, **overrides):
        from repro.scenarios import ScenarioSpec
        params = dict(name="grid", experiments=("E6",), replicates=2, root_seed=7,
                      scenarios=(ScenarioSpec.create("static_random", n=10),
                                 ScenarioSpec.create("static_random", n=14)))
        params.update(overrides)
        return CampaignSpec(**params)

    def test_expansion_covers_experiment_x_scenario_x_replicate(self):
        spec = self.scenario_spec()
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == [
            "E6/static_random[n=10]/r0", "E6/static_random[n=10]/r1",
            "E6/static_random[n=14]/r0", "E6/static_random[n=14]/r1"]
        assert len({t.seed for t in tasks}) == len(tasks)
        assert tasks == spec.expand()

    def test_scenario_less_spec_dict_omits_axis(self):
        # The hash input of a scenario-less campaign is identical to the
        # pre-axis code, so existing stores keep resuming.
        assert "scenarios" not in small_spec().as_dict()
        assert "scenarios" in self.scenario_spec().as_dict()

    def test_scenario_less_task_ids_and_seeds_unchanged(self):
        # Adding the axis must not have re-seeded or re-keyed historical grids.
        spec = small_spec()
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == ["E6/r0", "E6/r1"]
        from repro.sim.randomness import derive_seed
        assert tasks[0].seed == derive_seed(7, "campaign/E6/rep0")

    def test_scenario_cells_get_distinct_seed_streams(self):
        spec = self.scenario_spec()
        seeds_a = [t.seed for t in spec.expand() if "n=10" in t.task_id]
        seeds_b = [t.seed for t in spec.expand() if "n=14" in t.task_id]
        assert set(seeds_a).isdisjoint(seeds_b)

    def test_spec_hash_sensitive_to_scenario_axis(self):
        from repro.scenarios import ScenarioSpec
        base = self.scenario_spec()
        assert base.spec_hash() == self.scenario_spec().spec_hash()
        variant = self.scenario_spec(
            scenarios=(ScenarioSpec.create("static_random", n=10),))
        assert variant.spec_hash() != base.spec_hash()
        assert small_spec().spec_hash() != base.spec_hash()

    def test_duplicate_scenario_cells_rejected(self):
        from repro.scenarios import ScenarioSpec
        with pytest.raises(ValueError, match="duplicate scenario"):
            self.scenario_spec(scenarios=(ScenarioSpec.create("static_random", n=10),
                                          ScenarioSpec.create("static_random", n=10)))

    def test_equivalent_cells_normalize_and_duplicate(self):
        # n=10 and n=10.0 build the identical workload; the campaign must not
        # run it twice disguised as a sweep.
        from repro.scenarios import ScenarioSpec
        with pytest.raises(ValueError, match="duplicate scenario"):
            self.scenario_spec(scenarios=(ScenarioSpec.create("static_random", n=10),
                                          ScenarioSpec.create("static_random", n=10.0)))

    def test_cells_validated_at_spec_creation(self):
        from repro.scenarios import ScenarioSpec
        with pytest.raises(KeyError, match="unknown scenario"):
            self.scenario_spec(scenarios=(ScenarioSpec.create("no_such"),))
        with pytest.raises(ValueError, match="unknown parameter"):
            self.scenario_spec(scenarios=(ScenarioSpec.create("static_random", bogus=1),))

    def test_scenarios_accept_dict_form(self):
        from repro.scenarios import ScenarioSpec
        spec_obj = ScenarioSpec.create("static_random", n=10)
        by_dict = self.scenario_spec(scenarios=(spec_obj.as_dict(),))
        by_spec = self.scenario_spec(scenarios=(spec_obj,))
        assert by_dict.spec_hash() == by_spec.spec_hash()
        assert by_dict.scenarios == (spec_obj,)

    def test_serial_parallel_and_resume_with_scenario_axis(self, tmp_path):
        spec = self.scenario_spec()
        serial = run_campaign(spec, store=None, jobs=1)
        parallel = run_campaign(spec, store=ResultStore(tmp_path / "s.jsonl"), jobs=2)
        assert deterministic_report(serial) == deterministic_report(parallel)
        resumed = run_campaign(spec, store=ResultStore(tmp_path / "s.jsonl"), jobs=1)
        assert resumed.executed == 0 and resumed.skipped == 4
        assert all(o.from_store for o in resumed.outcomes)
        # The scenario survives the store roundtrip attached to each outcome.
        assert {o.scenario_label for o in resumed.outcomes} == {
            "static_random[n=10]", "static_random[n=14]"}

    def test_report_renders_one_block_per_scenario_cell(self):
        spec = self.scenario_spec(replicates=1)
        result = run_campaign(spec, jobs=1)
        report = deterministic_report(result)
        assert "scenario axis (2 cells)" in report
        assert "(scenario static_random[n=10], 1 seeds)" in report
        assert "(scenario static_random[n=14], 1 seeds)" in report

    def test_outcomes_for_filters_by_scenario_label(self):
        spec = self.scenario_spec(replicates=1)
        result = run_campaign(spec, jobs=1)
        assert len(result.outcomes_for("E6", "static_random[n=10]")) == 1
        assert result.outcomes_for("E6") == []  # no default cell in this campaign


class TestScenarioCli:
    def test_cli_sweep_expands_and_resumes(self, tmp_path, capsys):
        from repro.experiments.cli import main
        store_path = str(tmp_path / "sweep.jsonl")
        argv = ["E6", "--scenario", "static_random", "--set", "area=200",
                "--sweep", "n=8,10", "--seeds", "2", "--jobs", "1",
                "--store", store_path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "executed 4, resumed 0" in first
        assert "scenario axis (2 cells)" in first
        assert "static_random[area=200.0,n=8]" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed 0, resumed 4" in second
        def strip(text):
            return [line for line in text.splitlines()
                    if not line.startswith(("campaign ", "note: wall time"))]
        assert strip(first) == strip(second)

    def test_cli_sweep_alone_enters_campaign_mode(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--scenario", "static_random", "--sweep", "n=8,10"]) == 0
        out = capsys.readouterr().out
        assert "scenario axis (2 cells)" in out

    def test_cli_single_run_scenario_override(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--scenario", "static_random", "--set", "n=8"]) == 0
        out = capsys.readouterr().out
        assert "== E6 —" in out and "campaign" not in out

    def test_cli_rejects_bad_scenario_usage(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--set", "n=8"]) == 2
        assert "--set/--sweep require --scenario" in capsys.readouterr().err
        assert main(["E6", "--scenario", "no_such_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert main(["E6", "--scenario", "static_random", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err
        assert main(["E6", "--scenario", "static_random", "--set", "n=many"]) == 2
        assert "expects kind" in capsys.readouterr().err
        assert main(["E6", "--scenario", "static_random", "--sweep", "n"]) == 2
        assert "PARAM=VALUE" in capsys.readouterr().err

    def test_cli_list_scenarios(self, capsys):
        from repro.experiments.cli import main
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "manhattan_grid" in out and "flash_crowd" in out
        assert "static_random" in out


class TestPolicyFlagValidation:
    def test_cli_rejects_bad_timeout_cleanly(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--task-timeout", "0"]) == 2
        assert "task_timeout" in capsys.readouterr().err

    def test_cli_rejects_negative_retries_cleanly(self, capsys):
        from repro.experiments.cli import main
        assert main(["E6", "--task-retries", "-3"]) == 2
        assert "task_retries" in capsys.readouterr().err


class TestCampaignExitCodes:
    def test_cli_exits_nonzero_when_tasks_fail_permanently(self, capsys, monkeypatch):
        import repro.experiments.suite as suite
        from repro.experiments.cli import main

        def explode(*args, **kwargs):
            raise RuntimeError("permanent crash")

        monkeypatch.setattr(suite, "run_experiment", explode)
        assert main(["E6", "--seeds", "2"]) == 1
        captured = capsys.readouterr()
        assert "FAILED after 1 attempt(s)" in captured.out
        assert "2 task(s) failed permanently" in captured.err

    def test_internal_valueerror_keeps_its_traceback(self, monkeypatch):
        import repro.experiments.cli as cli
        from repro.experiments.cli import main

        def explode(*args, **kwargs):
            raise ValueError("internal bug, not bad input")

        # The single-run path binds run_experiment at import time.
        monkeypatch.setattr(cli, "run_experiment", explode)
        # Single-run path: the crash must propagate, not exit 2 silently.
        with pytest.raises(ValueError, match="internal bug"):
            main(["E6"])

    def test_attempt_finishing_under_budget_survives_late_alarm(self, monkeypatch):
        """Disarm race: a timeout signal landing after the experiment returned
        (but before the deadline disarms) must not discard the result."""
        import repro.campaign.executor as executor
        from repro.campaign.executor import TaskTimeoutError

        class AlarmInEpilogue:
            """Deadline whose signal fires in the sliver before disarm."""

            def __init__(self, seconds):
                pass

            def __enter__(self):
                return self

            def __exit__(self, exc_type, exc, tb):
                if exc_type is None:  # body completed; simulate the late fire
                    raise TaskTimeoutError("late alarm")

        monkeypatch.setattr(executor, "_attempt_deadline", AlarmInEpilogue)
        task = small_spec().expand()[0]
        outcome = execute_task(task, timeout=300.0)
        assert outcome.rows and "status" not in outcome.rows[0]  # kept
        reference = execute_task(task)
        assert outcome.rows == reference.rows
        # A timeout *during* the body (result never bound) still fails.
        import repro.experiments.suite as suite

        def hang_forever(*args, **kwargs):
            raise TaskTimeoutError("boom")

        monkeypatch.setattr(suite, "run_experiment", hang_forever)
        failed = execute_task(task, timeout=300.0)
        assert failed.rows[0]["failure"] == "timeout"


class TestTaskCount:
    def test_task_count_matches_expansion(self):
        from repro.scenarios import ScenarioSpec
        for spec in (small_spec(),
                     small_spec(replicates=5),
                     small_spec(experiments=("E1", "E6"), replicates=3,
                                scenarios=(ScenarioSpec.create("static_random", n=8),
                                           ScenarioSpec.create("static_random", n=10)))):
            assert spec.task_count() == len(spec.expand())
