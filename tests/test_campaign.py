"""Tests for the campaign orchestrator: spec, store, executors, aggregation."""

import json

import pytest

from repro.campaign import (CampaignSpec, ResultStore, TaskRecord, aggregate_metrics,
                            column_stats, deterministic_report, run_campaign)
from repro.campaign.executor import execute_task


def small_spec(**overrides):
    """The cheapest real campaign: E6 quick runs in about a second."""
    params = dict(name="test", experiments=("E6",), replicates=2, root_seed=7)
    params.update(overrides)
    return CampaignSpec(**params)


class TestCampaignSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = CampaignSpec(name="x", experiments=("E1", "E3"), replicates=3, root_seed=5)
        tasks = spec.expand()
        assert [t.task_id for t in tasks] == [
            "E1/r0", "E1/r1", "E1/r2", "E3/r0", "E3/r1", "E3/r2"]
        assert tasks == spec.expand()
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_seeds_derive_from_root_seed(self):
        a = CampaignSpec(name="x", experiments=("E1",), replicates=2, root_seed=1)
        b = CampaignSpec(name="x", experiments=("E1",), replicates=2, root_seed=2)
        assert [t.seed for t in a.expand()] != [t.seed for t in b.expand()]
        assert a.task_seed("E1", 0) == a.expand()[0].seed

    def test_spec_hash_sensitive_to_every_field(self):
        base = small_spec()
        assert base.spec_hash() == small_spec().spec_hash()
        for variant in (small_spec(name="other"), small_spec(replicates=3),
                        small_spec(root_seed=8), small_spec(quick=False),
                        small_spec(experiments=("E6", "E8")),
                        small_spec(max_trace_records=None)):
            assert variant.spec_hash() != base.spec_hash()

    def test_experiment_ids_normalized_to_upper(self):
        spec = CampaignSpec(name="x", experiments=("e2",))
        assert spec.experiments == ("E2",)

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=())
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=("E1",), replicates=0)
        with pytest.raises(ValueError):
            CampaignSpec(name="x", experiments=("E1",), max_trace_records=-1)


def make_record(spec, task, rows=None):
    return TaskRecord(
        spec_hash=spec.spec_hash(), task_id=task.task_id, experiment=task.experiment,
        replicate=task.replicate, seed=task.seed, quick=task.quick,
        description="prefilled", wall_time=0.5,
        rows=rows if rows is not None else [{"metric": 1.0}], notes=["fake"])


class TestResultStore:
    def test_append_load_roundtrip(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec, task))
        records = store.load()
        assert len(records) == 1
        assert records[0].task_id == task.task_id
        assert records[0].rows == [{"metric": 1.0}]

    def test_load_skips_blank_and_corrupt_lines(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(make_record(spec, task))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n{not json\n")
            handle.write('{"task_id": "missing-keys"}\n')
            handle.write('{"spec_hash": "x", "trunc')  # crashed writer
        assert len(store.load()) == 1

    def test_completed_namespaced_by_spec_hash(self, tmp_path):
        spec_a, spec_b = small_spec(), small_spec(root_seed=99)
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec_a, spec_a.expand()[0]))
        assert set(store.completed(spec_a.spec_hash())) == {"E6/r0"}
        assert store.completed(spec_b.spec_hash()) == {}

    def test_duplicate_task_last_wins(self, tmp_path):
        spec = small_spec()
        task = spec.expand()[0]
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(make_record(spec, task, rows=[{"metric": 1.0}]))
        store.append(make_record(spec, task, rows=[{"metric": 2.0}]))
        assert store.completed(spec.spec_hash())[task.task_id].rows == [{"metric": 2.0}]

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == []


class TestExecutor:
    def test_serial_and_parallel_reports_identical(self, tmp_path):
        spec = small_spec()
        serial = run_campaign(spec, store=None, jobs=1)
        parallel = run_campaign(spec, store=ResultStore(tmp_path / "p.jsonl"), jobs=2)
        assert serial.executed == parallel.executed == 2
        # Metric rows are bit-identical backend to backend...
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.task_id == b.task_id
            assert a.rows == b.rows
            assert a.notes == b.notes
        # ...and so is the aggregate report (minus wall-time notes).
        assert deterministic_report(serial) == deterministic_report(parallel)
        # The parallel run's store records survive a JSON roundtrip unchanged:
        # the resumed report matches the serial one below the campaign header
        # (whose executed/resumed counts legitimately differ).
        resumed = run_campaign(spec, store=ResultStore(tmp_path / "p.jsonl"), jobs=1)
        assert resumed.executed == 0 and resumed.skipped == 2
        body = lambda result: deterministic_report(result).split("\n\n", 1)[1]
        assert body(resumed) == body(serial)

    def test_resume_runs_only_missing_tasks(self, tmp_path):
        spec = small_spec(replicates=4)
        tasks = spec.expand()
        store = ResultStore(tmp_path / "store.jsonl")
        for task in tasks[:2]:
            store.append(make_record(spec, task))
        result = run_campaign(spec, store=store, jobs=1)
        assert result.executed == 2 and result.skipped == 2
        by_id = {o.task_id: o for o in result.outcomes}
        for task in tasks[:2]:
            assert by_id[task.task_id].from_store
            assert by_id[task.task_id].rows == [{"metric": 1.0}]
        for task in tasks[2:]:
            assert not by_id[task.task_id].from_store
            assert by_id[task.task_id].rows  # really executed
        # The store now covers the whole campaign.
        assert set(store.completed(spec.spec_hash())) == {t.task_id for t in tasks}

    def test_unknown_experiment_propagates(self):
        spec = CampaignSpec(name="x", experiments=("E99",))
        with pytest.raises(KeyError):
            run_campaign(spec, store=None, jobs=1)

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_campaign(small_spec(), jobs=0)

    def test_execute_task_applies_trace_cap(self):
        from repro.sim.trace import TraceRecorder
        spec = small_spec(max_trace_records=10)
        execute_task(spec.expand()[0], max_trace_records=spec.max_trace_records)
        # The cap is scoped to the task: the global default is restored after.
        assert TraceRecorder.default_max_records is None
        assert TraceRecorder().max_records is None


class TestAggregation:
    def test_column_stats(self):
        stats = column_stats([1.0, 3.0, None, True, "text"])
        assert stats.count == 2
        assert stats.mean == 2.0 and stats.std == 1.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert column_stats([None, "x", True]) is None

    def test_aggregate_metrics_groups_and_drops(self):
        rows = [
            {"n": 5, "seed": 1, "latency": 2.0},
            {"n": 5, "seed": 2, "latency": 4.0},
            {"n": 9, "seed": 1, "latency": 10.0},
        ]
        stats = aggregate_metrics(rows, group_by=("n",), drop=("seed",))
        assert list(stats) == [(5,), (9,)]
        assert stats[(5,)]["latency"].mean == 3.0
        assert stats[(5,)]["latency"].min == 2.0
        assert stats[(9,)]["latency"].count == 1
        assert "seed" not in stats[(5,)] and "n" not in stats[(5,)]


class TestCampaignCli:
    def test_cli_campaign_mode_resumes(self, tmp_path, capsys):
        from repro.experiments.cli import main
        store_path = str(tmp_path / "cli-store.jsonl")
        assert main(["E6", "--seeds", "2", "--jobs", "1", "--store", store_path]) == 0
        first = capsys.readouterr().out
        assert "executed 2, resumed 0" in first
        assert "== E6 —" in first
        assert main(["E6", "--seeds", "2", "--jobs", "1", "--store", store_path]) == 0
        second = capsys.readouterr().out
        assert "executed 0, resumed 2" in second
        # Everything below the campaign header is reproducible across runs.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith(("campaign ", "note: wall time"))]
        assert strip(first) == strip(second)

    def test_cli_campaign_unknown_experiment(self, capsys):
        from repro.experiments.cli import main
        assert main(["E99", "--seeds", "2"]) == 2

    def test_cli_parser_campaign_defaults(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args([])
        assert args.seeds == 1 and args.jobs == 1 and args.store is None
