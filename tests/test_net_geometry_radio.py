"""Unit tests for geometry helpers and radio models."""

import numpy as np
import pytest

from repro.net.geometry import (bounding_box, clamp_to_area, distance, distances_from,
                                grid_positions, line_positions, pairwise_distances,
                                random_positions)
from repro.net.radio import AsymmetricRangeRadio, ProbabilisticDiskRadio, UnitDiskRadio


class TestGeometry:
    def test_distance(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_distances_from(self):
        out = distances_from((0, 0), {"a": (1, 0), "b": (0, 2)})
        assert out == {"a": pytest.approx(1.0), "b": pytest.approx(2.0)}

    def test_pairwise_distances_symmetric_keys(self):
        out = pairwise_distances({"a": (0, 0), "b": (3, 4)})
        assert len(out) == 1
        assert list(out.values())[0] == pytest.approx(5.0)

    def test_pairwise_distances_int_keys_sorted_numerically(self):
        # Regression: repr-based pair ordering gave keys like (10, 2) for int
        # ids >= 10 ("10" < "2" lexicographically), breaking lookups that
        # sort numerically.  Keys now put the smaller member first under the
        # ids' own ordering.
        out = pairwise_distances({2: (0, 0), 10: (3, 4), 100: (0, 8)})
        assert set(out) == {(2, 10), (2, 100), (10, 100)}
        assert out[(2, 10)] == pytest.approx(5.0)
        assert out[(2, 100)] == pytest.approx(8.0)
        assert out[(10, 100)] == pytest.approx(5.0)

    def test_pairwise_distances_uncomparable_ids_fall_back_to_repr(self):
        # Mixed-type ids that don't support "<" still get canonical keys.
        out = pairwise_distances({"a": (0, 0), 3: (3, 4)})
        assert len(out) == 1
        key = next(iter(out))
        assert set(key) == {"a", 3}
        assert out[key] == pytest.approx(5.0)
        # Same mapping, reversed insertion order: identical key.
        again = pairwise_distances({3: (3, 4), "a": (0, 0)})
        assert next(iter(again)) == key

    def test_random_positions_within_area(self):
        rng = np.random.default_rng(0)
        positions = random_positions(range(50), (100.0, 60.0), rng)
        assert len(positions) == 50
        assert all(0 <= x <= 100 and 0 <= y <= 60 for x, y in positions.values())

    def test_random_positions_reproducible(self):
        a = random_positions(range(5), (10, 10), np.random.default_rng(3))
        b = random_positions(range(5), (10, 10), np.random.default_rng(3))
        assert a == b

    def test_grid_positions(self):
        positions = grid_positions(range(6), spacing=2.0, columns=3)
        assert positions[0] == (0.0, 0.0)
        assert positions[4] == (2.0, 2.0)
        with pytest.raises(ValueError):
            grid_positions(range(3), spacing=1.0, columns=0)

    def test_line_positions(self):
        positions = line_positions(["a", "b"], spacing=5.0, origin=(1.0, 2.0))
        assert positions["b"] == (6.0, 2.0)

    def test_clamp_and_bounding_box(self):
        assert clamp_to_area((-5, 200), (100, 100)) == (0.0, 100.0)
        assert bounding_box({"a": (1, 2), "b": (5, -1)}) == ((1, -1), (5, 2))
        assert bounding_box({}) == ((0.0, 0.0), (0.0, 0.0))


class TestUnitDiskRadio:
    def test_within_and_beyond_range(self):
        radio = UnitDiskRadio(10.0)
        assert radio.in_vicinity("a", "b", (0, 0), (0, 10))
        assert not radio.in_vicinity("a", "b", (0, 0), (0, 10.1))

    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0)


class TestAsymmetricRadio:
    def test_per_node_ranges_create_asymmetric_links(self):
        radio = AsymmetricRangeRadio(default_range=10.0, ranges={"big": 50.0})
        assert radio.in_vicinity("big", "small", (0, 0), (30, 0))
        assert not radio.in_vicinity("small", "big", (30, 0), (0, 0))

    def test_set_range(self):
        radio = AsymmetricRangeRadio(default_range=10.0)
        radio.set_range("a", 20.0)
        assert radio.range_of("a") == 20.0
        with pytest.raises(ValueError):
            radio.set_range("a", -1.0)


class TestProbabilisticRadio:
    def test_inner_range_always_delivers(self):
        radio = ProbabilisticDiskRadio(10.0, 20.0, 0.0, rng=np.random.default_rng(0))
        assert radio.in_vicinity("a", "b", (0, 0), (5, 0))
        assert not radio.in_vicinity("a", "b", (0, 0), (15, 0))
        assert not radio.in_vicinity("a", "b", (0, 0), (25, 0))

    def test_band_probability(self):
        radio = ProbabilisticDiskRadio(10.0, 20.0, 1.0, rng=np.random.default_rng(0))
        assert radio.in_vicinity("a", "b", (0, 0), (15, 0))

    def test_link_exists_uses_inner_range(self):
        radio = ProbabilisticDiskRadio(10.0, 20.0, 1.0)
        assert radio.link_exists("a", "b", (0, 0), (9, 0))
        assert not radio.link_exists("a", "b", (0, 0), (15, 0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProbabilisticDiskRadio(0, 10, 0.5)
        with pytest.raises(ValueError):
            ProbabilisticDiskRadio(10, 5, 0.5)
        with pytest.raises(ValueError):
            ProbabilisticDiskRadio(5, 10, 1.5)
