"""RNG stream-equivalence of batched vs scalar channel decisions.

``ChannelModel.decide_batch`` is the broadcast hot path; its contract is that
the batch is indistinguishable from the scalar ``decide`` loop: same delivered
set, same delays, same drop reasons, same per-channel counters — and the RNG
left in the *exact same state*, so everything downstream of a broadcast
replays bit-identically whichever path the network took.  These tests run
both paths from identical RNG states across every stock channel model, many
seeds and every delay/loss configuration class (including the
interleaved-draw configuration that must fall back to the scalar loop).
"""

import copy

import numpy as np
import pytest

from repro.net.channel import (BatchDecisions, CollisionChannel, LossyChannel,
                               PerfectChannel)

SEEDS = [0, 1, 7, 123, 4242]

#: (loss_probability, min_delay, max_delay) covering every vectorization class:
#: no-RNG, uniform-only, random-only, and the interleaved scalar fallback.
LOSSY_CONFIGS = [
    (0.0, 0.0, 0.0),     # no draws at all
    (0.0, 0.05, 0.05),   # constant delay, no draws
    (0.0, 0.01, 0.30),   # uniform(n) only
    (0.25, 0.0, 0.0),    # random(n) only, zero delay
    (0.25, 0.2, 0.2),    # random(n) only, constant delay
    (0.25, 0.01, 0.30),  # interleaved -> scalar fallback
    (1.0, 0.0, 0.5),     # everything dropped
]


def scalar_reference(channel, sender, receivers, time):
    """The reference semantics: one scalar decide per receiver, in order."""
    delivered, delays, reasons = [], [], []
    for receiver in receivers:
        decision = channel.decide(sender, receiver, time)
        delivered.append(decision.delivered)
        delays.append(decision.delay)
        reasons.append(decision.reason)
    return delivered, delays, reasons


def build_pair(factory, seed):
    """Two structurally identical channels with identical RNG states."""
    a = factory(np.random.default_rng(seed))
    b = factory(np.random.default_rng(seed))
    return a, b


def assert_batch_matches(factory, seed, n_receivers=64, rounds=3):
    scalar_chan, batch_chan = build_pair(factory, seed)
    rng = np.random.default_rng(seed + 1000)
    for round_index in range(rounds):
        # Vary sender and batch size per round so collision state interacts
        # across broadcasts exactly as it would in a simulation.
        sender = f"s{round_index % 2}"
        receivers = [f"r{i}" for i in range(int(rng.integers(0, n_receivers)))]
        # Tight spacing: alternating senders land inside a CollisionChannel's
        # window, so the mixed collided/delivered merge path is exercised.
        time = round_index * 0.3
        want_delivered, want_delays, want_reasons = scalar_reference(
            scalar_chan, sender, receivers, time)
        batch = batch_chan.decide_batch(sender, receivers, time)
        assert isinstance(batch, BatchDecisions)
        assert list(batch.delivered) == want_delivered
        assert [float(d) for d in batch.delays] == want_delays
        if batch.reasons is None:
            # None promises the default pattern: ok when delivered, loss when
            # dropped — it must reconstruct the scalar reasons exactly.
            implied = ["ok" if kept else "loss" for kept in want_delivered]
            assert implied == want_reasons
        else:
            assert list(batch.reasons) == want_reasons
        assert batch.accepted() == sum(want_delivered)
    # Post-call RNG states must be bit-identical (bit_generator state dict).
    assert (scalar_chan._rng.bit_generator.state
            == batch_chan._rng.bit_generator.state)
    # Counters advanced identically on both paths.
    for attr in ("delivered", "dropped", "collisions"):
        if hasattr(scalar_chan, attr):
            assert getattr(scalar_chan, attr) == getattr(batch_chan, attr)


class TestLossyChannelBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", LOSSY_CONFIGS)
    def test_stream_equivalence(self, config, seed):
        p, lo, hi = config
        assert_batch_matches(
            lambda rng: LossyChannel(loss_probability=p, min_delay=lo,
                                     max_delay=hi, rng=rng), seed)

    def test_empty_batch_draws_nothing(self):
        channel = LossyChannel(loss_probability=0.5, rng=np.random.default_rng(3))
        before = copy.deepcopy(channel._rng.bit_generator.state)
        batch = channel.decide_batch("s", [], 0.0)
        assert list(batch.delivered) == [] and list(batch.delays) == []
        assert channel._rng.bit_generator.state == before


class TestCollisionChannelBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", LOSSY_CONFIGS)
    def test_stream_equivalence(self, config, seed):
        p, lo, hi = config
        assert_batch_matches(
            lambda rng: CollisionChannel(collision_window=0.5, loss_probability=p,
                                         min_delay=lo, max_delay=hi, rng=rng), seed)

    def test_collisions_skip_rng_like_scalar(self):
        """Collided receivers consume no randomness on either path."""
        def factory(rng):
            return CollisionChannel(collision_window=10.0, loss_probability=0.5,
                                    rng=rng)
        scalar_chan, batch_chan = build_pair(factory, 99)
        receivers = [f"r{i}" for i in range(20)]
        # First transmission seeds _last_heard; the second (different sender,
        # inside the window) collides on every receiver.
        scalar_first = scalar_reference(scalar_chan, "a", receivers, 0.0)
        batch_first = batch_chan.decide_batch("a", receivers, 0.0)
        assert list(batch_first.delivered) == scalar_first[0]
        scalar_second = scalar_reference(scalar_chan, "b", receivers, 0.1)
        batch_second = batch_chan.decide_batch("b", receivers, 0.1)
        assert not any(batch_second.delivered)
        assert list(batch_second.reasons) == scalar_second[2] == ["collision"] * 20
        assert scalar_chan.collisions == batch_chan.collisions == 20
        assert (scalar_chan._rng.bit_generator.state
                == batch_chan._rng.bit_generator.state)


class TestPerfectChannelBatch:
    @pytest.mark.parametrize("delay", [0.0, 0.25])
    def test_matches_scalar(self, delay):
        channel = PerfectChannel(delay=delay)
        receivers = ["a", "b", "c"]
        batch = channel.decide_batch("s", receivers, 1.0)
        assert list(batch.delivered) == [True, True, True]
        assert [float(d) for d in batch.delays] == [delay] * 3
        assert batch.reasons is None


class TestDefaultFallback:
    def test_base_decide_batch_is_the_scalar_loop(self):
        """A channel that only implements decide still batches correctly."""
        from repro.net.channel import ChannelDecision, ChannelModel

        class EveryOther(ChannelModel):
            def __init__(self):
                self.calls = 0

            def decide(self, sender, receiver, time):
                self.calls += 1
                if self.calls % 2:
                    return ChannelDecision(delivered=True, delay=0.1)
                return ChannelDecision(delivered=False, reason="parity")

        channel = EveryOther()
        batch = channel.decide_batch("s", ["a", "b", "c", "d"], 0.0)
        assert list(batch.delivered) == [True, False, True, False]
        assert list(batch.reasons) == ["ok", "parity", "ok", "parity"]
        assert channel.calls == 4


class TestSubclassOverrides:
    """A subclass overriding only decide() must rule both pipelines."""

    def test_lossy_subclass_decide_is_honored_in_batch(self):
        from repro.net.channel import ChannelDecision

        class EveryOtherLossy(LossyChannel):
            def __init__(self):
                super().__init__(loss_probability=0.0)
                self.calls = 0

            def decide(self, sender, receiver, time):
                self.calls += 1
                if self.calls % 2:
                    return super().decide(sender, receiver, time)
                return ChannelDecision(delivered=False, reason="custom")

        channel = EveryOtherLossy()
        batch = channel.decide_batch("s", ["a", "b", "c", "d"], 0.0)
        assert list(batch.delivered) == [True, False, True, False]
        assert list(batch.reasons) == ["ok", "custom", "ok", "custom"]
        assert channel.calls == 4  # the override really ran per receiver

    def test_perfect_subclass_decide_is_honored_in_batch(self):
        from repro.net.channel import ChannelDecision

        class FirstOnly(PerfectChannel):
            def decide(self, sender, receiver, time):
                if receiver == "a":
                    return super().decide(sender, receiver, time)
                return ChannelDecision(delivered=False, reason="custom")

        batch = FirstOnly().decide_batch("s", ["a", "b"], 0.0)
        assert list(batch.delivered) == [True, False]

    def test_collision_subclass_decide_is_honored_in_batch(self):
        from repro.net.channel import ChannelDecision

        class NeverCollides(CollisionChannel):
            def decide(self, sender, receiver, time):
                return ChannelDecision(delivered=True)

        channel = NeverCollides(collision_window=10.0)
        channel.decide_batch("a", ["r"], 0.0)
        batch = channel.decide_batch("b", ["r"], 0.1)  # would collide normally
        assert list(batch.delivered) == [True]
        assert channel.collisions == 0

    def test_draw_delay_override_forces_scalar_loop(self):
        """Overriding only _draw_delay must rule both pipelines too."""

        class ConstantPointOne(LossyChannel):
            def _draw_delay(self):
                return 0.1

        channel = ConstantPointOne(min_delay=0.0, max_delay=5.0,
                                   rng=np.random.default_rng(1))
        batch = channel.decide_batch("s", ["a", "b"], 0.0)
        assert [float(d) for d in batch.delays] == [0.1, 0.1]

        class CollidingConstant(CollisionChannel):
            def _draw_delay(self):
                return 0.2

        channel = CollidingConstant(collision_window=0.5, min_delay=0.0,
                                    max_delay=5.0, rng=np.random.default_rng(1))
        batch = channel.decide_batch("s", ["a", "b"], 0.0)
        assert [float(d) for d in batch.delays] == [0.2, 0.2]
