"""Micro-benchmarks of the protocol hot paths.

These do not correspond to a paper experiment; they track the cost of the two
operations executed on every node at every timer expiration — the ``ant``
combination of the received lists and the full ``compute()`` procedure — so
performance regressions of the core data structures are caught early.
"""

from repro.core.ancestor_list import AncestorList
from repro.core.messages import GRPMessage
from repro.core.node import GRPConfig, GRPNode


def build_neighbour_lists(fanout=8, depth=3):
    lists = []
    for neighbour in range(fanout):
        levels = [{f"n{neighbour}"}, {"v"}]
        for level in range(depth - 1):
            levels.append({f"n{neighbour}-{level}-{k}" for k in range(3)})
        lists.append(AncestorList.from_levels(levels))
    return lists


def test_ant_combination_speed(benchmark):
    lists = build_neighbour_lists()

    def combine():
        result = AncestorList.singleton("v")
        for lst in lists:
            result = result.ant(lst)
        return result

    result = benchmark(combine)
    assert "v" in result


def test_compute_speed(benchmark):
    config = GRPConfig(dmax=4)
    lists = build_neighbour_lists(fanout=8, depth=4)

    def run_compute():
        node = GRPNode("v", config)
        for lst in lists:
            sender = next(iter(lst.level_nodes(0)))
            message = GRPMessage.build(sender, lst, priorities={sender: 0})
            node.on_message(sender, message)
        node.compute()
        return node

    node = benchmark(run_compute)
    assert node.computations == 1
