"""Sharded mega-world benchmark: bit-identity plus worker scaling.

Runs one ``city_scale`` field through the sharded executor
(:mod:`repro.shard`) at increasing shard counts and checks two things:

1. **bit-identity** — every shard count must reproduce the ``shards=1``
   reference fingerprint exactly (event/message counters and post-run RNG
   states; quick mode also compares views, topology edges and the overhead
   report).  An identity failure is a correctness bug and always fails the
   benchmark, noise notwithstanding.
2. **scaling** — wall-clock time per shard count, with the multi-shard runs
   on the ``mp`` transport (one OS process per shard).  The speedup target
   (>= 3x at 8 workers, full mode) is physically impossible below 8 cores,
   so it is only *enforced* when enough cores exist; the measured value is
   recorded either way.

Quick mode (CI) shrinks the city to 2,000 nodes and keeps every run
in-process where noted; full mode runs the 100,000-node default city.

Run with ``PYTHONPATH=src python benchmarks/bench_sharded.py``; add
``--quick`` for the CI smoke grid and ``--json PATH`` for a bench-emit/v1
envelope (see ``benchmarks/_emit.py``).
"""

from __future__ import annotations

import argparse
import os
import time

import _emit

from repro.metrics.report import print_table
from repro.shard import ShardSpec, run_sharded

#: Full-mode wall budget (seconds) for the 100k-node single-shard reference
#: on one core; measured ~121 s (1.20 M events, ~9.9 k events/s) on the
#: baseline box, with headroom for slower runners.
FULL_WALL_BUDGET_S = 300.0


def bench_spec(quick: bool, shards: int) -> ShardSpec:
    """The benchmark workload at one shard count (same world throughout)."""
    if quick:
        params = {"n": 2_000, "area": 4_000.0, "hotspot_sigma": 300.0}
        duration = 2.0
    else:
        params = {"n": 100_000}
        duration = 1.0
    # Full mode skips the fingerprint extras (views over 100k nodes, payload
    # estimates); counters + RNG states still pin down bit-identity.
    return ShardSpec.create("city_scale", params=params, seed=2024,
                            duration=duration, shards=shards,
                            fingerprint=quick)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small city + in-process transport for CI smoke runs")
    parser.add_argument("--shards", type=int, nargs="*", default=None,
                        help="shard counts to benchmark "
                             "(default: 1 2 4 quick, 1 8 full)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write a bench-emit/v1 envelope "
                             "(see benchmarks/_emit.py)")
    args = parser.parse_args()

    shard_counts = args.shards or ([1, 2, 4] if args.quick else [1, 8])
    if 1 not in shard_counts:
        shard_counts = [1] + shard_counts
    shard_counts = sorted(set(shard_counts))
    cores = os.cpu_count() or 1
    # Quick mode stays on the in-process transport: CI measures the engine,
    # not process spawn latency.  Full mode shards over real processes.
    transport_for = (lambda k: "inproc") if args.quick else (
        lambda k: "inproc" if k == 1 else "mp")
    spec1 = bench_spec(args.quick, 1)
    print(f"city_scale n={dict(spec1.params)['n']}, duration={spec1.duration}, "
          f"shard counts {shard_counts}, {cores} cores available")

    rows = []
    reference = None
    serial = None
    identical_all = True
    for shards in shard_counts:
        spec = bench_spec(args.quick, shards)
        start = time.perf_counter()
        result = run_sharded(spec, transport=transport_for(shards))
        elapsed = time.perf_counter() - start
        if shards == 1:
            reference, serial = result.fingerprint, elapsed
            identical = True
        else:
            identical = result.fingerprint == reference
            identical_all = identical_all and identical
        events = result.fingerprint["processed_events"]
        rows.append({
            "shards": shards,
            "transport": transport_for(shards),
            "events": events,
            "remote": result.stats["remote_deliveries"],
            "wall s": round(elapsed, 2),
            "events/s": round(events / elapsed, 0) if elapsed > 0 else float("inf"),
            "speedup": round(serial / elapsed, 2) if serial and elapsed > 0 else 1.0,
            "identical": identical,
        })
    print_table(rows, title="sharded execution (reference = 1 shard, inproc)")

    top = rows[-1]
    top_count = top["shards"]
    # The 3x target presumes one core per shard; below that the speedup is
    # physically capped, so the row is emitted untracked.
    speedup_budget = 3.0 if (not args.quick and cores >= top_count) else None

    if args.json:
        emit_rows = [_emit.row("bit_identical", 1.0 if identical_all else 0.0,
                               "bool", budget=1.0)]
        if not args.quick:
            emit_rows.append(_emit.row("wall_s_100k_1shard", rows[0]["wall s"],
                                       "s", budget=FULL_WALL_BUDGET_S,
                                       direction="max"))
        for r in rows:
            emit_rows.append(_emit.row(f"events_per_s_{r['shards']}shards",
                                       r["events/s"], "events/s"))
        if top_count > 1:
            emit_rows.append(_emit.row(f"speedup_{top_count}shards",
                                       top["speedup"], "x",
                                       budget=speedup_budget))
        _emit.emit(args.json, bench="sharded", quick=args.quick,
                   rows=emit_rows,
                   meta={"cores": cores,
                         "worker_counts": shard_counts,
                         "duration": spec1.duration,
                         "params": dict(spec1.params),
                         "rows": rows})

    if not identical_all:
        print("ERROR: sharded run diverged from the 1-shard reference "
              "fingerprint — determinism bug, not noise")
        return 1
    if top_count > 1:
        print(f"\nspeedup at {top_count} shards: {top['speedup']}x "
              f"(target >= 3x with >= {top_count} cores)")
        if speedup_budget is not None and top["speedup"] < speedup_budget:
            print("WARNING: sharded executor below target speedup")
            return 1
        if speedup_budget is None and not args.quick:
            print(f"note: only {cores} core(s) available; "
                  f"target needs >= {top_count}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
