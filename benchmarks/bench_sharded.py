"""Sharded mega-world benchmark: bit-identity plus worker scaling.

Runs one ``city_scale`` field through the sharded executor
(:mod:`repro.shard`) at increasing shard counts and checks two things:

1. **bit-identity** — every shard count must reproduce the ``shards=1``
   reference fingerprint exactly (event/message counters and post-run RNG
   states; quick mode also compares views, topology edges and the overhead
   report).  An identity failure is a correctness bug and always fails the
   benchmark, noise notwithstanding.
2. **scaling** — wall-clock time per shard count, with the multi-shard runs
   on the ``mp`` transport (one OS process per shard).  The speedup target
   (>= 3x at 8 workers, full mode) is physically impossible below 8 cores,
   so it is only *enforced* when enough cores exist; the measured value is
   recorded either way.

Two hot-path measurements ride along:

- **incremental CSR refresh** — a raw :class:`ArrayLinkState` microbench
  (100k nodes full, 2k quick; 1% movers/step) timing the dirty-row patch
  against a per-step full rebuild, with a final CSR-equality check.  The
  patch must be >= 5x faster in full mode.
- **snapshot-restore amortization** — the top shard count rebuilt via
  ``build='snapshot'`` (one base build, workers unpickle), comparing
  per-worker build time against restore time.  Full mode shortens the
  simulated window for this leg (build cost is duration-independent) and
  re-checks bit-identity against a fresh 1-shard reference at the same
  duration.

Quick mode (CI) shrinks the city to 2,000 nodes and keeps every run
in-process where noted; full mode runs the 100,000-node default city.

Run with ``PYTHONPATH=src python benchmarks/bench_sharded.py``; add
``--quick`` for the CI smoke grid and ``--json PATH`` for a bench-emit/v1
envelope (see ``benchmarks/_emit.py``).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

import _emit

from repro.metrics.report import print_table
from repro.net.arraystate import ArrayLinkState, NodeArrayStore
from repro.shard import ShardSpec, run_sharded

#: Full-mode wall budget (seconds) for the 100k-node single-shard reference
#: on one core; measured ~121 s (1.20 M events, ~9.9 k events/s) on the
#: baseline box, with headroom for slower runners.
FULL_WALL_BUDGET_S = 300.0

#: Full-mode floor for the incremental CSR patch vs per-step full rebuild
#: at 100k nodes / 1% movers per step (issue acceptance: >= 5x).
CSR_PATCH_SPEEDUP_BUDGET = 5.0

#: Full-mode floor for the snapshot-restore amortization: per-worker
#: shard-independent phase, replicated scenario build vs snapshot unpickle.
#: Measured ~2.8 s build vs ~0.6 s GC-paused restore at 100k nodes (~4.7x)
#: uncontended; like the scaling target, enforced only with one core per
#: worker — below that the concurrent workers time-slice the cores and
#: their wall-clock phases measure contention, not amortization.
SNAPSHOT_SPEEDUP_BUDGET = 2.0

#: Simulated seconds for the full-mode snapshot-amortization leg.  Build and
#: restore costs do not depend on the simulated duration, so this leg runs a
#: short window to keep the (already measured) run phase cheap.
AMORT_DURATION_FULL = 0.1

#: Simulated seconds for the observability leg.  On the quick city the first
#: multi-node groups form past t ~ 3 (tc = 1.0 plus the dmax = 3 quarantine),
#: so the bench-grid duration of 2.0 would record zero lifecycle events;
#: 4.0 s reliably produces group.formed events and convergence milestones.
OBS_DURATION = 4.0


def bench_spec(quick: bool, shards: int, duration: float = None) -> ShardSpec:
    """The benchmark workload at one shard count (same world throughout)."""
    if quick:
        params = {"n": 2_000, "area": 4_000.0, "hotspot_sigma": 300.0}
        default_duration = 2.0
    else:
        params = {"n": 100_000}
        default_duration = 1.0
    # Full mode skips the fingerprint extras (views over 100k nodes, payload
    # estimates); counters + RNG states still pin down bit-identity.
    return ShardSpec.create("city_scale", params=params, seed=2024,
                            duration=default_duration if duration is None
                            else duration,
                            shards=shards, fingerprint=quick)


def refresh_bench(quick: bool, seed: int = 2024):
    """Time incremental CSR patch vs full rebuild on identical move streams.

    Builds a raw :class:`NodeArrayStore` (no world, no simulator), then
    applies the same seeded sequence of bulk position writes (1% of rows per
    step, uniform destinations) to two :class:`ArrayLinkState` instances —
    one with ``incremental=True`` (dirty-row patch), one with ``False``
    (full rebuild every step) — timing only the ``_ensure()`` refresh.
    Returns mean per-step seconds for each path, whether the final CSRs are
    bit-identical, and the patch/rebuild counters.
    """
    if quick:
        n, area, steps = 2_000, 4_000.0, 5
    else:
        n, area, steps = 100_000, 30_000.0, 10
    radius = 100.0
    movers = max(1, n // 100)
    mean_s = {}
    counters = {}
    final = {}
    for label, incremental in (("patch", True), ("rebuild", False)):
        rng = np.random.default_rng(seed)
        store = NodeArrayStore()
        pts = rng.uniform(0.0, area, size=(n, 2))
        for i in range(n):
            store.insert(i, (pts[i, 0], pts[i, 1]), i, None, True)
        ls = ArrayLinkState(radius, store, obs=None, incremental=incremental)
        ls._ensure()  # initial build (caches the cell binning on the patch path)
        times = []
        for _ in range(steps):
            rows = rng.choice(n, size=movers, replace=False)
            coords = rng.uniform(0.0, area, size=(movers, 2))
            store.write_rows(rows, coords)
            ls.mark_rows_dirty(rows)
            t0 = time.perf_counter()
            ls._ensure()
            times.append(time.perf_counter() - t0)
        mean_s[label] = sum(times) / len(times)
        counters[label] = (ls.patch_count, ls.rebuild_count)
        final[label] = (ls._indptr[: n + 1].copy(),
                       ls._indices[: ls._indptr[n]].copy())
    identical = (np.array_equal(final["patch"][0], final["rebuild"][0])
                 and np.array_equal(final["patch"][1], final["rebuild"][1]))
    return {
        "n": n, "steps": steps, "movers_per_step": movers, "radius": radius,
        "patch_mean_s": mean_s["patch"], "rebuild_mean_s": mean_s["rebuild"],
        "patch_counters": counters["patch"],
        "rebuild_counters": counters["rebuild"],
        "identical": identical,
    }


def obs_leg(out_path: str):
    """Observed sharded run vs its unobserved twin (quick city, 2 shards, mp).

    Runs the 2,000-node quick city for :data:`OBS_DURATION` simulated
    seconds twice over the ``mp`` transport — once plain, once with every
    worker under its own ObsContext — and checks the PR-7 contract end to
    end: the fingerprints must be bit-identical, the merged export must
    contain group-lifecycle events and a convergence milestone, and every
    per-shard blob must carry the shard window/outbox instruments.  Writes
    the merged export to ``out_path`` as repro-obs/v1 JSONL.
    """
    from repro.obs import write_blob_jsonl

    spec = ShardSpec.create("city_scale", seed=2024, duration=OBS_DURATION,
                            shards=2, fingerprint=True,
                            params={"n": 2_000, "area": 4_000.0,
                                    "hotspot_sigma": 300.0})
    t0 = time.perf_counter()
    plain = run_sharded(spec, transport="mp")
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    observed = run_sharded(spec, transport="mp", obs=True)
    observed_s = time.perf_counter() - t0
    identical = observed.fingerprint == plain.fingerprint
    merged = observed.obs["merged"]
    per_shard = observed.obs["per_shard"]
    kinds = merged["events"]["kinds"]
    lifecycle = sum(v for k, v in kinds.items() if k.startswith("group."))
    milestones = sum(v for k, v in kinds.items() if k.startswith("convergence."))
    instruments_ok = all(
        "shard.windows" in blob["counters"] and
        "shard.outbox_entries" in blob["counters"] and
        "shard.window" in blob.get("spans", {})
        for blob in per_shard)
    write_blob_jsonl(out_path, merged,
                     meta={"bench": "sharded", "leg": "obs",
                           "scenario": spec.scenario, "seed": spec.seed,
                           "duration": spec.duration, "shards": spec.shards,
                           "transport": "mp", "per_shard": len(per_shard)})
    print(f"\nobs leg ({spec.shards} shards, mp, duration {spec.duration}): "
          f"identical={identical}, {merged['events']['count']} events "
          f"({lifecycle} lifecycle, {milestones} convergence), per-shard "
          f"instruments={'ok' if instruments_ok else 'MISSING'}; "
          f"plain {plain_s:.1f} s -> observed {observed_s:.1f} s; "
          f"merged export -> {out_path}")
    return {
        "identical": identical,
        "lifecycle_events": lifecycle,
        "convergence_milestones": milestones,
        "instruments_ok": instruments_ok,
        "event_count": merged["events"]["count"],
        "plain_wall_s": plain_s,
        "observed_wall_s": observed_s,
        "obs_overhead_x": observed_s / plain_s if plain_s > 0 else float("inf"),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small city + in-process transport for CI smoke runs")
    parser.add_argument("--shards", type=int, nargs="*", default=None,
                        help="shard counts to benchmark "
                             "(default: 1 2 4 quick, 1 8 full)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write a bench-emit/v1 envelope "
                             "(see benchmarks/_emit.py)")
    parser.add_argument("--obs-out", type=str, default=None, metavar="PATH",
                        help="run the observability leg (quick city, 2 shards, "
                             "mp, obs-on vs obs-off identity) and write the "
                             "merged repro-obs/v1 export to PATH")
    args = parser.parse_args()

    shard_counts = args.shards or ([1, 2, 4] if args.quick else [1, 8])
    if 1 not in shard_counts:
        shard_counts = [1] + shard_counts
    shard_counts = sorted(set(shard_counts))
    cores = os.cpu_count() or 1
    # Quick mode stays on the in-process transport: CI measures the engine,
    # not process spawn latency.  Full mode shards over real processes.
    transport_for = (lambda k: "inproc") if args.quick else (
        lambda k: "inproc" if k == 1 else "mp")
    spec1 = bench_spec(args.quick, 1)
    print(f"city_scale n={dict(spec1.params)['n']}, duration={spec1.duration}, "
          f"shard counts {shard_counts}, {cores} cores available")

    rows = []
    reference = None
    serial = None
    identical_all = True
    worker_build_by_count = {}
    for shards in shard_counts:
        spec = bench_spec(args.quick, shards)
        start = time.perf_counter()
        result = run_sharded(spec, transport=transport_for(shards))
        elapsed = time.perf_counter() - start
        if shards == 1:
            reference, serial = result.fingerprint, elapsed
            identical = True
        else:
            identical = result.fingerprint == reference
            identical_all = identical_all and identical
        events = result.fingerprint["processed_events"]
        worker_build_by_count[shards] = (result.stats["worker_build_s"],
                                         result.stats["worker_base_phase_s"])
        rows.append({
            "shards": shards,
            "transport": transport_for(shards),
            "events": events,
            "remote": result.stats["remote_deliveries"],
            "wall s": round(elapsed, 2),
            "build s": round(result.stats["build_s"], 2),
            "run s": round(result.stats["run_s"], 2),
            "events/s": round(events / elapsed, 0) if elapsed > 0 else float("inf"),
            "speedup": round(serial / elapsed, 2) if serial and elapsed > 0 else 1.0,
            "identical": identical,
        })
    print_table(rows, title="sharded execution (reference = 1 shard, inproc)")

    top = rows[-1]
    top_count = top["shards"]
    # The 3x target presumes one core per shard; below that the speedup is
    # physically capped, so the row is emitted untracked.
    speedup_budget = 3.0 if (not args.quick and cores >= top_count) else None

    # --- incremental CSR refresh: dirty-row patch vs per-step full rebuild.
    refresh = refresh_bench(args.quick)
    csr_speedup = (refresh["rebuild_mean_s"] / refresh["patch_mean_s"]
                   if refresh["patch_mean_s"] > 0 else float("inf"))
    identical_all = identical_all and refresh["identical"]
    print(f"\ncsr refresh ({refresh['n']} nodes, "
          f"{refresh['movers_per_step']} movers/step, "
          f"{refresh['steps']} steps): "
          f"patch {refresh['patch_mean_s'] * 1e3:.2f} ms, "
          f"rebuild {refresh['rebuild_mean_s'] * 1e3:.2f} ms, "
          f"{csr_speedup:.1f}x, identical={refresh['identical']}")

    # --- snapshot-restore amortization at the top shard count.  Build cost
    # is independent of the simulated duration, so full mode runs a short
    # window (with its own 1-shard reference for the identity check); quick
    # mode reuses the main-grid duration and reference.
    amort_duration = spec1.duration if args.quick else AMORT_DURATION_FULL
    if amort_duration == spec1.duration:
        amort_reference = reference
    else:
        amort_reference = run_sharded(
            bench_spec(args.quick, 1, duration=amort_duration),
            transport="inproc").fingerprint
    snap_result = run_sharded(
        bench_spec(args.quick, top_count, duration=amort_duration),
        transport=transport_for(top_count), build="snapshot")
    snap_identical = snap_result.fingerprint == amort_reference
    identical_all = identical_all and snap_identical
    replicated_total, replicated_phase = worker_build_by_count[top_count]
    restore_total = snap_result.stats["worker_build_s"]
    restore_phase = snap_result.stats["worker_base_phase_s"]
    mean = lambda xs: sum(xs) / len(xs)
    # The speedup row compares the shard-independent phase only (scenario
    # build vs snapshot unpickle) — the shard-specific _finalize half runs
    # identically in both modes and would just dilute the signal.
    snap_speedup = (mean(replicated_phase) / mean(restore_phase)
                    if mean(restore_phase) > 0 else float("inf"))
    print(f"snapshot restore ({top_count} shards, "
          f"{transport_for(top_count)}): base build+pickle "
          f"{snap_result.stats['base_build_s']:.2f} s; per-worker base phase "
          f"build {mean(replicated_phase):.2f} s -> restore "
          f"{mean(restore_phase):.2f} s ({snap_speedup:.1f}x); per-worker "
          f"total {mean(replicated_total):.2f} s -> {mean(restore_total):.2f} s; "
          f"identical={snap_identical}")

    # --- observability leg: obs-on vs obs-off identity plus event coverage.
    obs = None
    obs_ok = True
    if args.obs_out:
        obs = obs_leg(args.obs_out)
        identical_all = identical_all and obs["identical"]
        obs_ok = (obs["lifecycle_events"] > 0
                  and obs["convergence_milestones"] > 0
                  and obs["instruments_ok"])

    if args.json:
        emit_rows = [_emit.row("bit_identical", 1.0 if identical_all else 0.0,
                               "bool", budget=1.0)]
        if not args.quick:
            emit_rows.append(_emit.row("wall_s_100k_1shard", rows[0]["wall s"],
                                       "s", budget=FULL_WALL_BUDGET_S,
                                       direction="max"))
        for r in rows:
            emit_rows.append(_emit.row(f"events_per_s_{r['shards']}shards",
                                       r["events/s"], "events/s"))
        if top_count > 1:
            emit_rows.append(_emit.row(f"speedup_{top_count}shards",
                                       top["speedup"], "x",
                                       budget=speedup_budget))
        # Quick-mode fields are too small to budget (sub-ms refreshes,
        # sub-second builds); the rows are still emitted for trend-watching.
        emit_rows.append(_emit.row("csr_patch_ms",
                                   refresh["patch_mean_s"] * 1e3, "ms"))
        emit_rows.append(_emit.row("csr_rebuild_ms",
                                   refresh["rebuild_mean_s"] * 1e3, "ms"))
        emit_rows.append(_emit.row(
            "csr_patch_speedup", round(csr_speedup, 2), "x",
            budget=None if args.quick else CSR_PATCH_SPEEDUP_BUDGET))
        snapshot_budget = (SNAPSHOT_SPEEDUP_BUDGET
                           if (not args.quick and cores >= top_count) else None)
        emit_rows.append(_emit.row(
            "snapshot_restore_speedup", round(snap_speedup, 2), "x",
            budget=snapshot_budget))
        if obs is not None:
            emit_rows.append(_emit.row("obs_identical",
                                       1.0 if obs["identical"] else 0.0,
                                       "bool", budget=1.0))
            emit_rows.append(_emit.row("obs_lifecycle_events",
                                       obs["lifecycle_events"], "events"))
            emit_rows.append(_emit.row("obs_overhead",
                                       round(obs["obs_overhead_x"], 2), "x"))
        _emit.emit(args.json, bench="sharded", quick=args.quick,
                   rows=emit_rows,
                   meta={"cores": cores,
                         "worker_counts": shard_counts,
                         "duration": spec1.duration,
                         "params": dict(spec1.params),
                         "rows": rows,
                         "csr_refresh": refresh,
                         "snapshot": {
                             "shards": top_count,
                             "transport": transport_for(top_count),
                             "duration": amort_duration,
                             "base_build_s": snap_result.stats["base_build_s"],
                             "replicated_worker_build_s": replicated_total,
                             "replicated_worker_base_phase_s": replicated_phase,
                             "snapshot_worker_build_s": restore_total,
                             "snapshot_worker_base_phase_s": restore_phase,
                             "identical": snap_identical,
                         },
                         "obs": obs})

    if not identical_all:
        print("ERROR: sharded run diverged from the 1-shard reference "
              "fingerprint — determinism bug, not noise")
        return 1
    if not obs_ok:
        print("ERROR: obs leg missing lifecycle events, convergence "
              "milestone or per-shard instruments — observability regression")
        return 1
    if top_count > 1:
        print(f"\nspeedup at {top_count} shards: {top['speedup']}x "
              f"(target >= 3x with >= {top_count} cores)")
        if speedup_budget is not None and top["speedup"] < speedup_budget:
            print("WARNING: sharded executor below target speedup")
            return 1
        if speedup_budget is None and not args.quick:
            print(f"note: only {cores} core(s) available; "
                  f"target needs >= {top_count}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
