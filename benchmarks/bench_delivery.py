"""Delivery-pipeline benchmark: vectorized vs per-receiver broadcast path.

Two measurements over the raw network substrate (no protocol on top):

* **Broadcast-step throughput** — every node broadcasts into no-op receivers
  over a churning 1000-node dense field (mobility steps interleaved with
  hello-beacon rounds, the regime that dominates the paper's experiments).
  The vectorized pipeline serves receiver lists from the incremental
  link-state cache, decides whole batches through ``decide_batch`` and
  bulk-schedules delayed deliveries; the baseline is the per-receiver scan
  (``vectorized_delivery=False``).  Both paths replay seeded runs
  bit-identically — the benchmark asserts identical delivery counters.
* **Topology refresh under mobility** — per mobility step, move a mobile
  subset of the field and re-read the neighbourhoods of the movers (what a
  protocol reacting to mobility inspects).  Incremental link-state patches
  only the movers' links; the baseline recomputes the snapshot from the grid.
  A full-sweep row (query *every* node) and an all-mobile row are included
  for transparency — when every node moves every step, patching every link
  from both endpoints approaches the cost of one rebuild and the incremental
  advantage fades; the win lives exactly where the ISSUE/ROADMAP motivate it
  (most links stable between steps).

A third table scales the array backend alone to a 10,000-node field at the
same density (the scan path is O(n) per broadcast and would take minutes
there): the row must finish well inside a 60 s wall-clock budget.

Run with ``PYTHONPATH=src python benchmarks/bench_delivery.py``; ``--quick``
shrinks the scenarios for CI smoke runs, ``--json PATH`` writes a
``bench-emit/v1`` envelope (see ``benchmarks/_emit.py``; the legacy payload
rides in its ``meta`` key) for artifact tracking, and
``--dict-state`` swaps the vectorized side onto the dict-based link-state
cache to cross-check the array backend (on by default).  Full-mode targets:
>= 6x broadcast-step throughput on the lossy dense mobile field (measured
~10x with the array backend), >= 5x topology refresh with the 10% mobile
subset, and the 10k-node row under budget.
"""

from __future__ import annotations

import argparse
import math
import time
from typing import Dict, List, Tuple

import _emit

from repro.metrics.report import print_table
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.net.channel import LossyChannel, PerfectChannel
from repro.net.geometry import random_positions
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.randomness import SeedSequenceFactory


class NullProcess(Process):
    """Receiver that does nothing (keeps protocol cost out of the timing)."""

    def on_message(self, sender, payload):
        pass


def build_network(n: int, area: float, radio_range: float, seed: int,
                  vectorized: bool, channel_kind: str,
                  array_state: bool = True) -> Tuple[Simulator, Network,
                                                     RandomWaypointMobility]:
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(area, area), rng=seeds.stream("placement"))
    sim = Simulator(seed=seed)
    if channel_kind == "lossy":
        channel = LossyChannel(loss_probability=0.05, rng=seeds.stream("channel"))
    elif channel_kind == "delayed":
        channel = LossyChannel(min_delay=0.01, max_delay=0.05,
                               rng=seeds.stream("channel"))
    else:
        channel = PerfectChannel()
    network = Network(sim, radio=UnitDiskRadio(radio_range), channel=channel,
                      vectorized_delivery=vectorized, array_state=array_state)
    for node, pos in positions.items():
        network.add_node(NullProcess(node), pos)
    mobility = RandomWaypointMobility((area, area), min_speed=5.0, max_speed=15.0,
                                      rng=seeds.stream("mobility"))
    return sim, network, mobility


# ------------------------------------------------------------------ broadcast

def time_broadcast_steps(vectorized: bool, channel_kind: str, n: int, area: float,
                         steps: int, rounds_per_step: int,
                         seed: int = 7, array_state: bool = True) -> Tuple[float, int]:
    """(broadcasts/second, messages_delivered) over a churning field.

    One "step" = one mobility step followed by ``rounds_per_step`` hello
    rounds (every node broadcasts once per round); delayed deliveries are
    drained through the simulator after each step.
    """
    sim, network, mobility = build_network(n, area, 100.0, seed, vectorized,
                                           channel_kind, array_state=array_state)
    nodes = network.node_ids
    count = 0
    start = time.perf_counter()
    for _ in range(steps):
        network.set_positions(mobility.step(network.positions, 1.0))
        for _ in range(rounds_per_step):
            for sender in nodes:
                network.broadcast(sender, "x")
                count += 1
        sim.run()
    elapsed = time.perf_counter() - start
    return count / elapsed if elapsed > 0 else float("inf"), network.messages_delivered


def broadcast_rows(n: int, area: float, steps: int, rounds_per_step: int,
                   repeats: int, array_state: bool = True) -> List[Dict[str, object]]:
    rows = []
    for kind in ("lossy", "perfect", "delayed"):
        best = {"vectorized": 0.0, "scan": 0.0}
        delivered: Dict[str, int] = {}
        # Interleave the two pipelines within each repeat so transient
        # machine load penalizes both sides equally.  The scan baseline is
        # always the scalar reference; ``array_state`` selects the state
        # backend behind the vectorized side (SoA/CSR vs dict cache).
        for _ in range(repeats):
            for label, vectorized in (("vectorized", True), ("scan", False)):
                rate, count = time_broadcast_steps(
                    vectorized, kind, n, area, steps, rounds_per_step,
                    array_state=array_state and vectorized)
                best[label] = max(best[label], rate)
                delivered[label] = count
        # The two paths must be *the same simulation*, not merely similar.
        assert delivered["vectorized"] == delivered["scan"], (
            f"{kind}: delivery diverged between pipelines "
            f"({delivered['vectorized']} != {delivered['scan']})")
        rows.append({
            "scenario": f"dense mobile field / {kind}",
            "nodes": n,
            "vectorized bcast/s": round(best["vectorized"]),
            "scan bcast/s": round(best["scan"]),
            "speedup": round(best["vectorized"] / best["scan"], 2),
        })
    return rows


# -------------------------------------------------------------------- refresh

def time_refresh_steps(vectorized: bool, n: int, area: float, movers: int,
                       steps: int, query: str, seed: int = 11,
                       array_state: bool = True) -> Tuple[float, int]:
    """(mobility steps/second, total neighbour count) for one refresh regime.

    ``query`` selects the per-step read load: ``"movers"`` re-reads the
    neighbourhoods of the nodes that moved, ``"all"`` sweeps every node.
    """
    sim, network, mobility = build_network(n, area, 100.0, seed, vectorized,
                                           "perfect", array_state=array_state)
    mobile = list(range(movers))
    network.topology()
    network.neighbors_of(0)  # warm both pipelines
    queried = mobile if query == "movers" else network.node_ids
    total = 0
    start = time.perf_counter()
    for _ in range(steps):
        subset = {m: network.position_of(m) for m in mobile}
        network.set_positions(mobility.step(subset, 1.0))
        for node in queried:
            total += len(network.neighbors_of(node))
    elapsed = time.perf_counter() - start
    return steps / elapsed if elapsed > 0 else float("inf"), total


def refresh_rows(n: int, area: float, steps: int,
                 repeats: int, array_state: bool = True) -> List[Dict[str, object]]:
    regimes = [
        ("10% mobile, read movers", max(1, n // 10), "movers"),
        ("10% mobile, read all", max(1, n // 10), "all"),
        ("all mobile, read all", n, "all"),
    ]
    rows = []
    for name, movers, query in regimes:
        best = {"incremental": 0.0, "rebuild": 0.0}
        totals: Dict[str, int] = {}
        for _ in range(repeats):
            for label, vectorized in (("incremental", True), ("rebuild", False)):
                rate, total = time_refresh_steps(
                    vectorized, n, area, movers, steps, query,
                    array_state=array_state and vectorized)
                best[label] = max(best[label], rate)
                totals[label] = total
        assert totals["incremental"] == totals["rebuild"], (
            f"{name}: neighbour sets diverged between pipelines")
        rows.append({
            "scenario": name,
            "nodes": n,
            "incremental steps/s": round(best["incremental"], 1),
            "rebuild steps/s": round(best["rebuild"], 1),
            "speedup": round(best["incremental"] / best["rebuild"], 2),
        })
    return rows


# ---------------------------------------------------------------- scale (10k)

def scale_row(n: int, steps: int, rounds_per_step: int,
              budget_s: float = 60.0) -> Dict[str, object]:
    """One array-backend row at large ``n``, same density as the 1000-node field.

    The per-receiver scan is O(n) per broadcast, so no scan baseline is run
    here (it would take minutes at 10k nodes — which is the point).  The row
    reports wall time against the <60 s budget instead of a speedup.
    """
    area = 1000.0 * math.sqrt(n / 1000.0)  # constant density: ~31 neighbours
    start = time.perf_counter()
    rate, delivered = time_broadcast_steps(True, "lossy", n, area, steps,
                                           rounds_per_step, array_state=True)
    wall = time.perf_counter() - start
    return {
        "scenario": "dense mobile field / lossy (array backend)",
        "nodes": n,
        "broadcasts": n * steps * rounds_per_step,
        "delivered": delivered,
        "bcast/s": round(rate),
        "wall_s": round(wall, 2),
        "budget_s": budget_s,
    }


# ----------------------------------------------------------------------- main

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke runs")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the result rows as JSON")
    parser.add_argument("--dict-state", action="store_true",
                        help="run the vectorized side on the dict-based "
                             "link-state cache instead of the array backend "
                             "(cross-check; array backend is the default)")
    parser.add_argument("--no-scale", action="store_true",
                        help="skip the 10,000-node array-backend row")
    args = parser.parse_args()
    array_state = not args.dict_state

    if args.quick:
        n, area, steps, rounds, refresh_steps, repeats = 250, 500.0, 2, 2, 4, 1
        bcast_target, refresh_target = 1.5, 2.0
        scale_steps, scale_rounds = 1, 1
    else:
        n, area, steps, rounds, refresh_steps, repeats = 1000, 1000.0, 3, 3, 10, 3
        # The array backend clears ~10x on this field (see README); the
        # asserted floor leaves headroom for machine noise.
        bcast_target, refresh_target = 6.0, 5.0
        scale_steps, scale_rounds = 2, 2

    backend = "array" if array_state else "dict"
    bcast = broadcast_rows(n, area, steps, rounds, repeats,
                           array_state=array_state)
    print_table(bcast, title=f"broadcast-step throughput: vectorized pipeline "
                             f"({backend} state) vs per-receiver scan")
    refresh = refresh_rows(n, area, refresh_steps, repeats,
                           array_state=array_state)
    print_table(refresh, title="topology refresh under mobility: incremental "
                               "link-state vs full recompute")
    scale = None
    if not args.no_scale:
        scale = scale_row(10_000, scale_steps, scale_rounds)
        print_table([scale], title="scale: 10,000-node dense mobile field "
                                   "(array backend, no scan baseline)")

    bcast_headline = bcast[0]["speedup"]       # lossy dense mobile field
    refresh_headline = refresh[0]["speedup"]   # 10% mobile, read movers
    print(f"\nheadline broadcast speedup: {bcast_headline}x "
          f"(target >= {bcast_target}x)")
    print(f"headline refresh speedup: {refresh_headline}x "
          f"(target >= {refresh_target}x)")
    if scale is not None:
        print(f"10k-node row: {scale['wall_s']}s wall "
              f"(budget {scale['budget_s']}s)")

    if args.json:
        rows = [
            _emit.row("broadcast_speedup_lossy", bcast_headline, "x",
                      budget=bcast_target),
            _emit.row("refresh_speedup_10pct_movers", refresh_headline, "x",
                      budget=refresh_target),
        ]
        rows += [_emit.row(f"broadcast_per_s_{r['scenario'].split('/ ')[-1]}",
                           r["vectorized bcast/s"], "bcast/s") for r in bcast]
        if scale is not None:
            rows.append(_emit.row("scale_10k_wall", scale["wall_s"], "s",
                                  budget=scale["budget_s"], direction="max"))
            rows.append(_emit.row("scale_10k_broadcast_per_s",
                                  scale["bcast/s"], "bcast/s"))
        # The legacy payload rides in meta so pre-v1 consumers keep parsing
        # (perf_trajectory.py reads both shapes).
        _emit.emit(args.json, bench="delivery", quick=args.quick, rows=rows,
                   meta={
                       "state_backend": backend,
                       "broadcast": bcast,
                       "refresh": refresh,
                       "scale": scale,
                       "headline_broadcast_speedup": bcast_headline,
                       "headline_refresh_speedup": refresh_headline,
                   })

    status = 0
    if bcast_headline < bcast_target:
        print("WARNING: vectorized broadcast pipeline below target speedup")
        status = 1
    if refresh_headline < refresh_target:
        print("WARNING: incremental link-state refresh below target speedup")
        status = 1
    if scale is not None and scale["wall_s"] > scale["budget_s"]:
        print("WARNING: 10k-node row exceeded its wall-clock budget")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
