"""Benchmark E10 — Optimized vs naive compatibleList (Prop 13).

Regenerates the rows of experiment E10 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e10_compatibility


def test_e10_compatibility(benchmark):
    result = benchmark.pedantic(e10_compatibility, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
