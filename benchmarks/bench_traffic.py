"""Traffic-subsystem benchmark: application messages through the group layer.

Measures the end-to-end application-message path of :mod:`repro.traffic` —
generator timers → group-scoped injection → network broadcast (vectorized
link-state pipeline) → app-handler dispatch → delivery-ledger accounting —
over a dense mobile field with a static grid-cell group partition and no
protocol on top, so the timing isolates the traffic subsystem itself.

Two pipelines run the identical seeded workload:

* ``vectorized`` — the link-state receiver cache + batched channel decisions
  (``Network(vectorized_delivery=True)``, the default);
* ``scan`` — the per-receiver fallback path.

The ledgers of both runs must agree bit-exactly (sends, receptions, per-group
rows) — the benchmark asserts it, making every CI run a determinism check.

Run with ``PYTHONPATH=src python benchmarks/bench_traffic.py``; ``--quick``
shrinks the field for CI smoke runs and ``--json PATH`` writes a
``bench-emit/v1`` envelope (see ``benchmarks/_emit.py``; the legacy payload
rides in its ``meta`` key) for artifact tracking.  Full-mode target:
>= 50k delivered application messages per second on the 1000-node dense
field with the vectorized pipeline on.
"""

from __future__ import annotations

import argparse
import math
import time
from typing import Dict, List, Tuple

import _emit

from repro.metrics.report import print_table
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.net.channel import LossyChannel
from repro.net.geometry import random_positions
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.randomness import SeedSequenceFactory
from repro.traffic import TrafficDriver, TrafficSpec

RADIO_RANGE = 100.0


class AppHost(Process):
    """Receiver that runs no protocol (keeps protocol cost out of the timing)."""

    def on_message(self, sender, payload):
        pass


def grid_groups(positions: Dict, cell: float) -> Dict:
    """Static group partition: nodes sharing a grid cell form one group."""
    cells: Dict[Tuple[int, int], List] = {}
    for node, (x, y) in positions.items():
        cells.setdefault((math.floor(x / cell), math.floor(y / cell)), []).append(node)
    groups = {}
    for members in cells.values():
        group = frozenset(members)
        for node in members:
            groups[node] = group
    return groups


def build(n: int, area: float, seed: int, vectorized: bool) -> Tuple[Simulator, Network,
                                                                     Dict]:
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(area, area),
                                 rng=seeds.stream("placement"))
    sim = Simulator(seed=seeds.seed_for("simulator"))
    channel = LossyChannel(loss_probability=0.05, min_delay=0.001, max_delay=0.001,
                           rng=seeds.stream("channel"))
    mobility = RandomWaypointMobility((area, area), min_speed=5.0, max_speed=15.0,
                                      rng=seeds.stream("mobility"))
    network = Network(sim, radio=UnitDiskRadio(RADIO_RANGE), channel=channel,
                      mobility=mobility, vectorized_delivery=vectorized)
    for node, pos in positions.items():
        network.add_node(AppHost(node), pos)
    groups = grid_groups(positions, RADIO_RANGE)
    return sim, network, groups


def time_traffic(spec: TrafficSpec, n: int, area: float, duration: float,
                 vectorized: bool, seed: int = 17) -> Tuple[float, Dict[str, object]]:
    """(wall seconds, ledger fingerprint) for one seeded traffic run."""
    sim, network, groups = build(n, area, seed, vectorized)
    driver = TrafficDriver(sim=sim, network=network, processes=network.processes,
                           spec=spec, seed=seed, group_of=groups.__getitem__)
    network.start_mobility(1.0)
    driver.start()
    start = time.perf_counter()
    sim.run(until=duration)
    elapsed = time.perf_counter() - start
    ledger = driver.ledger
    fingerprint = {
        "sent": ledger.messages_sent,
        "receptions": ledger.receptions,
        "groups": ledger.group_rows(),
        "totals": ledger.totals(duration),
    }
    return elapsed, fingerprint


def traffic_rows(n: int, area: float, duration: float,
                 repeats: int) -> List[Dict[str, object]]:
    workloads = [
        ("periodic_beacon", TrafficSpec.create("periodic_beacon", interval=0.2)),
        ("bursty_pubsub", TrafficSpec.create("bursty_pubsub", mean_gap=1.0,
                                             burst_size=16)),
        ("request_reply", TrafficSpec.create("request_reply", interval=0.5)),
    ]
    rows = []
    for name, spec in workloads:
        best = {"vectorized": float("inf"), "scan": float("inf")}
        fingerprints: Dict[str, Dict[str, object]] = {}
        # Interleave the two pipelines within each repeat so transient
        # machine load penalizes both sides equally.
        for _ in range(repeats):
            for label, vectorized in (("vectorized", True), ("scan", False)):
                elapsed, fingerprint = time_traffic(spec, n, area, duration,
                                                    vectorized)
                best[label] = min(best[label], elapsed)
                fingerprints[label] = fingerprint
        # The two pipelines must be *the same workload*, not merely similar.
        assert fingerprints["vectorized"] == fingerprints["scan"], (
            f"{name}: ledger diverged between delivery pipelines")
        delivered = fingerprints["vectorized"]["receptions"]
        rows.append({
            "workload": name,
            "nodes": n,
            "app messages": delivered,
            "vectorized msg/s": round(delivered / best["vectorized"]),
            "scan msg/s": round(delivered / best["scan"]),
            "speedup": round(best["scan"] / best["vectorized"], 2),
        })
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small field for CI smoke runs")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the result rows as JSON")
    args = parser.parse_args()

    if args.quick:
        n, area, duration, repeats, target = 250, 500.0, 1.0, 1, 20_000
    else:
        n, area, duration, repeats, target = 1000, 1000.0, 2.0, 3, 50_000

    rows = traffic_rows(n, area, duration, repeats)
    print_table(rows, title="application-message throughput: traffic subsystem "
                            "over the vectorized delivery pipeline")

    headline = max(row["vectorized msg/s"] for row in rows)
    print(f"\nheadline application throughput: {headline} msg/s "
          f"(target >= {target} msg/s, {'quick' if args.quick else 'full'} mode)")

    if args.json:
        emit_rows = [_emit.row("app_throughput", headline, "msg/s",
                               budget=target)]
        emit_rows += [_emit.row(f"app_throughput_{r['workload']}",
                                r["vectorized msg/s"], "msg/s") for r in rows]
        # Legacy payload in meta: pre-v1 consumers keep parsing after a
        # one-key hop (perf_trajectory.py reads both shapes).
        _emit.emit(args.json, bench="traffic", quick=args.quick,
                   rows=emit_rows,
                   meta={
                       "nodes": n,
                       "rows": rows,
                       "headline_app_msgs_per_s": headline,
                       "target_app_msgs_per_s": target,
                   })

    if headline < target:
        print("WARNING: traffic subsystem below target application throughput")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
