"""Shared ``--json`` emitter for the CLI benchmarks.

Every benchmark that supports ``--json PATH`` writes the same envelope::

    {
      "schema": "bench-emit/v1",
      "bench":  str,        # short benchmark name ("delivery", "traffic", ...)
      "quick":  bool,       # CI smoke mode vs full mode
      "rows": [             # the tracked measurements, flat and uniform
        {
          "name":      str,         # stable measurement identifier
          "value":     int | float,
          "unit":      str,         # "x", "msg/s", "s", ...
          "budget":    null | num,  # acceptance bound, None = untracked
          "direction": "min"|"max"  # "min": value must be >= budget;
                                    # "max": value must be <= budget
        }, ...
      ],
      "meta": {...}         # benchmark-specific extras (tables, params);
                            # bench_delivery/bench_traffic keep their legacy
                            # top-level payloads here so old consumers keep
                            # parsing after a one-key hop
    }

``scripts/perf_trajectory.py`` folds these envelopes (and the pre-v1 legacy
payloads) into ``PERF_TRAJECTORY.md``.  Keeping the envelope uniform means
the trajectory report never needs per-benchmark parsing for new benches.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

SCHEMA = "bench-emit/v1"


def row(name: str, value: float, unit: str, budget: Optional[float] = None,
        direction: str = "min") -> Dict[str, object]:
    """One tracked measurement row of the bench-emit/v1 envelope."""
    if direction not in ("min", "max"):
        raise ValueError(f"direction must be 'min' or 'max', got {direction!r}")
    return {"name": str(name), "value": value, "unit": str(unit),
            "budget": budget, "direction": direction}


def violations(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rows whose value breaks their budget (rows without a budget pass)."""
    failed = []
    for entry in rows:
        budget = entry.get("budget")
        if budget is None:
            continue
        value = entry["value"]
        if entry.get("direction", "min") == "min":
            ok = value >= budget
        else:
            ok = value <= budget
        if not ok:
            failed.append(entry)
    return failed


def emit(path: str, bench: str, quick: bool, rows: List[Dict[str, object]],
         meta: Optional[Dict[str, object]] = None) -> None:
    """Write one bench-emit/v1 envelope to ``path`` and announce it."""
    payload = {
        "schema": SCHEMA,
        "bench": str(bench),
        "quick": bool(quick),
        "rows": list(rows),
        "meta": meta or {},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
