"""Benchmark E2 — Group diameters never exceed Dmax (Prop 8).

Regenerates the rows of experiment E2 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e2_safety


def test_e2_safety(benchmark):
    result = benchmark.pedantic(e2_safety, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
