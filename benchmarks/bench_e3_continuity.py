"""Benchmark E3 — Best-effort continuity ΠT ⇒ ΠC under mobility (Prop 14).

Regenerates the rows of experiment E3 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e3_continuity


def test_e3_continuity(benchmark):
    result = benchmark.pedantic(e3_continuity, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
