"""Benchmark E7 — Quarantine ablation: view retractions.

Regenerates the rows of experiment E7 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e7_quarantine_ablation


def test_e7_quarantine_ablation(benchmark):
    result = benchmark.pedantic(e7_quarantine_ablation, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
