"""Benchmark E8 — Message and computation overhead vs n and Dmax.

Regenerates the rows of experiment E8 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e8_overhead


def test_e8_overhead(benchmark):
    result = benchmark.pedantic(e8_overhead, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
