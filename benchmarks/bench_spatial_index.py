"""Broadcast-path benchmark: spatial index vs brute-force neighbour scans.

Measures the raw network substrate (no protocol on top): every node broadcasts
a dummy payload into a no-op process, so the timing isolates the neighbour
query + channel decision path that the spatial index accelerates.  A second
table times full topology-snapshot rebuilds (cache deliberately invalidated
before each rebuild) and snapshot reads served from the generation-stamped
cache.

Run with ``PYTHONPATH=src python benchmarks/bench_spatial_index.py``;
``--quick`` shrinks the scenario for CI smoke runs.  The dense-field row is
the acceptance scenario: the indexed broadcast path must be >= 5x faster than
brute force at 1000 nodes.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, Tuple

import _emit

from repro.metrics.report import print_table
from repro.net.geometry import random_positions
from repro.net.network import Network
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.randomness import SeedSequenceFactory


class NullProcess(Process):
    """Receiver that does nothing (keeps protocol cost out of the timing)."""

    def on_message(self, sender, payload):
        pass


def build_network(n: int, area: float, radio_range: float, seed: int,
                  use_spatial_index: bool) -> Tuple[Simulator, Network]:
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(area, area), rng=seeds.stream("placement"))
    sim = Simulator(seed=seed)
    network = Network(sim, radio=UnitDiskRadio(radio_range),
                      use_spatial_index=use_spatial_index)
    for node, pos in positions.items():
        network.add_node(NullProcess(node), pos)
    return sim, network


def time_broadcasts(network: Network, rounds: int) -> Tuple[float, int]:
    """Seconds and broadcast count for ``rounds`` all-node broadcast sweeps."""
    nodes = network.node_ids
    count = 0
    start = time.perf_counter()
    for _ in range(rounds):
        for sender in nodes:
            network.broadcast(sender, "x")
            count += 1
    return time.perf_counter() - start, count


def time_snapshots(network: Network, iterations: int) -> Tuple[float, float]:
    """(cold, warm) seconds per topology snapshot.

    Cold rebuilds invalidate the cache first; warm reads hit the
    generation-stamped cache and only pay the defensive copy.
    """
    start = time.perf_counter()
    for _ in range(iterations):
        network.invalidate_topology()
        network.topology()
    cold = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        network.topology()
    warm = (time.perf_counter() - start) / iterations
    return cold, warm


def run_scenario(name: str, n: int, area: float, radio_range: float,
                 rounds: int, snapshot_iterations: int, seed: int = 7) -> Dict[str, object]:
    row: Dict[str, object] = {"scenario": name, "nodes": n}
    rates = {}
    for label, use_index in (("indexed", True), ("brute", False)):
        sim, network = build_network(n, area, radio_range, seed, use_index)
        elapsed, count = time_broadcasts(network, rounds)
        delivered = network.messages_delivered
        rates[label] = count / elapsed if elapsed > 0 else float("inf")
        row[f"{label} bcast/s"] = round(rates[label])
        cold, warm = time_snapshots(network, snapshot_iterations)
        row[f"{label} snap ms"] = round(cold * 1e3, 2)
        if label == "indexed":
            row["warm snap ms"] = round(warm * 1e3, 3)
            row["avg degree"] = round(delivered / count, 1)
    row["speedup"] = round(rates["indexed"] / rates["brute"], 1)
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke runs")
    parser.add_argument("--rounds", type=int, default=None,
                        help="all-node broadcast sweeps per scenario")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write a bench-emit/v1 envelope "
                             "(see benchmarks/_emit.py)")
    args = parser.parse_args()

    if args.quick:
        rounds = args.rounds or 2
        scenarios = [
            ("dense field (quick)", 250, 800.0, 100.0, rounds, 5),
            ("sparse field (quick)", 250, 2000.0, 100.0, rounds, 5),
        ]
    else:
        rounds = args.rounds or 3
        scenarios = [
            ("dense field", 1000, 1000.0, 100.0, rounds, 5),
            ("dense convoy", 1000, 400.0, 60.0, rounds, 5),
            ("sparse field", 1000, 5000.0, 100.0, rounds, 5),
        ]

    rows = [run_scenario(name, n, area, r, rnds, snaps)
            for name, n, area, r, rnds, snaps in scenarios]
    print_table(rows, title="spatial index vs brute force (broadcast path + snapshots)")
    headline = rows[0]["speedup"]
    target = 2.0 if args.quick else 5.0
    print(f"\nheadline broadcast speedup: {headline}x (target >= {target}x)")

    if args.json:
        emit_rows = [_emit.row("index_speedup_dense", headline, "x",
                               budget=target)]
        emit_rows += [_emit.row(f"indexed_broadcast_per_s_{r['scenario']}",
                                r["indexed bcast/s"], "bcast/s") for r in rows]
        _emit.emit(args.json, bench="spatial_index", quick=args.quick,
                   rows=emit_rows, meta={"rows": rows})

    if headline < target:
        print("WARNING: spatial index below target speedup")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
