"""Benchmark E4 — VANET membership churn and group lifetime vs baselines.

Regenerates the rows of experiment E4 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e4_vanet_churn


def test_e4_vanet_churn(benchmark):
    result = benchmark.pedantic(e4_vanet_churn, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
