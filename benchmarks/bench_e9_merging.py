"""Benchmark E9 — Group merging and the group-priority rule (Props 11/12).

Regenerates the rows of experiment E9 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e9_merging


def test_e9_merging(benchmark):
    result = benchmark.pedantic(e9_merging, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
