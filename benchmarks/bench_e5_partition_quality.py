"""Benchmark E5 — Partition quality vs clusterhead baselines.

Regenerates the rows of experiment E5 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e5_partition_quality


def test_e5_partition_quality(benchmark):
    result = benchmark.pedantic(e5_partition_quality, kwargs={"quick": True},
                                rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
