"""Benchmark E1 — Stabilization of ΠA ∧ ΠS ∧ ΠM on static topologies (Props 7/8/12).

Regenerates the rows of experiment E1 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e1_stabilization


def test_e1_stabilization(benchmark):
    result = benchmark.pedantic(e1_stabilization, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
