"""Worker-pool scaling benchmark for the campaign orchestrator.

Runs the same quick multi-seed campaign spec through the serial reference
backend and through process pools of increasing size, and reports wall-clock
times and speedups.  Tasks are independent seeded experiment runs, so the
workload is embarrassingly parallel: on a machine with >= 4 cores the
4-worker run must be >= 2x faster than serial (the acceptance target).  On
fewer cores the speedup is physically capped at the core count, so the target
is only *enforced* (non-zero exit) when enough cores exist.

Run with ``PYTHONPATH=src python benchmarks/bench_campaign.py``; ``--quick``
shrinks the grid for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import time

import _emit

from repro.campaign import CampaignSpec, run_campaign
from repro.metrics.report import print_table


def time_campaign(spec: CampaignSpec, jobs: int) -> float:
    """Wall-clock seconds for one full (store-less) execution of ``spec``."""
    start = time.perf_counter()
    run_campaign(spec, store=None, jobs=jobs)
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid for CI smoke runs")
    parser.add_argument("--jobs", type=int, nargs="*", default=None,
                        help="worker counts to benchmark (default: 1 2 4)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write a bench-emit/v1 envelope "
                             "(see benchmarks/_emit.py)")
    args = parser.parse_args()

    if args.quick:
        spec = CampaignSpec(name="bench-quick", experiments=("E6",),
                            replicates=4, root_seed=42)
    else:
        spec = CampaignSpec(name="bench", experiments=("E2", "E6", "E8"),
                            replicates=4, root_seed=42)
    job_counts = args.jobs or [1, 2, 4]
    if 1 not in job_counts:
        job_counts = [1] + job_counts
    task_count = len(spec.expand())
    cores = os.cpu_count() or 1
    print(f"campaign {spec.name}: {task_count} tasks "
          f"({len(spec.experiments)} experiments x {spec.replicates} seeds), "
          f"{cores} cores available")

    rows = []
    serial = None
    for jobs in sorted(set(job_counts)):
        elapsed = time_campaign(spec, jobs)
        if jobs == 1:
            serial = elapsed
        rows.append({
            "jobs": jobs,
            "tasks": task_count,
            "wall s": round(elapsed, 2),
            "tasks/s": round(task_count / elapsed, 2) if elapsed > 0 else float("inf"),
            "speedup": round(serial / elapsed, 2) if serial and elapsed > 0 else 1.0,
        })
    print_table(rows, title="campaign worker-pool scaling (serial reference = 1 job)")

    four = next((row for row in rows if row["jobs"] == 4), None)

    if args.json:
        # The 2x budget is only enforceable with >= 4 cores; below that the
        # speedup is physically capped, so the row is emitted untracked.
        emit_rows = [_emit.row(f"tasks_per_s_{r['jobs']}j", r["tasks/s"],
                               "tasks/s") for r in rows]
        if four is not None:
            emit_rows.insert(0, _emit.row(
                "pool_speedup_4_workers", four["speedup"], "x",
                budget=2.0 if cores >= 4 else None))
        _emit.emit(args.json, bench="campaign", quick=args.quick,
                   rows=emit_rows,
                   meta={"cores": cores,
                         "worker_counts": sorted(set(job_counts)),
                         "tasks": task_count,
                         "rows": rows})

    if four is not None:
        print(f"\nspeedup at 4 workers: {four['speedup']}x (target >= 2x)")
        if four["speedup"] < 2.0:
            if cores >= 4:
                print("WARNING: campaign pool below target speedup")
                return 1
            print(f"note: only {cores} core(s) available; target needs >= 4")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
