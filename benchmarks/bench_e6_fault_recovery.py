"""Benchmark E6 — Recovery from transient memory corruption (Props 1/2).

Regenerates the rows of experiment E6 (see DESIGN.md for the experiment
index and EXPERIMENTS.md for the recorded results).  The benchmark measures
the wall time of the quick-sized experiment and prints the result table.
"""

from repro.experiments.suite import e6_fault_recovery


def test_e6_fault_recovery(benchmark):
    result = benchmark.pedantic(e6_fault_recovery, kwargs={"quick": True}, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.rows
