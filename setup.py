"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on minimal offline environments where the
``wheel`` package (required by PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()
