"""Sharded mega-world execution: one scenario, many workers, bit-identical.

Splits a single simulated field across shard workers by spatial tile
(:mod:`repro.shard.tiles`), runs each slice under conservative window
synchronization (:mod:`repro.shard.runner`) with send-time capture of
cross-shard deliveries (:mod:`repro.shard.world`), and merges a result that
matches the single-process run bit for bit — including post-run RNG states.
"""

from .channel import PerSenderChannel
from .runner import ShardRunResult, run_sharded
from .tiles import TileMap
from .world import SUPPORTED_TRAFFIC, ShardNetwork, ShardSpec, ShardUnsupportedError, ShardWorld

__all__ = ["PerSenderChannel", "ShardRunResult", "run_sharded", "TileMap",
           "SUPPORTED_TRAFFIC", "ShardNetwork", "ShardSpec",
           "ShardUnsupportedError", "ShardWorld"]
