"""Entry point: ``python -m repro.shard`` runs the sharded-run CLI."""

import sys

from .cli import main

sys.exit(main())
