"""One shard's slice of a sharded world: spec, network override, lifecycle.

Execution model
---------------
Every shard worker builds the **entire** deployment from the scenario
registry — construction, node start order, mobility, churn and topology are
*replicated* bit-identically in every process (they are pure functions of the
spec and seed).  What is *partitioned* is the compute: each node is owned by
exactly one shard (the spatial tile containing its initial position, see
:class:`repro.shard.tiles.TileMap`), and only the owner runs the node's
protocol timers, computations, application traffic and sends.  Non-owned
nodes are full local *mirrors*: they exist, hold positions, flip their active
flags under churn — so receiver sets and topology snapshots match the
single-process run exactly — but their timers are quiesced and they never
receive a message locally.

Cross-shard delivery is captured at **send time**: when an owned sender's
channel decision accepts a receiver owned elsewhere, the delivery is not
scheduled locally but appended to the shard's outbox as
``(recv_time, sender, receiver, payload)``.  The coordinator exchanges
outboxes between synchronized time windows and the receiver's owner applies
them — inline (no event) when ``recv_time`` equals the window time, matching
the zero-delay inline delivery of the stock pipeline, or as a scheduled
``_deliver`` event otherwise.  Capturing at send time (not at a local mirror
delivery event) is what keeps windowed execution with positive lookahead
exact: the decision happens at the same simulated instant as in the
reference run, and the receiving shard gets the message before it executes
anything at or after ``recv_time``.

Event-count parity
------------------
``processed_events`` must merge to the single-process number.  Three event
classes exist:

* **partitioned** events (timers, computations, sends, delayed deliveries,
  traffic) run at exactly one owner — summing is correct;
* **replicated** events (mobility ticks, churn applications) run once per
  shard — each shard counts them in ``shared_events`` and the merge
  subtracts ``(k - 1) *`` that count (asserted equal across shards);
* **zero-delay deliveries** are *no* events in the stock pipeline (delivered
  inline from the broadcast), so cross-shard entries with
  ``recv_time == window time`` are applied inline, not scheduled.

Determinism contract
--------------------
The channel must be per-sender (:class:`repro.shard.channel.PerSenderChannel`
replaces the built lossy channel; the reference fingerprint is this engine at
``shards=1``).  Unsupported pieces raise :class:`ShardUnsupportedError`
rather than silently diverging: :class:`~repro.net.channel.CollisionChannel`
(receiver-side state couples senders), the ``bursty_pubsub`` traffic pattern
(driver-level publisher selection draws over the node census, which differs
per shard) and network subclasses.  Cross-shard deliveries that share an
exact timestamp with an event at the receiving shard are applied after that
event rather than seq-interleaved with it; GRP stores receptions
commutatively and never broadcasts synchronously from handlers, and all
stock send/timer times are continuous random draws, so same-instant
cross-shard races do not arise in supported workloads.  Receiver-side
staleness accounting of the traffic ledger is exact for zero-delay
application channels (remote senders' newest-seq table is per shard);
delayed application channels would report slightly lower staleness.
"""

from __future__ import annotations

import gc
import pickle
import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.messages import GRPMessage
from repro.mobility.churn import ChurnEvent, ChurnSchedule
from repro.net.channel import CollisionChannel, LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.obs import current as _obs_current
from repro.scenarios.registry import build as build_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.randomness import derive_seed
from repro.sim.timers import OneShotTimer, PeriodicTimer
from repro.traffic.generators import TrafficDriver
from repro.traffic.spec import TrafficSpec

from .channel import PerSenderChannel
from .tiles import TileMap

__all__ = ["ShardSpec", "ShardWorld", "ShardNetwork", "ShardUnsupportedError",
           "SUPPORTED_TRAFFIC"]

#: Traffic patterns whose random draws are per-node (invariant under
#: partitioning the node census across workers).
SUPPORTED_TRAFFIC = frozenset({"periodic_beacon", "request_reply", "state_sync"})

#: An outbox entry: (absolute receive time, sender, receiver, payload).
OutboxEntry = Tuple[float, Hashable, Hashable, Any]


class ShardUnsupportedError(RuntimeError):
    """The requested world cannot be sharded bit-identically."""


@dataclass(frozen=True)
class ShardSpec:
    """Complete, picklable description of one sharded run.

    A pure value object: every worker process reconstructs its world from
    this spec alone, so the spec must capture everything the single-process
    run would configure (scenario, backend flags, churn, traffic).
    """

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    seed: int
    duration: float
    shards: int = 1
    use_spatial_index: bool = True
    vectorized_delivery: bool = True
    array_state: bool = True
    incremental_csr: bool = True
    churn: Tuple[Tuple[float, Hashable, bool], ...] = ()
    traffic: Optional[Tuple[str, Tuple[Tuple[str, object], ...]]] = None
    traffic_seed: Optional[int] = None
    #: Collect the full determinism fingerprint (views, topology edges,
    #: per-node payload sizes).  Benchmarks turn it off: a 100k-node
    #: topology snapshot is pure fingerprint overhead.
    fingerprint: bool = True

    @classmethod
    def create(cls, scenario: str, *, seed: int, duration: float, shards: int = 1,
               params: Optional[Dict[str, object]] = None,
               use_spatial_index: bool = True, vectorized_delivery: bool = True,
               array_state: bool = True, incremental_csr: bool = True, churn=(),
               traffic: Optional[str] = None,
               traffic_params: Optional[Dict[str, object]] = None,
               traffic_seed: Optional[int] = None,
               fingerprint: bool = True) -> "ShardSpec":
        """Build a spec from keyword arguments (dicts and ChurnEvents ok)."""
        churn_rows = []
        for event in churn:
            if isinstance(event, ChurnEvent):
                churn_rows.append((float(event.time), event.node_id, bool(event.active)))
            else:
                time, node_id, active = event
                churn_rows.append((float(time), node_id, bool(active)))
        traffic_value = None
        if traffic is not None:
            traffic_value = (str(traffic), tuple(sorted((traffic_params or {}).items())))
        return cls(scenario=str(scenario),
                   params=tuple(sorted((params or {}).items())),
                   seed=int(seed), duration=float(duration), shards=int(shards),
                   use_spatial_index=bool(use_spatial_index),
                   vectorized_delivery=bool(vectorized_delivery),
                   array_state=bool(array_state),
                   incremental_csr=bool(incremental_csr),
                   churn=tuple(churn_rows),
                   traffic=traffic_value, traffic_seed=traffic_seed,
                   fingerprint=bool(fingerprint))


def _quiesce_timers(process) -> None:
    """Stop every timer attribute of a mirror process.

    Mirrors must never act on their own: their protocol state is owned by
    another shard.  Sweeping the instance attributes keeps this independent
    of the concrete process class (GRPNode carries ``_tc_timer`` and
    ``_ts_timer``; future protocols may differ).
    """
    for value in vars(process).values():
        if isinstance(value, PeriodicTimer):
            value.stop()
        elif isinstance(value, OneShotTimer):
            value.cancel()


class ShardNetwork(Network):
    """Ownership-aware :class:`~repro.net.network.Network`.

    Installed by rebinding ``network.__class__`` after the scenario builder
    returns (the build path stays byte-identical to the reference).  The
    broadcast pipeline is the stock one with a single extra dispatch: a
    receiver owned by another shard gets its accepted delivery appended to
    the outbox instead of a local schedule.  Channel decisions — order and
    RNG consumption — are exactly those of the stock batched/scalar loops.
    """

    def _shard_configure(self, owner_of: Dict[Hashable, int], shard_id: int,
                         outbox: List[OutboxEntry],
                         interior: FrozenSet[Hashable]) -> None:
        self._shard_owner = owner_of
        self._shard_id = shard_id
        self._shard_outbox = outbox
        #: Senders whose whole vicinity is provably owned here (static worlds
        #: only): their broadcasts take the untouched stock path, so the
        #: ownership dispatch taxes only the halo band.
        self._shard_interior = interior
        #: int32 owner id per store row (lazy; nulled on membership changes) —
        #: lets halo broadcasts partition receivers with one array gather
        #: instead of a dict lookup per receiver.
        self._shard_owner_rows: Optional[Any] = None
        # Halo-vs-interior send split for the observatory.  ``_obs`` was
        # re-captured by the finalizer just before this call, so the handles
        # land in the worker's own context.
        obs = self._obs
        self._obs_halo_sends = (obs.registry.counter("shard.halo_sends")
                                if obs else None)
        self._obs_interior_sends = (obs.registry.counter("shard.interior_sends")
                                    if obs else None)

    def add_node(self, process, position) -> None:
        self._shard_owner_rows = None
        super().add_node(process, position)

    def remove_node(self, node_id: Hashable):
        self._shard_owner_rows = None
        return super().remove_node(node_id)

    def _owner_rows_array(self):
        """Owner ids aligned to the node store's rows (int32, cached)."""
        store = self._store
        arr = self._shard_owner_rows
        if arr is None or arr.shape[0] != store.n:
            owner, me = self._shard_owner, self._shard_id
            arr = np.fromiter((owner.get(nid, me) for nid in store.ids[:store.n]),
                              dtype=np.int32, count=store.n)
            self._shard_owner_rows = arr
        return arr

    # ------------------------------------------------------------------ churn

    def activate_node(self, node_id: Hashable) -> None:
        super().activate_node(node_id)
        # Reactivation restarts the process's timers (on_activate contract);
        # a mirror must go straight back to sleep before any of them fires.
        if self._shard_owner.get(node_id, self._shard_id) != self._shard_id:
            _quiesce_timers(self._processes[node_id])

    # -------------------------------------------------------------- messaging

    def broadcast(self, sender: Hashable, payload: Any) -> int:
        if sender in self._shard_interior:
            if (self._obs_interior_sends is not None
                    and self._processes[sender]._active):
                self._obs_interior_sends.inc()
            return Network.broadcast(self, sender, payload)
        sender_proc = self._processes[sender]
        if not sender_proc._active:
            return 0
        self.messages_sent += 1
        if self._obs_broadcasts is not None:
            self._obs_broadcasts.inc()
            self._obs_halo_sends.inc()
        now = self.sim.now
        if self.trace is not None:
            self.trace.record(now, "send", sender=sender)
        linkstate = self._link_state() if self._det_vicinity else None
        if linkstate is not None:
            receivers, _procs, _procs_arr, rows = self._receiver_batch(
                linkstate, sender)
            if not receivers:
                return 0
            # Always the boxed batch decision: its RNG consumption equals the
            # scalar loop's by the decide_batch contract, and unlike the
            # fast hook it reports the per-receiver delays the ownership
            # dispatch needs.  (decide_batch_fast consumes the RNG
            # identically, so the shards=1 reference stays bit-compatible.)
            batch = self.channel.decide_batch(sender, receivers, now)
            if rows is not None and self.trace is None:
                return self._shard_dispatch_fast(sender, payload, receivers,
                                                 rows, batch, now)
            return self._shard_dispatch(sender, payload, receivers,
                                        batch.delivered, batch.delays,
                                        batch.reasons, now)
        sender_pos = self._positions[sender]
        owner, me = self._shard_owner, self._shard_id
        outbox = self._shard_outbox
        accepted = 0
        for receiver in self._vicinity_candidates(sender):
            proc = self._processes[receiver]
            if not proc._active:
                continue
            receiver_pos = self._positions[receiver]
            if not self.radio.in_vicinity(sender, receiver, sender_pos, receiver_pos):
                continue
            decision = self.channel.decide(sender, receiver, now)
            if not decision.delivered:
                self.messages_dropped += 1
                if self._obs_dropped is not None:
                    self._obs_dropped.inc()
                if self.trace is not None:
                    self.trace.record(now, "drop", sender=sender, receiver=receiver,
                                      reason=decision.reason)
                continue
            accepted += 1
            if owner[receiver] != me:
                outbox.append((now + decision.delay, sender, receiver, payload))
            elif decision.delay <= 0:
                self._deliver(sender, receiver, payload)
            else:
                self.sim.schedule(decision.delay, self._deliver, sender, receiver, payload)
        return accepted

    def _shard_dispatch(self, sender: Hashable, payload: Any,
                        receivers: List[Hashable], delivered, delays,
                        reasons, now: float) -> int:
        """Stock generic delivery loop plus the ownership fork.

        Sends and drops are accounted at the deciding (sender) shard; a
        delivery is accounted where it executes (the receiver's owner).
        """
        owner, me = self._shard_owner, self._shard_id
        outbox = self._shard_outbox
        processes = self._processes
        schedule = self.sim.schedule
        trace = self.trace
        obs = self._obs
        accepted = 0
        for i, receiver in enumerate(receivers):
            if not delivered[i]:
                self.messages_dropped += 1
                if obs is not None:
                    self._obs_dropped.inc()
                if trace is not None:
                    trace.record(now, "drop", sender=sender, receiver=receiver,
                                 reason=reasons[i] if reasons is not None else "loss")
                continue
            accepted += 1
            delay = delays[i]
            if owner[receiver] != me:
                outbox.append((now + delay, sender, receiver, payload))
            elif delay <= 0:
                proc = processes.get(receiver)
                if proc is None or not proc._active:
                    continue
                self.messages_delivered += 1
                if obs is not None:
                    self._obs_delivered.inc()
                if trace is not None:
                    trace.record(now, "receive", sender=sender, receiver=receiver)
                proc.deliver(sender, payload)
            else:
                schedule(delay, self._deliver, sender, receiver, payload)
        return accepted

    def _shard_dispatch_fast(self, sender: Hashable, payload: Any,
                             receivers: List[Hashable], rows: Any,
                             batch: Any, now: float) -> int:
        """Mask-partitioned ownership dispatch for array-backed receiver sets.

        Bit-identical to :meth:`_shard_dispatch` under the caller's
        ``trace is None`` gate: drops consume no event seqs (bulk-counted),
        outbox appends consume no seqs either (hoistable ahead of the local
        interleave, and kept in receiver order so the coordinator's stable
        sort sees the scalar sequence), and when every local delay is
        positive the locals go through ``schedule_many`` — contiguous seqs
        identical to the scalar loop's consecutive ``schedule`` calls.  Any
        zero-delay local falls back to the per-index loop, which *is* the
        scalar loop restricted to local receivers.
        """
        delivered, delays = batch.delivered, batch.delays
        accepted = batch.n_accepted
        if accepted is None:
            accepted = batch.accepted()
        n = len(receivers)
        obs = self._obs
        dropped = n - accepted
        if dropped:
            self.messages_dropped += dropped
            if obs is not None:
                self._obs_dropped.inc(dropped)
        if accepted == 0:
            return 0
        if accepted == n:
            didx = np.arange(n)
        elif batch.delivered_array is not None:
            didx = np.flatnonzero(batch.delivered_array)
        else:
            didx = np.flatnonzero(np.fromiter(delivered, dtype=bool, count=n))
        owner_rows = self._owner_rows_array()
        remote_mask = owner_rows[rows[didx]] != self._shard_id
        if remote_mask.any():
            outbox = self._shard_outbox
            for i in didx[remote_mask].tolist():
                outbox.append((now + delays[i], sender, receivers[i], payload))
            local_idx = didx[~remote_mask]
        else:
            local_idx = didx
        local_list = local_idx.tolist()
        if not local_list:
            return accepted
        if not batch.zero_delay and min(delays[i] for i in local_list) > 0:
            self.sim.schedule_many(
                [delays[i] for i in local_list], self._deliver,
                [(sender, receivers[i], payload) for i in local_list])
            return accepted
        processes = self._processes
        schedule = self.sim.schedule
        deliver = self._deliver
        for i in local_list:
            delay = delays[i]
            receiver = receivers[i]
            if delay <= 0:
                proc = processes.get(receiver)
                if proc is None or not proc._active:
                    continue
                self.messages_delivered += 1
                if obs is not None:
                    self._obs_delivered.inc()
                proc.deliver(sender, payload)
            else:
                schedule(delay, deliver, sender, receiver, payload)
        return accepted


class ShardWorld:
    """One shard's fully built slice of the run described by ``spec``.

    Construction has two halves.  :meth:`build_base` runs the scenario
    builder and channel swap — the shard-independent part — and
    :meth:`_finalize` does the shard-specific part: tiling, ownership, the
    :class:`ShardNetwork` rebind, traffic/churn attachment, process start
    and mirror quiescing.  ``__init__`` chains both (the replicated build).
    :meth:`snapshot_base` pickles the post-build state once so every worker
    can :meth:`from_snapshot` — O(build + shards × restore) instead of
    O(shards × build), and bit-identical because *nothing* shard-specific
    (and nothing random) happens between the snapshot point and
    ``_finalize``: the sim queue is empty, the event-seq counter is 0 and
    all RNG states are exactly post-build in both paths.

    ``base_phase_s`` records how long the shard-independent half took on
    this instance — the scenario build in ``__init__``, the unpickle in
    ``from_snapshot`` — which is exactly the cost the snapshot path
    amortizes (``_finalize`` runs identically either way).
    """

    def __init__(self, spec: ShardSpec, shard_id: int):
        t0 = time.perf_counter()
        deployment, lookahead = self.build_base(spec)
        self.base_phase_s = time.perf_counter() - t0
        self._finalize(spec, shard_id, deployment, lookahead)

    @classmethod
    def from_snapshot(cls, spec: ShardSpec, shard_id: int,
                      blob: bytes) -> "ShardWorld":
        """Restore the shared post-build state, then finalize this shard."""
        world = cls.__new__(cls)
        obs = _obs_current()
        obs_t0 = obs.clock() if obs is not None else 0
        t0 = time.perf_counter()
        # Unpickling a 100k-node object graph triggers many full GC passes
        # (every process/node allocation is a new container); pausing the
        # collector for the restore is worth ~3x and is safe — the blob is a
        # closed object graph with no cycles created mid-load that must be
        # reclaimed before the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            deployment, lookahead = pickle.loads(blob)
        except Exception as exc:  # pragma: no cover - defensive
            raise ShardUnsupportedError(
                f"world snapshot failed to restore: {exc!r}") from exc
        finally:
            if gc_was_enabled:
                gc.enable()
        world.base_phase_s = time.perf_counter() - t0
        if obs is not None:
            obs.record_span("shard.snapshot_restore", 0.0, obs_t0,
                            {"bytes": len(blob)})
        world._finalize(spec, shard_id, deployment, lookahead)
        return world

    # ------------------------------------------------------------------ build

    @staticmethod
    def build_base(spec: ShardSpec):
        """Scenario build + channel swap: everything shard-independent.

        Returns ``(deployment, lookahead)`` — the exact state every shard
        starts finalizing from, whether built locally or restored from a
        snapshot.
        """
        deployment = build_scenario(
            ScenarioSpec.create(spec.scenario, **dict(spec.params)), seed=spec.seed)
        network = deployment.network
        if type(network) is not Network:
            raise ShardUnsupportedError(
                f"cannot shard a {type(network).__name__}; only the stock Network "
                "supports the ownership rebind")
        network.use_spatial_index = spec.use_spatial_index
        network.vectorized_delivery = spec.vectorized_delivery
        network.array_state = spec.array_state
        network.incremental_csr = spec.incremental_csr

        lookahead = ShardWorld._swap_channel(network, spec.seed)

        max_range = network.radio.max_range()
        if max_range is None or max_range <= 0:
            raise ShardUnsupportedError(
                "sharding needs a bounded radio (max_range() > 0) to derive "
                "spatial tiles and halo widths")
        return deployment, lookahead

    @staticmethod
    def snapshot_base(spec: ShardSpec) -> bytes:
        """Build once and pickle the shared post-build state.

        The blob captures the deployment wholesale — NodeArrayStore arrays,
        per-node protocol state, per-sender RNG states, the (empty) event
        queue — so a worker's restore skips the scenario builder entirely.
        Worlds holding unpicklable pieces (tracers, observability handles
        with live clocks) raise :class:`ShardUnsupportedError`; callers fall
        back to the replicated build.
        """
        deployment, lookahead = ShardWorld.build_base(spec)
        try:
            return pickle.dumps((deployment, lookahead),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ShardUnsupportedError(
                f"world state is not snapshot-serializable: {exc!r}") from exc

    def _finalize(self, spec: ShardSpec, shard_id: int, deployment,
                  lookahead: float) -> None:
        """Shard-specific construction tail, common to build and restore."""
        if not 0 <= shard_id < spec.shards:
            raise ValueError(f"shard_id {shard_id} out of range [0, {spec.shards})")
        self.spec = spec
        self.shard_id = shard_id
        self.outbox = []
        self.shared_events = 0
        self.remote_in = 0
        self.deployment = deployment
        self.sim = deployment.sim
        network = deployment.network
        self.network = network
        self.lookahead = lookahead

        # Re-capture the process-local obs context before anything
        # shard-specific runs: a snapshot-restored deployment carries the
        # builder process's (usually absent) handles, so without this a
        # ``build="snapshot"`` worker would be observationally blind while a
        # ``build="replicate"`` one is not.  Idempotent for replicated builds
        # (the worker's context was already current at construction time).
        obs = _obs_current()
        self._obs = obs
        self._obs_windows = obs.registry.counter("shard.windows") if obs else None
        self._obs_outbox = (obs.registry.counter("shard.outbox_entries")
                            if obs else None)
        self._obs_remote = obs.registry.counter("shard.remote_in") if obs else None
        deployment.sim.recapture_obs()
        network.recapture_obs()
        for node in deployment.nodes.values():
            if hasattr(node, "_obs"):
                node._obs = obs

        max_range = network.radio.max_range()
        positions = dict(network.positions)
        self.tiles = TileMap.from_positions(positions, max_range, spec.shards)
        self.owners: Dict[Hashable, int] = self.tiles.assign(positions)
        self.owned: List[Hashable] = sorted(
            (nid for nid, tile in self.owners.items() if tile == shard_id), key=str)
        owned_set = set(self.owned)

        interior = self._interior_senders(positions, owned_set, max_range)
        network.__class__ = ShardNetwork
        network._shard_configure(self.owners, shard_id, self.outbox, interior)

        self._count_mobility(network)
        self.driver = self._attach_traffic(deployment, owned_set)
        self.churn = self._install_churn(spec.churn)

        deployment.start()
        # One direct lookup per mirror: the ``processes`` property copies the
        # whole mapping, which would make this loop quadratic in world size.
        for nid in self.owners:
            if nid not in owned_set:
                _quiesce_timers(network.process(nid))

    @staticmethod
    def _swap_channel(network: Network, seed: int) -> float:
        """Replace the built channel with a partition-invariant one.

        Returns the cross-shard lookahead: the minimum delay any channel
        decision can assign, i.e. how far ahead a shard may run before it
        could receive something it has not been told about.
        """
        channel = network.channel
        if isinstance(channel, CollisionChannel):
            raise ShardUnsupportedError(
                "CollisionChannel couples senders through receiver-side state "
                "and cannot be partitioned bit-identically")
        if isinstance(channel, LossyChannel):
            network.channel = PerSenderChannel.from_lossy(
                channel, derive_seed(seed, "shard/channel"))
            return network.channel.min_delay
        if isinstance(channel, PerfectChannel):
            # Deterministic: no RNG to partition, keep it as built.
            return channel.delay
        raise ShardUnsupportedError(
            f"cannot shard channel model {type(channel).__name__}")

    def _interior_senders(self, positions, owned_set, max_range) -> FrozenSet[Hashable]:
        """Owned senders that provably cannot reach another shard's nodes.

        Only valid on static fields: mobility can carry a sender (or its
        receivers) across the halo boundary mid-run.  With one shard, every
        sender is interior — the whole run takes the stock pipeline, which
        makes ``shards=1`` the natural reference fingerprint.
        """
        if self.spec.shards == 1:
            return frozenset(owned_set)
        if self.network.mobility is not None:
            return frozenset()
        lo, hi = self.tiles.x_interval(self.shard_id)
        return frozenset(nid for nid in owned_set
                         if lo + max_range <= positions[nid][0] < hi - max_range)

    def _count_mobility(self, network: Network) -> None:
        """Wrap the mobility model's step to count replicated tick events."""
        model = network.mobility
        if model is None:
            return
        original_step = model.step
        world = self

        def counted_step(positions, dt):
            world.shared_events += 1
            return original_step(positions, dt)

        model.step = counted_step

    def _attach_traffic(self, deployment, owned_set) -> Optional[TrafficDriver]:
        spec = self.spec
        if spec.traffic is None:
            return None
        name, params = spec.traffic
        if name not in SUPPORTED_TRAFFIC:
            raise ShardUnsupportedError(
                f"traffic pattern {name!r} draws randomness over the whole node "
                f"census and cannot be partitioned; supported: "
                f"{sorted(SUPPORTED_TRAFFIC)}")
        nodes = deployment.nodes
        owned_nodes = {nid: nodes[nid] for nid in nodes if nid in owned_set}

        def group_of(node_id, _nodes=nodes):
            return _nodes[node_id].current_view()

        seed = spec.traffic_seed if spec.traffic_seed is not None else spec.seed
        driver = TrafficDriver(sim=self.sim, network=self.network,
                               processes=owned_nodes,
                               spec=TrafficSpec.create(name, **dict(params)),
                               seed=seed, group_of=group_of)
        driver.start()
        return driver

    def _install_churn(self, churn_rows) -> Optional[ChurnSchedule]:
        if not churn_rows:
            return None
        schedule = ChurnSchedule([ChurnEvent(time=t, node_id=n, active=a)
                                  for t, n, a in churn_rows])
        for event in schedule.events:
            self.sim.schedule_at(event.time, self._churn_fire, schedule, event)
        return schedule

    def _churn_fire(self, schedule: ChurnSchedule, event: ChurnEvent) -> None:
        # Replicated in every shard: counted as shared so the merged
        # processed_events subtracts the duplicates.
        self.shared_events += 1
        schedule._apply(self.network, event)

    # ------------------------------------------------------------- round loop

    def peek(self) -> Optional[float]:
        """Earliest pending local event time (``None`` when idle)."""
        return self.sim.peek_time()

    def run_round(self, end: float, inclusive: bool) -> List[OutboxEntry]:
        """Run one synchronized window and return the captured outbox."""
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        self.sim.run_window(end, inclusive=inclusive)
        # Drain in place: the network holds a reference to this exact list.
        out = self.outbox[:]
        self.outbox.clear()
        if obs is not None:
            self._obs_windows.inc()
            if out:
                self._obs_outbox.inc(len(out))
            obs.record_span("shard.window", end, t0,
                            {"outbox": len(out)} if out else None)
        return out

    def apply(self, round_time: float, entries: List[OutboxEntry]) -> None:
        """Apply remote deliveries routed to this shard for the round at
        ``round_time``.

        Entries at the round time itself are zero-delay deliveries: the
        stock pipeline delivers those inline from the broadcast (no event),
        so they are applied inline here too — event-count parity.  Later
        entries become ordinary ``_deliver`` events.
        """
        sim = self.sim
        deliver = self.network._deliver
        self.remote_in += len(entries)
        if self._obs_remote is not None:
            self._obs_remote.inc(len(entries))
        for recv_time, sender, receiver, payload in entries:
            if recv_time <= round_time:
                sim.advance_clock(recv_time)
                deliver(sender, receiver, payload)
            else:
                sim.schedule_at(recv_time, deliver, sender, receiver, payload)

    # ---------------------------------------------------------------- results

    def finish(self, duration: float) -> Dict[str, Any]:
        """This shard's contribution to the merged run result."""
        network = self.network
        deployment = self.deployment
        owned_set = set(self.owned)
        nodes = deployment.nodes
        channel = network.channel
        parts: Dict[str, Any] = {
            "shards": self.spec.shards,
            "shard_id": self.shard_id,
            "node_count": sum(1 for nid in nodes if nid in owned_set),
            "total_nodes": len(nodes),
            "processed_events": self.sim.processed_events,
            "shared_events": self.shared_events,
            "sent": network.messages_sent,
            "delivered": network.messages_delivered,
            "dropped": network.messages_dropped,
            "remote_in": self.remote_in,
            "sim_rng": repr(self.sim.rng.bit_generator.state),
            "channel_rng": (channel.rng_states(owned_set)
                            if isinstance(channel, PerSenderChannel) else {}),
        }
        if self.spec.fingerprint:
            parts["views"] = {nid: view for nid, view in deployment.views().items()
                              if nid in owned_set}
            parts["edges"] = {frozenset(e) for e in deployment.topology().edges}
            # Replicated protocol constant, shipped so an observed coordinator
            # can evaluate the final configuration's predicates.
            parts["dmax"] = deployment.config.dmax
            payload_sizes = []
            computations = 0
            for nid, node in nodes.items():
                if nid not in owned_set:
                    continue
                message = GRPMessage.build(
                    sender=node.node_id,
                    alist=node.alist,
                    priorities=node.priorities.snapshot(node.alist.nodes() | {node.node_id}),
                    group_priority=node.group_priority(),
                    view=node.view,
                )
                payload_sizes.append(message.size_estimate())
                computations += node.computations
            parts["payload_total"] = sum(payload_sizes)
            parts["payload_count"] = len(payload_sizes)
            parts["computations"] = computations
        if self.driver is not None:
            ledger = self.driver.ledger
            # The obs handle is process-local and not picklable state worth
            # shipping; drop it before the ledger crosses the pipe.
            ledger._obs = None
            ledger._obs_sends = None
            ledger._obs_receptions = None
            parts["ledger"] = ledger
        return parts
