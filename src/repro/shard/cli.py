"""Command-line front end for sharded runs: ``python -m repro.shard``.

Runs one scenario split across ``--shards`` workers (``--transport
inproc|mp``, ``--build replicate|snapshot``) and prints a deterministic
summary of the merged fingerprint.  Stdout carries only protocol facts —
counters, a canonical fingerprint digest, traffic totals — so two runs of
the same spec (including an observed vs. unobserved pair) produce
byte-identical stdout; wall-clock stats and the obs digest go to stderr.

``--obs`` wraps every worker in its own :class:`~repro.obs.ObsContext` and
``--obs-out PATH`` (which implies ``--obs``) writes the merged export as a
``repro-obs/v1`` JSONL file, mirroring the experiments CLI conventions.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List, Optional, Tuple

from .runner import run_sharded
from .world import ShardSpec


def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Run one scenario sharded across workers and print the "
                    "merged, deterministic fingerprint summary.")
    parser.add_argument("--scenario", type=str, required=False,
                        help="Scenario name from the registry (see --list-scenarios).")
    parser.add_argument("--set", dest="set_params", action="append", default=[],
                        metavar="PARAM=VALUE",
                        help="Pin a scenario parameter (repeatable).")
    parser.add_argument("--seed", type=int, default=42, help="Base RNG seed.")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="Simulated seconds to run.")
    parser.add_argument("--shards", type=int, default=2,
                        help="Number of shard workers (>= 1).")
    parser.add_argument("--transport", choices=("inproc", "mp"), default="inproc",
                        help="Worker transport: in-process reference or one "
                             "OS process per shard.")
    parser.add_argument("--build", choices=("replicate", "snapshot"),
                        default="replicate",
                        help="Worker construction: re-run the scenario builder "
                             "per worker, or build once and restore snapshots.")
    parser.add_argument("--traffic", type=str, default=None,
                        help="Optional application workload name.")
    parser.add_argument("--traffic-set", dest="traffic_set_params",
                        action="append", default=[], metavar="PARAM=VALUE",
                        help="Pin a traffic parameter (repeatable).")
    parser.add_argument("--no-fingerprint", action="store_true",
                        help="Skip the full fingerprint (views/edges/report); "
                             "counters and RNG states only.")
    parser.add_argument("--obs", action="store_true",
                        help="Observe every worker under its own ObsContext "
                             "and merge the exports (digest on stderr).")
    parser.add_argument("--obs-out", type=str, default=None, metavar="PATH",
                        help="Write the merged obs export as repro-obs/v1 "
                             "JSONL (implies --obs).")
    parser.add_argument("--json", action="store_true",
                        help="Emit the summary as one canonical JSON object "
                             "instead of text lines.")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="List registered scenarios and exit.")
    return parser.parse_args(argv)


def _coerce_params(scenario: str, assignments: List[str],
                   flag: str) -> Dict[str, object]:
    """Coerce PARAM=VALUE strings against the scenario's schema."""
    from repro.scenarios import get_scenario

    definition = get_scenario(scenario)
    params: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ValueError(f"{flag} expects PARAM=VALUE, got {assignment!r}")
        params[key] = definition.parameter(key).coerce(value)
    return params


def _coerce_traffic_params(assignments: List[str]) -> Dict[str, object]:
    """Best-effort literal coercion for traffic overrides (int/float/str)."""
    params: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ValueError(f"--traffic-set expects PARAM=VALUE, got {assignment!r}")
        for cast in (int, float):
            try:
                params[key] = cast(value)
                break
            except ValueError:
                continue
        else:
            params[key] = value
    return params


def _canonical(value: object) -> object:
    """Map a fingerprint fragment to a stable JSON-serializable shape."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in
                sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        # Canonicalize members recursively, then order by their JSON form
        # (members may themselves be frozensets, e.g. topology edges).
        members = [_canonical(v) for v in value]
        return sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
    return value


def fingerprint_digest(fingerprint: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of the merged fingerprint."""
    blob = json.dumps(_canonical(fingerprint), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _summary_lines(spec: ShardSpec, transport: str, build: str,
                   result) -> List[str]:
    fp = result.fingerprint
    lines = [
        f"sharded run: scenario={spec.scenario} seed={spec.seed} "
        f"duration={spec.duration} shards={spec.shards} "
        f"transport={transport} build={build}",
        f"events={fp['processed_events']} sent={fp['sent']} "
        f"delivered={fp['delivered']} dropped={fp['dropped']}",
        f"fingerprint={fingerprint_digest(fp)}",
    ]
    if "report" in fp:
        report = fp["report"]
        lines.append("report: " + " ".join(
            f"{key}={report[key]}" for key in sorted(report)))
    if result.traffic is not None:
        traffic = result.traffic
        lines.append(
            f"traffic: app_sent={traffic['app_sent']} "
            f"app_receptions={traffic['app_receptions']} "
            f"requests={traffic['requests']} replies={traffic['replies']}")
    return lines


def _obs_digest(merged: Dict[str, object]) -> str:
    """One-line counter + event digest for stderr."""
    counters = merged.get("counters", {})
    parts = [f"{name}={value}" for name, value in sorted(counters.items())]
    events = merged.get("events", {})
    if events:
        parts.append(f"events={events.get('count', 0)}")
        kinds = events.get("kinds", {})
        if kinds:
            parts.append("kinds=" + ",".join(
                f"{kind}:{count}" for kind, count in sorted(kinds.items())))
    return ", ".join(parts) or "no observations recorded"


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_scenarios:
        from repro.scenarios import format_catalog
        print(format_catalog())
        return 0
    if not args.scenario:
        print("--scenario is required (see --list-scenarios)", file=sys.stderr)
        return 2
    try:
        params = _coerce_params(args.scenario, args.set_params, "--set")
        traffic_params = _coerce_traffic_params(args.traffic_set_params)
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    obs = bool(args.obs or args.obs_out)
    spec = ShardSpec.create(
        args.scenario, seed=args.seed, duration=args.duration,
        shards=args.shards, params=params,
        traffic=args.traffic, traffic_params=traffic_params or None,
        fingerprint=not args.no_fingerprint)
    result = run_sharded(spec, transport=args.transport, build=args.build,
                         obs=obs)
    if args.json:
        payload = {
            "scenario": spec.scenario,
            "seed": spec.seed,
            "duration": spec.duration,
            "shards": spec.shards,
            "transport": args.transport,
            "build": args.build,
            "fingerprint_digest": fingerprint_digest(result.fingerprint),
            "events": result.fingerprint["processed_events"],
            "sent": result.fingerprint["sent"],
            "delivered": result.fingerprint["delivered"],
            "dropped": result.fingerprint["dropped"],
        }
        if "report" in result.fingerprint:
            payload["report"] = result.fingerprint["report"]
        if result.traffic is not None:
            payload["traffic"] = {
                key: result.traffic[key]
                for key in ("app_sent", "app_receptions", "requests", "replies")}
        print(json.dumps(payload, sort_keys=True))
    else:
        for line in _summary_lines(spec, args.transport, args.build, result):
            print(line)
    # Wall-clock facts and the obs digest stay on stderr so stdout is
    # byte-identical between observed and unobserved runs of the same spec.
    stats = result.stats
    print(f"wall: build={stats['build_s']:.3f}s run={stats['run_s']:.3f}s "
          f"rounds={stats.get('rounds', '?')}", file=sys.stderr)
    if obs and result.obs is not None:
        merged = result.obs["merged"]
        print(f"obs: {_obs_digest(merged)}", file=sys.stderr, flush=True)
        if args.obs_out:
            from repro.obs import write_blob_jsonl
            write_blob_jsonl(args.obs_out, merged,
                             meta={"scenario": spec.scenario,
                                   "seed": spec.seed,
                                   "duration": spec.duration,
                                   "shards": spec.shards,
                                   "transport": args.transport,
                                   "build": args.build,
                                   "per_shard": len(result.obs["per_shard"])})
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
