"""Spatial tiles: contiguous x-bands of grid cells, one per shard worker.

The sharded executor (:mod:`repro.shard.runner`) splits one simulated field
across workers *by grid region*: the columns of the network's
:class:`~repro.net.spatialindex.UniformGridIndex` (cell side = the radio's
``max_range``) are cut into contiguous x-bands balanced by node count
(:func:`repro.net.spatialindex.x_tile_cuts`), and every node is owned by the
tile containing its initial position.  Ownership is **static**: protocol
state lives at the owner for the whole run, so a mobile node that wanders
into another tile's territory keeps its owner (its traffic just crosses the
shard boundary more often).

The *halo* of a tile is the band within one ``max_range`` of a tile edge:
only senders positioned there can reach receivers owned by a neighbouring
tile, which is what makes the interior-sender fast path of
:class:`repro.shard.world.ShardNetwork` safe on static fields.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Sequence, Tuple

from repro.net.spatialindex import x_tile_cuts

__all__ = ["TileMap"]


@dataclass(frozen=True)
class TileMap:
    """Assignment of grid x-columns to ``tiles`` contiguous spatial tiles.

    ``cuts`` are the ascending cut columns from
    :func:`~repro.net.spatialindex.x_tile_cuts`: tile ``t`` owns every column
    ``c`` with ``cuts[t-1] < c <= cuts[t]`` (open-ended at both extremes, so
    any position — however far mobility strays — maps to exactly one tile).
    """

    cuts: Tuple[int, ...]
    cell_size: float
    tiles: int

    @classmethod
    def from_positions(cls, positions: Mapping[Hashable, Sequence[float]],
                       cell_size: float, tiles: int) -> "TileMap":
        """Balance ``tiles`` x-bands over the given node positions."""
        xs = [pos[0] for pos in positions.values()]
        cuts = x_tile_cuts(xs, cell_size, tiles)
        return cls(cuts=tuple(cuts), cell_size=float(cell_size), tiles=int(tiles))

    def tile_of_x(self, x: float) -> int:
        """Tile owning the column that contains x-coordinate ``x``."""
        return bisect_left(self.cuts, math.floor(x / self.cell_size))

    def tile_of(self, position: Sequence[float]) -> int:
        """Tile owning ``position`` (only the x-coordinate matters)."""
        return self.tile_of_x(position[0])

    def assign(self, positions: Mapping[Hashable, Sequence[float]]) -> Dict[Hashable, int]:
        """Owner tile of every node, keyed by node id."""
        return {node: self.tile_of_x(pos[0]) for node, pos in positions.items()}

    def x_interval(self, tile: int) -> Tuple[float, float]:
        """Coordinate interval ``[lo, hi)`` covered by ``tile``'s columns.

        The first tile is unbounded below, the last unbounded above.  A
        position ``x`` satisfies ``lo <= x < hi`` exactly when
        :meth:`tile_of_x` returns ``tile`` (same floor convention as
        :meth:`~repro.net.spatialindex.UniformGridIndex.cell_key`).
        """
        if not 0 <= tile < self.tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.tiles})")
        lo = -math.inf if tile == 0 else (self.cuts[tile - 1] + 1) * self.cell_size
        hi = math.inf if tile == self.tiles - 1 else (self.cuts[tile] + 1) * self.cell_size
        return lo, hi
