"""Per-sender channel randomness for shard-partitioned execution.

The stock :class:`~repro.net.channel.LossyChannel` consumes one global RNG
stream in broadcast order.  That stream is inherently sequential: shard
workers interleave *their own* senders' broadcasts differently than the
single-process run would, so a shared stream can never replay bit-identically
across worker counts.

:class:`PerSenderChannel` removes the coupling: every sender gets its own
:class:`~repro.net.channel.LossyChannel` seeded from
``derive_seed(master_seed, "sender/<id>")``.  A sender's decisions then
depend only on its own broadcast history — which the sharded executor
replicates exactly at the sender's owner shard — so the decision stream is
invariant under any partitioning of the senders.  The reference fingerprint
for the sharded determinism matrix is the sharded engine at ``shards=1``,
which runs every sender through this same wrapper.

Sub-channels are created lazily on a sender's first broadcast.  Laziness is
safe: each sub-stream is a pure function of ``(master_seed, sender)``, never
of creation order, and whether a sender ever broadcasts is itself replayed
deterministically.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.net.channel import BatchDecisions, ChannelDecision, ChannelModel, LossyChannel
from repro.sim.randomness import derive_seed

__all__ = ["PerSenderChannel"]


class PerSenderChannel(ChannelModel):
    """Lossy channel with an independent random sub-stream per sender.

    Parameters mirror :class:`~repro.net.channel.LossyChannel`; ``master_seed``
    roots the per-sender seed derivation.
    """

    def __init__(self, loss_probability: float, min_delay: float,
                 max_delay: float, master_seed: int):
        probe = LossyChannel(loss_probability, min_delay, max_delay)
        self.loss_probability = probe.loss_probability
        self.min_delay = probe.min_delay
        self.max_delay = probe.max_delay
        self.master_seed = int(master_seed)
        self._subs: Dict[Hashable, LossyChannel] = {}

    @classmethod
    def from_lossy(cls, channel: LossyChannel, master_seed: int) -> "PerSenderChannel":
        """Wrap the parameters of an existing lossy channel."""
        return cls(channel.loss_probability, channel.min_delay,
                   channel.max_delay, master_seed)

    def _sub(self, sender: Hashable) -> LossyChannel:
        sub = self._subs.get(sender)
        if sub is None:
            rng = np.random.default_rng(
                derive_seed(self.master_seed, f"sender/{sender}"))
            sub = LossyChannel(self.loss_probability, self.min_delay,
                               self.max_delay, rng=rng)
            self._subs[sender] = sub
        return sub

    # Aggregated drop/deliver counters over every sub-channel, so diagnostics
    # reading channel.dropped keep working against the wrapper.
    @property
    def dropped(self) -> int:
        return sum(sub.dropped for sub in self._subs.values())

    @property
    def delivered(self) -> int:
        return sum(sub.delivered for sub in self._subs.values())

    def decide(self, sender, receiver, time) -> ChannelDecision:
        return self._sub(sender).decide(sender, receiver, time)

    def decide_batch(self, sender, receivers, time) -> BatchDecisions:
        return self._sub(sender).decide_batch(sender, receivers, time)

    def decide_batch_fast(self, sender, receivers, time):
        return self._sub(sender).decide_batch_fast(sender, receivers, time)

    def rng_states(self, senders=None) -> Dict[str, str]:
        """Post-run per-sender RNG fingerprints, keyed by ``str(sender)``.

        Only senders with a materialized sub-stream appear; restricting to
        ``senders`` lets a shard report exactly its owned nodes.
        """
        subs = self._subs
        if senders is not None:
            keep = set(senders)
            items = [(s, ch) for s, ch in subs.items() if s in keep]
        else:
            items = list(subs.items())
        return {str(sender): repr(ch._rng.bit_generator.state)
                for sender, ch in items}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"PerSenderChannel(p={self.loss_probability}, "
                f"delay=[{self.min_delay}, {self.max_delay}], "
                f"senders={len(self._subs)})")
