"""Coordinator for sharded execution: windows, exchange, merge.

The conservative synchronization loop (classic null-message-free PDES with a
global reduction, sized for a handful of shards):

1. every shard reports the time of its earliest pending event;
2. the coordinator picks the global minimum ``t`` (ignoring shards already
   past the run horizon) and opens a window — ``[t, t]`` inclusive when the
   channel lookahead is zero (lockstep round per distinct timestamp),
   ``[t, t + L)`` exclusive when the minimum channel delay ``L`` is positive
   (clamped inclusively to the horizon);
3. shards whose next event falls inside the window execute it with
   :meth:`~repro.sim.engine.Simulator.run_window`, capturing cross-shard
   deliveries in their outboxes (the channel guarantees every capture's
   receive time is at or beyond the window end, so no shard ever misses a
   message it should already have seen);
4. outboxes are concatenated in shard order, stably sorted by receive time,
   routed to each receiver's owner and applied — inline for zero-delay
   entries, as scheduled events otherwise;
5. repeat until no shard holds an event at or before the horizon.

Two transports run the same loop: ``inproc`` hosts every shard in the
calling process (the bit-identity reference and the default for tests) and
``mp`` spawns one OS process per shard (fresh-interpreter ``spawn`` context,
command pipes), which is where multi-core hardware buys wall-clock speedup.

The merge reassembles the exact single-process result: counters sum, the
replicated event count is subtracted ``k - 1`` times, per-shard views and
per-sender channel RNG states union disjointly, replicated facts (topology
edges, root RNG state, shared event count) are asserted identical across
shards, and traffic ledgers fold through
:meth:`~repro.traffic.ledger.DeliveryLedger.merge_from`.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs import ObsContext, enable as _obs_enable, observing

from .world import OutboxEntry, ShardSpec, ShardWorld

__all__ = ["ShardRunResult", "run_sharded"]


@dataclass
class ShardRunResult:
    """Merged outcome of one sharded run.

    ``fingerprint`` carries the determinism-relevant protocol facts (event
    and message counters, views, edges, overhead report, RNG states) in the
    shape the replay-determinism suite compares.  ``traffic`` holds the
    merged application-ledger facts when a workload was attached.  ``stats``
    is diagnostic only (per-shard breakdowns, round counts, remote delivery
    counts) and intentionally k-dependent.  ``obs`` (observed runs only)
    carries ``{"merged": blob, "per_shard": [blob, ...]}`` — every worker's
    :class:`~repro.obs.ObsContext` export plus their
    :meth:`~repro.obs.ObsContext.merge` fold, with the coordinator's final
    convergence milestone appended to the merged stream.
    """

    fingerprint: Dict[str, Any]
    traffic: Optional[Dict[str, Any]]
    stats: Dict[str, Any]
    obs: Optional[Dict[str, Any]] = field(default=None)


# ------------------------------------------------------------------- hosts

class _InprocHost:
    """A shard living in the coordinator's own process.

    With ``obs`` on, the world is built under its own :class:`ObsContext`;
    the capture-once contract means everything the world does afterwards
    (windows, deliveries, protocol events) keeps landing in that context
    even though it is deinstalled once construction returns — so several
    in-process shards observe into disjoint contexts, exactly like the mp
    transport's per-process ones.
    """

    def __init__(self, spec: ShardSpec, shard_id: int,
                 snapshot: Optional[bytes] = None, obs: bool = False):
        self.obs_ctx: Optional[ObsContext] = ObsContext() if obs else None
        t0 = time.perf_counter()
        if self.obs_ctx is not None:
            with observing(self.obs_ctx):
                self.world = self._build(spec, shard_id, snapshot)
        else:
            self.world = self._build(spec, shard_id, snapshot)
        self.build_s = time.perf_counter() - t0
        self.base_phase_s = self.world.base_phase_s
        self.peek = self.world.peek()
        self.lookahead = self.world.lookahead
        self.owners = self.world.owners
        self._out: List[OutboxEntry] = []

    @staticmethod
    def _build(spec: ShardSpec, shard_id: int,
               snapshot: Optional[bytes]) -> ShardWorld:
        if snapshot is not None:
            return ShardWorld.from_snapshot(spec, shard_id, snapshot)
        return ShardWorld(spec, shard_id)

    def submit_round(self, end: float, inclusive: bool) -> None:
        self._out = self.world.run_round(end, inclusive)

    def collect_round(self) -> Tuple[List[OutboxEntry], Optional[float]]:
        out, self._out = self._out, []
        return out, self.world.peek()

    def submit_apply(self, round_time: float, entries: List[OutboxEntry]) -> None:
        self.world.apply(round_time, entries)

    def collect_apply(self) -> Optional[float]:
        return self.world.peek()

    def submit_finish(self, duration: float) -> None:
        self._parts = self.world.finish(duration)

    def collect_finish(self) -> Dict[str, Any]:
        return self._parts

    def close(self) -> None:
        pass


def _shard_worker_main(conn, spec: ShardSpec, shard_id: int,
                       snapshot_path: Optional[str] = None,
                       obs: bool = False) -> None:
    """Serve one shard over a command pipe (runs in a spawned process).

    With ``obs`` on, the worker installs a fresh :class:`ObsContext` before
    building its world (so every component captures it), times its pipe
    waits as ``shard.barrier_wait`` spans, and ships the whole context back
    with the finish parts — contexts are plain picklable observation state.
    """
    try:
        ctx = _obs_enable(ObsContext()) if obs else None
        t0 = time.perf_counter()
        if snapshot_path is not None:
            with open(snapshot_path, "rb") as fh:
                blob = fh.read()
            world = ShardWorld.from_snapshot(spec, shard_id, blob)
        else:
            world = ShardWorld(spec, shard_id)
        build_s = time.perf_counter() - t0
        conn.send(("ready", world.peek(), world.lookahead, world.owners,
                   build_s, world.base_phase_s))
        while True:
            if ctx is not None:
                wait_t0 = ctx.clock()
                msg = conn.recv()
                ctx.record_span("shard.barrier_wait", world.sim.now, wait_t0)
            else:
                msg = conn.recv()
            cmd = msg[0]
            if cmd == "round":
                out = world.run_round(msg[1], msg[2])
                conn.send(("ok", out, world.peek()))
            elif cmd == "apply":
                world.apply(msg[1], msg[2])
                conn.send(("ok", world.peek()))
            elif cmd == "finish":
                conn.send(("ok", world.finish(msg[1]), ctx))
                conn.close()
                return
            elif cmd == "stop":
                conn.close()
                return
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown shard command {cmd!r}")
    except Exception:  # pragma: no cover - exercised only on worker crashes
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


class _MpHost:
    """A shard living in its own spawned OS process."""

    def __init__(self, ctx, spec: ShardSpec, shard_id: int,
                 snapshot_path: Optional[str] = None, obs: bool = False):
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_shard_worker_main,
                                args=(child, spec, shard_id, snapshot_path, obs),
                                daemon=True)
        self.proc.start()
        child.close()
        self.peek: Optional[float] = None
        self.lookahead: float = 0.0
        self.owners: Dict[Hashable, int] = {}
        self.build_s: float = 0.0
        self.base_phase_s: float = 0.0
        self.obs_ctx: Optional[ObsContext] = None

    def await_ready(self) -> None:
        (_, self.peek, self.lookahead, self.owners,
         self.build_s, self.base_phase_s) = self._recv()

    def _recv(self):
        msg = self.conn.recv()
        if msg[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{msg[1]}")
        return msg

    def submit_round(self, end: float, inclusive: bool) -> None:
        self.conn.send(("round", end, inclusive))

    def collect_round(self) -> Tuple[List[OutboxEntry], Optional[float]]:
        _, out, peek = self._recv()
        return out, peek

    def submit_apply(self, round_time: float, entries: List[OutboxEntry]) -> None:
        self.conn.send(("apply", round_time, entries))

    def collect_apply(self) -> Optional[float]:
        return self._recv()[1]

    def submit_finish(self, duration: float) -> None:
        self.conn.send(("finish", duration))

    def collect_finish(self) -> Dict[str, Any]:
        msg = self._recv()
        parts = msg[1]
        self.obs_ctx = msg[2]
        self.proc.join(timeout=60)
        return parts

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=10)


# -------------------------------------------------------------- coordinator

def _coordinate(hosts, owners: Dict[Hashable, int], lookahead: float,
                duration: float) -> Dict[str, int]:
    """Drive the synchronized window loop until the horizon; return stats."""
    peeks: List[Optional[float]] = [host.peek for host in hosts]
    rounds = 0
    exchanged = 0
    while True:
        live = [i for i, p in enumerate(peeks) if p is not None and p <= duration]
        if not live:
            break
        t = min(peeks[i] for i in live)
        if lookahead > 0:
            end = t + lookahead
            inclusive = end >= duration
            if inclusive:
                end = duration
        else:
            end, inclusive = t, True
        # Only shards with work inside the window run it; the others would
        # execute nothing, so skipping their round-trip is an exact no-op.
        if inclusive:
            active = [i for i in live if peeks[i] <= end]
        else:
            active = [i for i in live if peeks[i] < end]
        rounds += 1
        for i in active:
            hosts[i].submit_round(end, inclusive)
        entries: List[OutboxEntry] = []
        for i in active:
            out, peeks[i] = hosts[i].collect_round()
            entries.extend(out)
        if entries:
            # Stable sort on receive time over the shard-ordered concatenation:
            # one deterministic application order whatever the transport.
            entries.sort(key=lambda entry: entry[0])
            exchanged += len(entries)
            batches: Dict[int, List[OutboxEntry]] = {}
            for entry in entries:
                batches.setdefault(owners[entry[2]], []).append(entry)
            targets = sorted(batches)
            for shard in targets:
                hosts[shard].submit_apply(t, batches[shard])
            for shard in targets:
                peeks[shard] = hosts[shard].collect_apply()
    return {"rounds": rounds, "remote_deliveries": exchanged}


# -------------------------------------------------------------------- merge

def _require_consensus(parts: List[Dict[str, Any]], key: str):
    """Replicated facts must be byte-equal in every shard."""
    reference = parts[0][key]
    for part in parts[1:]:
        if part[key] != reference:
            raise RuntimeError(
                f"sharded run diverged: {key} differs between shard 0 and "
                f"shard {part['shard_id']} — the partition leaked into "
                f"replicated state")
    return reference


def _merge(spec: ShardSpec, parts: List[Dict[str, Any]],
           loop_stats: Dict[str, int], transport: str) -> ShardRunResult:
    k = len(parts)
    duration = spec.duration
    shared = _require_consensus(parts, "shared_events")
    sim_rng = _require_consensus(parts, "sim_rng")
    total_nodes = _require_consensus(parts, "total_nodes")
    if sum(p["node_count"] for p in parts) != total_nodes:
        raise RuntimeError("sharded run lost nodes: tile ownership is not a partition")
    sent = sum(p["sent"] for p in parts)
    delivered = sum(p["delivered"] for p in parts)
    dropped = sum(p["dropped"] for p in parts)
    channel_rng: Dict[str, str] = {}
    for part in parts:
        overlap = channel_rng.keys() & part["channel_rng"].keys()
        if overlap:
            raise RuntimeError(f"channel stream owned by two shards: {sorted(overlap)}")
        channel_rng.update(part["channel_rng"])
    fingerprint: Dict[str, Any] = {
        "processed_events": sum(p["processed_events"] for p in parts) - (k - 1) * shared,
        "sent": sent,
        "delivered": delivered,
        "dropped": dropped,
        "rng_state": {"sim": sim_rng, "channel": channel_rng},
    }
    if spec.fingerprint:
        views: Dict[Hashable, Any] = {}
        for part in parts:
            views.update(part["views"])
        fingerprint["views"] = views
        fingerprint["edges"] = _require_consensus(parts, "edges")
        # The overhead report re-derives OverheadSummary.as_row() from the
        # merged integer ingredients with the identical expressions, so the
        # floats match the single-process report bit for bit.
        payload_total = sum(p["payload_total"] for p in parts)
        payload_count = sum(p["payload_count"] for p in parts)
        computations = sum(p["computations"] for p in parts)
        denom = max(total_nodes, 1)
        fingerprint["report"] = {
            "nodes": total_nodes,
            "msgs/node/s": round(sent / denom / duration, 3),
            "payload slots": round((payload_total / payload_count)
                                   if payload_count else 0.0, 2),
            "computes/node/s": round(computations / denom / duration, 3),
            "delivered": delivered,
            "dropped": dropped,
        }
    traffic = None
    ledgers = [p["ledger"] for p in parts if p.get("ledger") is not None]
    if ledgers:
        merged = ledgers[0]
        for ledger in ledgers[1:]:
            merged.merge_from(ledger)
        traffic = {
            "app_sent": merged.messages_sent,
            "app_receptions": merged.receptions,
            "requests": merged.requests_sent,
            "replies": merged.replies_matched,
            "group_rows": merged.group_rows(),
            "totals": merged.totals(duration),
        }
    stats = {
        "shards": k,
        "transport": transport,
        "rounds": loop_stats["rounds"],
        "remote_deliveries": loop_stats["remote_deliveries"],
        "shared_events": shared,
        "per_shard": [{"shard_id": p["shard_id"],
                       "nodes": p["node_count"],
                       "processed_events": p["processed_events"],
                       "sent": p["sent"],
                       "remote_in": p["remote_in"]} for p in parts],
    }
    return ShardRunResult(fingerprint=fingerprint, traffic=traffic, stats=stats)


def _merge_obs(spec: ShardSpec, parts: List[Dict[str, Any]],
               contexts: List[Optional[ObsContext]]) -> Dict[str, Any]:
    """Fold the per-shard contexts into one export blob.

    The merged stream additionally gets the coordinator's convergence
    milestone: with the fingerprint enabled, the final merged configuration
    (views + topology edges) is evaluated against the protocol predicates —
    the one protocol fact only the coordinator can see whole.
    """
    per_shard = []
    merged = ObsContext()
    for shard_id, ctx in enumerate(contexts):
        if ctx is None:  # pragma: no cover - transport bug guard
            raise RuntimeError(f"shard {shard_id} returned no obs context")
        per_shard.append(ctx.export())
        merged.merge(ctx)
    if spec.fingerprint and parts and "dmax" in parts[0]:
        import networkx as nx

        from repro.core.predicates import evaluate_configuration

        views: Dict[Hashable, Any] = {}
        for part in parts:
            views.update(part["views"])
        graph = nx.Graph()
        graph.add_nodes_from(views)
        for edge in sorted(parts[0]["edges"],
                           key=lambda e: sorted(map(str, e))):
            pair = tuple(edge)
            if len(pair) == 2:
                graph.add_edge(*pair)
        report = evaluate_configuration(spec.duration, views, graph,
                                        parts[0]["dmax"])
        merged.record_event("convergence.final", spec.duration,
                            legitimate=report.legitimate,
                            agreement=report.agreement,
                            safety=report.safety,
                            maximality=report.maximality,
                            group_count=report.group_count,
                            largest_group=report.largest_group)
    return {"merged": merged.export(), "per_shard": per_shard}


# ---------------------------------------------------------------- entrypoint

def run_sharded(spec: ShardSpec, transport: str = "inproc",
                build: str = "replicate", obs: bool = False) -> ShardRunResult:
    """Execute ``spec`` across ``spec.shards`` workers and merge the result.

    ``transport='inproc'`` runs every shard in this process (deterministic
    reference, zero IPC); ``transport='mp'`` spawns one OS process per shard
    and coordinates over pipes.  ``build='replicate'`` has every worker run
    the scenario builder itself; ``build='snapshot'`` builds once in the
    coordinator, serializes the post-build state and has workers restore it
    — O(build + k × restore) instead of O(k × build).  All four
    combinations produce the same :class:`ShardRunResult` bit for bit.

    ``stats`` carries the wall-clock split: ``build_s`` (host construction,
    including the one-time base build in snapshot mode), ``run_s`` (window
    loop + finish), ``base_build_s`` (snapshot mode's single build +
    pickle), ``worker_build_s`` (per-worker total construction time) and
    ``worker_base_phase_s`` (the shard-independent slice of each worker's
    construction — scenario build when replicated, snapshot unpickle when
    restored — i.e. the part the snapshot path amortizes).

    ``obs=True`` runs every worker under its own :class:`~repro.obs.ObsContext`
    (both transports, both build modes) and fills ``result.obs`` with the
    per-shard exports plus their merged fold.  Observation never feeds back
    into the simulation: an observed sharded run is bit-identical to the
    unobserved one, post-run RNG states included.
    """
    if transport not in ("inproc", "mp"):
        raise ValueError(f"unknown transport {transport!r}; use 'inproc' or 'mp'")
    if build not in ("replicate", "snapshot"):
        raise ValueError(f"unknown build mode {build!r}; use 'replicate' or 'snapshot'")
    hosts: List[Any] = []
    snapshot: Optional[bytes] = None
    snapshot_path: Optional[str] = None
    base_build_s = 0.0
    t_start = time.perf_counter()
    try:
        if build == "snapshot":
            t0 = time.perf_counter()
            snapshot = ShardWorld.snapshot_base(spec)
            base_build_s = time.perf_counter() - t0
        if transport == "inproc":
            hosts = [_InprocHost(spec, shard, snapshot, obs)
                     for shard in range(spec.shards)]
        else:
            if snapshot is not None:
                # Ship the blob through the filesystem, not the spawn args:
                # pickling it into every Process start would serialize it
                # k times through the spawn pipe.
                fd, snapshot_path = tempfile.mkstemp(suffix=".shardworld")
                with os.fdopen(fd, "wb") as fh:
                    fh.write(snapshot)
            ctx = multiprocessing.get_context("spawn")
            hosts = [_MpHost(ctx, spec, shard, snapshot_path, obs)
                     for shard in range(spec.shards)]
            for host in hosts:
                host.await_ready()
        lookahead = hosts[0].lookahead
        for host in hosts[1:]:
            if host.lookahead != lookahead:
                raise RuntimeError("shards disagree on channel lookahead")
        t_built = time.perf_counter()
        loop_stats = _coordinate(hosts, hosts[0].owners, lookahead, spec.duration)
        for host in hosts:
            host.submit_finish(spec.duration)
        parts = [host.collect_finish() for host in hosts]
        result = _merge(spec, parts, loop_stats, transport)
        if obs:
            result.obs = _merge_obs(spec, parts,
                                    [host.obs_ctx for host in hosts])
        result.stats["build"] = build
        result.stats["build_s"] = t_built - t_start
        result.stats["run_s"] = time.perf_counter() - t_built
        result.stats["base_build_s"] = base_build_s
        result.stats["worker_build_s"] = [host.build_s for host in hosts]
        result.stats["worker_base_phase_s"] = [host.base_phase_s
                                               for host in hosts]
        return result
    finally:
        for host in hosts:
            host.close()
        if snapshot_path is not None:
            try:
                os.unlink(snapshot_path)
            except OSError:  # pragma: no cover
                pass
