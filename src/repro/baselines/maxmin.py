"""Max-Min d-cluster formation (Amis, Prakash, Vuong, Huynh — INFOCOM 2000).

The heuristic the paper cites as representative of d-hop clusterhead
algorithms.  Each node runs ``2d`` rounds of flooding:

* *floodmax* (d rounds): every node repeatedly adopts the largest identifier
  heard in its neighbourhood — after d rounds ``winner[v]`` is the largest id
  within d hops;
* *floodmin* (d rounds): starting from the floodmax result, every node adopts
  the smallest value heard — this lets smaller ids "reclaim" territory and
  reduces clusterhead domination;
* clusterhead election: a node whose own id survived either phase (or that saw
  itself as a *node pair*) becomes a clusterhead; other nodes attach to the
  closest elected clusterhead within d hops.

We implement the synchronous-round version on a topology snapshot (the paper's
setting is also round-based).  ``d`` is taken as ``max(1, dmax // 2)`` so the
resulting cluster diameter is comparable to a GRP group with the same ``Dmax``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from .base import SnapshotClusteringAlgorithm, Views, clusters_from_heads

__all__ = ["MaxMinDCluster"]


class MaxMinDCluster(SnapshotClusteringAlgorithm):
    """Max-Min d-cluster heuristic on a topology snapshot."""

    name = "max-min"

    def __init__(self, d: Optional[int] = None):
        self.d = d

    def _rounds(self, dmax: int) -> int:
        return self.d if self.d is not None else max(1, dmax // 2)

    def partition(self, graph: nx.Graph, dmax: int) -> Views:
        if dmax < 1:
            raise ValueError("dmax must be >= 1")
        d = self._rounds(dmax)
        nodes = list(graph.nodes)
        if not nodes:
            return {}
        key = {node: str(node) for node in nodes}

        # --- floodmax -------------------------------------------------------
        winner: Dict[Hashable, Hashable] = {node: node for node in nodes}
        floodmax_history: List[Dict[Hashable, Hashable]] = []
        for _ in range(d):
            new_winner = {}
            for node in nodes:
                candidates = [winner[node]] + [winner[nbr] for nbr in graph.neighbors(node)]
                new_winner[node] = max(candidates, key=lambda c: key[c])
            winner = new_winner
            floodmax_history.append(dict(winner))
        floodmax_result = dict(winner)

        # --- floodmin -------------------------------------------------------
        for _ in range(d):
            new_winner = {}
            for node in nodes:
                candidates = [winner[node]] + [winner[nbr] for nbr in graph.neighbors(node)]
                new_winner[node] = min(candidates, key=lambda c: key[c])
            winner = new_winner
        floodmin_result = dict(winner)

        # --- clusterhead election (rules 1-3 of the paper) -------------------
        heads: Set[Hashable] = set()
        head_of: Dict[Hashable, Hashable] = {}
        for node in nodes:
            if floodmin_result[node] == node or floodmax_result[node] == node:
                # Rule 1: the node elected itself.
                heads.add(node)
                head_of[node] = node
            elif floodmin_result[node] == floodmax_result[node]:
                # Rule 2 (node pair): adopt the shared value as head.
                head_of[node] = floodmin_result[node]
            else:
                # Rule 3: default to the floodmax winner.
                head_of[node] = floodmax_result[node]
            heads.add(head_of[node])

        # --- attach every node to the closest elected head within d hops -----
        final_heads: Dict[Hashable, Hashable] = {}
        lengths_from_heads = {
            head: nx.single_source_shortest_path_length(graph, head, cutoff=d)
            for head in heads if head in graph}
        for node in nodes:
            preferred = head_of[node]
            if preferred in lengths_from_heads and node in lengths_from_heads[preferred]:
                final_heads[node] = preferred
                continue
            best = None
            best_dist = None
            for head, lengths in lengths_from_heads.items():
                if node in lengths:
                    dist = lengths[node]
                    if best_dist is None or (dist, key[head]) < (best_dist, key[best]):
                        best, best_dist = head, dist
            final_heads[node] = best if best is not None else node
        return clusters_from_heads(graph, final_heads)
