"""Periodic re-clustering process.

Adapts a :class:`~repro.baselines.base.SnapshotClusteringAlgorithm` to the
discrete-event simulator: the partition is recomputed from the current
topology every ``period`` simulated seconds.  The views it exposes have the
same shape as GRP views, so the metric collectors and the experiment runner
treat baselines and GRP uniformly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable

from repro.net.network import Network
from repro.sim.engine import Simulator

from .base import SnapshotClusteringAlgorithm

__all__ = ["PeriodicClusteringDriver"]


class PeriodicClusteringDriver:
    """Runs a snapshot clustering algorithm periodically on a live network.

    This is *not* a message-passing implementation of the baselines (their
    original papers assume various synchronous models); it is the idealised
    best case for them — a perfect oracle recomputing the optimal-style
    partition on every period.  Even against this idealisation GRP keeps lower
    membership churn, which makes the comparison conservative.
    """

    def __init__(self, sim: Simulator, network: Network,
                 algorithm: SnapshotClusteringAlgorithm, dmax: int, period: float = 1.0):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.network = network
        self.algorithm = algorithm
        self.dmax = int(dmax)
        self.period = float(period)
        self._views: Dict[Hashable, FrozenSet[Hashable]] = {}
        self._handle = None
        self.recomputations = 0

    @property
    def name(self) -> str:
        """Name of the wrapped algorithm."""
        return self.algorithm.name

    def start(self) -> None:
        """Compute an initial partition and schedule periodic recomputation."""
        self._recompute()
        self._handle = self.sim.call_every(self.period, self._recompute)

    def stop(self) -> None:
        """Stop the periodic recomputation."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _recompute(self) -> None:
        graph = self.network.topology()
        self._views = dict(self.algorithm.partition(graph, self.dmax))
        # Nodes absent from the snapshot (inactive) keep a singleton view.
        for node_id in self.network.node_ids:
            self._views.setdefault(node_id, frozenset({node_id}))
        self.recomputations += 1

    def views(self) -> Dict[Hashable, FrozenSet[Hashable]]:
        """Latest computed views (same shape as GRP views)."""
        return dict(self._views)
