"""Greedy k-hop dominating-set clustering.

A stand-in for the self-stabilizing O(k)-time k-clustering algorithms cited by
the paper (Datta, Larmore, Vemula 2009; Amis et al.; Kutten & Peleg): compute a
k-dominating set greedily (highest residual coverage first), then attach every
node to its closest dominator.  With ``k = floor(dmax / 2)`` the cluster
diameter is at most ``dmax``.  Like every clusterhead approach, the output is
recomputed from scratch on each snapshot, so cluster membership is unstable
under mobility — the behaviour experiments E4/E5 contrast with GRP.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

import networkx as nx

from .base import SnapshotClusteringAlgorithm, Views, clusters_from_heads

__all__ = ["KHopClustering"]


class KHopClustering(SnapshotClusteringAlgorithm):
    """Greedy k-dominating-set based clustering."""

    name = "k-hop"

    def __init__(self, k: Optional[int] = None):
        self.k = k

    def partition(self, graph: nx.Graph, dmax: int) -> Views:
        if dmax < 1:
            raise ValueError("dmax must be >= 1")
        k = self.k if self.k is not None else max(1, dmax // 2)
        nodes = list(graph.nodes)
        if not nodes:
            return {}
        coverage = {node: nx.single_source_shortest_path_length(graph, node, cutoff=k)
                    for node in nodes}
        uncovered: Set[Hashable] = set(nodes)
        dominators = []
        while uncovered:
            best = max(nodes,
                       key=lambda n: (len(set(coverage[n]) & uncovered), -len(str(n)), str(n)))
            gained = set(coverage[best]) & uncovered
            if not gained:
                # Remaining nodes are isolated from every candidate: make them dominators.
                dominators.extend(sorted(uncovered, key=str))
                break
            dominators.append(best)
            uncovered -= gained
        head_of: Dict[Hashable, Hashable] = {}
        for node in nodes:
            best = None
            best_dist = None
            for head in dominators:
                dist = coverage[head].get(node)
                if dist is None:
                    continue
                if best_dist is None or (dist, str(head)) < (best_dist, str(best)):
                    best, best_dist = head, dist
            head_of[node] = best if best is not None else node
        return clusters_from_heads(graph, head_of)
