"""Lowest-ID d-hop clustering.

The classic clusterhead heuristic (Lin & Gerla / DCA family) generalized to
``d`` hops: repeatedly pick the smallest-identifier node not yet covered as a
clusterhead and assign to it every uncovered node within ``floor(dmax / 2)``
hops, so that the cluster diameter stays within ``dmax``.  The partition is
optimal in neither size nor stability — a tiny identifier change or a single
moved node can reshuffle whole clusters, which is the membership-churn weakness
experiment E4 measures.
"""

from __future__ import annotations

import networkx as nx

from .base import SnapshotClusteringAlgorithm, Views

__all__ = ["LowestIdClustering"]


class LowestIdClustering(SnapshotClusteringAlgorithm):
    """Greedy lowest-identifier clusterhead selection with radius ``floor(dmax/2)``."""

    name = "lowest-id"

    def partition(self, graph: nx.Graph, dmax: int) -> Views:
        if dmax < 1:
            raise ValueError("dmax must be >= 1")
        radius = max(dmax // 2, 0)
        uncovered = set(graph.nodes)
        views: Views = {}
        for head in sorted(graph.nodes, key=str):
            if head not in uncovered:
                continue
            reachable = nx.single_source_shortest_path_length(graph, head, cutoff=radius)
            members = frozenset(node for node in reachable if node in uncovered)
            for node in members:
                views[node] = members
                uncovered.discard(node)
        return views
