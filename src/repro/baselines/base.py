"""Interface of the clustering baselines.

The related-work algorithms the paper positions itself against (k-clustering,
Max-Min d-cluster, lowest-ID clustering) aim at *optimizing the partition* —
few clusters, each centred on a clusterhead within ``d`` hops.  They are
snapshot algorithms: given the current topology they output a partition.  Under
mobility they are re-run periodically, which is precisely what causes the
membership churn GRP avoids (experiments E4 / E5).

:class:`SnapshotClusteringAlgorithm` is the common interface:
``partition(graph, dmax)`` returns a mapping node -> frozenset of members.
:class:`PeriodicClusteringProcess` adapts such an algorithm to the simulator so
it can be measured with the same collectors as GRP.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable

import networkx as nx

__all__ = ["SnapshotClusteringAlgorithm", "partition_to_views", "clusters_from_heads"]

Views = Dict[Hashable, FrozenSet[Hashable]]


class SnapshotClusteringAlgorithm:
    """Computes a d-hop clustering of a topology snapshot."""

    #: human-readable identifier used in experiment tables
    name: str = "abstract"

    def partition(self, graph: nx.Graph, dmax: int) -> Views:
        """Return the views (node -> members of its cluster) for this snapshot."""
        raise NotImplementedError


def clusters_from_heads(graph: nx.Graph, heads: Dict[Hashable, Hashable]) -> Views:
    """Build views from a clusterhead assignment (node -> its head)."""
    members: Dict[Hashable, set] = {}
    for node, head in heads.items():
        members.setdefault(head, set()).add(node)
    views: Views = {}
    for head, cluster in members.items():
        frozen = frozenset(cluster)
        for node in cluster:
            views[node] = frozen
    return views


def partition_to_views(clusters) -> Views:
    """Build views from an iterable of member collections."""
    views: Views = {}
    for cluster in clusters:
        frozen = frozenset(cluster)
        for node in frozen:
            views[node] = frozen
    return views
