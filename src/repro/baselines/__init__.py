"""Clustering baselines used as comparators in experiments E4/E5."""

from .base import SnapshotClusteringAlgorithm, clusters_from_heads, partition_to_views
from .kclustering import KHopClustering
from .lowest_id import LowestIdClustering
from .maxmin import MaxMinDCluster
from .periodic import PeriodicClusteringDriver

__all__ = [
    "SnapshotClusteringAlgorithm",
    "clusters_from_heads",
    "partition_to_views",
    "KHopClustering",
    "LowestIdClustering",
    "MaxMinDCluster",
    "PeriodicClusteringDriver",
]
