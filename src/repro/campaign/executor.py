"""Campaign execution backends: serial reference and multiprocessing pool.

The serial executor is the semantic reference: the worker pool shards the same
task list across processes and must produce bit-identical metric rows (and
therefore bit-identical aggregate tables), because every task is fully seeded
and shares nothing with its siblings.  Only ``wall_time`` is allowed to differ
between backends.

Workers cap their trace memory through
:attr:`repro.sim.trace.TraceRecorder.default_max_records` (set from
``CampaignSpec.max_trace_records`` around each task), so long campaigns cannot
grow worker memory without bound; per-category trace *counters* stay exact, so
overhead metrics are unaffected.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.scenarios import ScenarioSpec

from .spec import CampaignSpec, CampaignTask
from .store import ResultStore, TaskRecord

__all__ = ["TaskOutcome", "CampaignResult", "execute_task", "run_campaign"]


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one campaign task (fresh or replayed from the store)."""

    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool
    description: str
    wall_time: float
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    from_store: bool = False
    #: ``ScenarioSpec.as_dict()`` of the scenario cell (``None`` = default).
    scenario: Optional[Dict[str, object]] = None

    @functools.cached_property
    def scenario_label(self) -> Optional[str]:
        """The scenario cell's label, or ``None`` on the default cell.

        Cached: report rendering queries it once per (outcome x cell) pair,
        and rebuilding a spec from its dict each time is pure waste.
        """
        if self.scenario is None:
            return None
        return ScenarioSpec.from_dict(self.scenario).label()

    def to_record(self, spec_hash: str) -> TaskRecord:
        return TaskRecord(
            spec_hash=spec_hash, task_id=self.task_id, experiment=self.experiment,
            replicate=self.replicate, seed=self.seed, quick=self.quick,
            description=self.description, wall_time=self.wall_time,
            rows=self.rows, notes=self.notes, scenario=self.scenario)


def _outcome_from_record(record: TaskRecord) -> TaskOutcome:
    return TaskOutcome(
        task_id=record.task_id, experiment=record.experiment,
        replicate=record.replicate, seed=record.seed, quick=record.quick,
        description=record.description, wall_time=record.wall_time,
        rows=record.rows, notes=record.notes, from_store=True,
        scenario=record.scenario)


def execute_task(task: CampaignTask,
                 max_trace_records: Optional[int] = None) -> TaskOutcome:
    """Run one task in the current process and return its outcome.

    This is the unit of work both backends share; it is a module-level
    function so the multiprocessing pool can pickle it.
    """
    # Imported lazily: the experiment suite sits above the campaign layer.
    from repro.experiments.suite import run_experiment
    from repro.sim.trace import TraceRecorder

    previous_cap = TraceRecorder.default_max_records
    TraceRecorder.default_max_records = max_trace_records
    try:
        start = time.perf_counter()
        result = run_experiment(task.experiment, quick=task.quick, seed=task.seed,
                                scenario=task.scenario)
        wall_time = time.perf_counter() - start
    finally:
        TraceRecorder.default_max_records = previous_cap
    return TaskOutcome(
        task_id=task.task_id, experiment=task.experiment, replicate=task.replicate,
        seed=task.seed, quick=task.quick, description=result.description,
        wall_time=wall_time, rows=result.rows, notes=result.notes,
        scenario=None if task.scenario is None else task.scenario.as_dict())


@dataclass
class CampaignResult:
    """Outcome of a whole campaign, in canonical (spec expansion) order."""

    spec: CampaignSpec
    outcomes: List[TaskOutcome]
    executed: int
    skipped: int

    def outcomes_for(self, experiment: str,
                     scenario_label: Optional[str] = None) -> List[TaskOutcome]:
        """Outcomes of one experiment, optionally restricted to one scenario cell.

        ``scenario_label`` is the :meth:`repro.scenarios.ScenarioSpec.label`
        of the cell; ``None`` matches the default (scenario-less) cell only.
        """
        return [o for o in self.outcomes
                if o.experiment == experiment.upper()
                and o.scenario_label == scenario_label]


def run_campaign(spec: CampaignSpec,
                 store: Optional[ResultStore] = None,
                 jobs: int = 1,
                 progress: Optional[Callable[[TaskOutcome], None]] = None) -> CampaignResult:
    """Execute ``spec``, resuming from ``store`` when one is given.

    Tasks already recorded in the store (matched by spec hash + task id) are
    not re-run; fresh outcomes are appended to the store as they complete, so
    an interrupted campaign loses at most its in-flight tasks.  ``jobs <= 1``
    uses the in-process serial reference backend; ``jobs > 1`` shards the
    pending tasks over a process pool.  Outcomes are always returned in the
    canonical expansion order, whatever order workers finish in.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    tasks = spec.expand()
    spec_hash = spec.spec_hash()
    done = store.completed(spec_hash) if store is not None else {}
    outcomes_by_id: Dict[str, TaskOutcome] = {
        task.task_id: _outcome_from_record(done[task.task_id])
        for task in tasks if task.task_id in done}
    pending = [task for task in tasks if task.task_id not in outcomes_by_id]

    def _finish(outcome: TaskOutcome) -> None:
        outcomes_by_id[outcome.task_id] = outcome
        if store is not None:
            store.append(outcome.to_record(spec_hash))
        if progress is not None:
            progress(outcome)

    worker = functools.partial(execute_task, max_trace_records=spec.max_trace_records)
    if jobs > 1 and len(pending) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
            for outcome in pool.imap_unordered(worker, pending):
                _finish(outcome)
    else:
        for task in pending:
            _finish(worker(task))

    return CampaignResult(
        spec=spec,
        outcomes=[outcomes_by_id[task.task_id] for task in tasks],
        executed=len(pending),
        skipped=len(tasks) - len(pending))
