"""Campaign execution backends: serial reference and multiprocessing pool.

The serial executor is the semantic reference: the worker pool shards the same
task list across processes and must produce bit-identical metric rows (and
therefore bit-identical aggregate tables), because every task is fully seeded
and shares nothing with its siblings.  Only ``wall_time`` is allowed to differ
between backends.

Workers cap their trace memory through
:attr:`repro.sim.trace.TraceRecorder.default_max_records` (set from
``CampaignSpec.max_trace_records`` around each task), so long campaigns cannot
grow worker memory without bound; per-category trace *counters* stay exact, so
overhead metrics are unaffected.

Failure policy
--------------
``CampaignSpec.task_timeout`` bounds the wall clock of each task *attempt*
(enforced with a per-attempt ``SIGALRM`` interval timer inside the executing
process — the worker's main thread on the pool backend, the caller's on the
serial one; on platforms without ``SIGALRM`` the timeout is ignored) and
``task_retries`` grants extra attempts after a crash or timeout.  A task that
exhausts its attempts does not kill the campaign: it completes with a
*structured failure row* (``status="failed"``, the error text and the attempt
count) that flows through the store, resume and the report like any metric
row.  Every attempt re-runs from the task's derived seed, so a retry that
succeeds is bit-identical to a first attempt that succeeded.
"""

from __future__ import annotations

import contextlib
import functools
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.scenarios import ScenarioSpec
from repro.traffic import TrafficSpec

from .spec import CampaignSpec, CampaignTask
from .store import ResultStore, TaskRecord

__all__ = ["TaskTimeoutError", "TaskOutcome", "CampaignResult", "execute_task",
           "run_campaign"]


class TaskTimeoutError(RuntimeError):
    """An attempt exceeded ``CampaignSpec.task_timeout`` seconds."""


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one campaign task (fresh or replayed from the store)."""

    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool
    description: str
    wall_time: float
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    from_store: bool = False
    #: ``ScenarioSpec.as_dict()`` of the scenario cell (``None`` = default).
    scenario: Optional[Dict[str, object]] = None
    #: ``TrafficSpec.as_dict()`` of the traffic cell (``None`` = default).
    traffic: Optional[Dict[str, object]] = None
    #: Attempts the task consumed (> 1 means at least one retry fired).
    attempts: int = 1
    #: ``ObsContext.export()`` blob of the run (``None`` without ``obs``).
    obs: Optional[Dict[str, object]] = None

    @functools.cached_property
    def scenario_label(self) -> Optional[str]:
        """The scenario cell's label, or ``None`` on the default cell.

        Cached: report rendering queries it once per (outcome x cell) pair,
        and rebuilding a spec from its dict each time is pure waste.
        """
        if self.scenario is None:
            return None
        return ScenarioSpec.from_dict(self.scenario).label()

    @functools.cached_property
    def traffic_label(self) -> Optional[str]:
        """The traffic cell's label, or ``None`` on the default cell."""
        if self.traffic is None:
            return None
        return TrafficSpec.from_dict(self.traffic).label()

    def to_record(self, spec_hash: str) -> TaskRecord:
        return TaskRecord(
            spec_hash=spec_hash, task_id=self.task_id, experiment=self.experiment,
            replicate=self.replicate, seed=self.seed, quick=self.quick,
            description=self.description, wall_time=self.wall_time,
            rows=self.rows, notes=self.notes, scenario=self.scenario,
            traffic=self.traffic, attempts=self.attempts, obs=self.obs)


def _outcome_from_record(record: TaskRecord) -> TaskOutcome:
    return TaskOutcome(
        task_id=record.task_id, experiment=record.experiment,
        replicate=record.replicate, seed=record.seed, quick=record.quick,
        description=record.description, wall_time=record.wall_time,
        rows=record.rows, notes=record.notes, from_store=True,
        scenario=record.scenario, traffic=record.traffic,
        attempts=record.attempts, obs=record.obs)


class _attempt_deadline:
    """Context manager aborting the block after ``seconds`` of wall clock.

    Implemented with ``signal.setitimer(ITIMER_REAL)`` in the current
    process, so it works unchanged in the serial backend and inside pool
    workers (task code runs in each process's main thread).  The deadline is
    silently disabled where signals cannot work — ``None``, platforms
    without ``SIGALRM``, or a caller off the main thread (where
    ``signal.signal`` would raise and the retry loop would misread it as a
    task failure).
    """

    def __init__(self, seconds: Optional[float]):
        usable = (hasattr(signal, "SIGALRM")
                  and threading.current_thread() is threading.main_thread())
        self.seconds = seconds if usable else None
        self._previous = None

    def __enter__(self) -> "_attempt_deadline":
        if self.seconds is not None:
            def _expired(signum, frame):
                raise TaskTimeoutError(
                    f"task attempt exceeded {self.seconds}s wall-clock budget")
            self._previous = signal.signal(signal.SIGALRM, _expired)
            try:
                signal.setitimer(signal.ITIMER_REAL, self.seconds)
            except BaseException:
                signal.signal(signal.SIGALRM, self._previous)
                raise
        return self

    def __exit__(self, *exc_info) -> None:
        # try/finally on both steps: the timer can expire inside this very
        # method (raising TaskTimeoutError out of the disarm sequence), and
        # neither a leaked armed timer nor a leaked handler may survive into
        # the next attempt's retry accounting.
        if self.seconds is not None:
            try:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
            finally:
                signal.signal(signal.SIGALRM, self._previous)


def _failure_outcome(task: CampaignTask, error: BaseException,
                     attempts: int, wall_time: float) -> TaskOutcome:
    """The structured failure recorded when a task exhausts its attempts.

    The single row carries machine-readable failure columns; ``status`` is a
    string (never aggregated as a metric) and ``attempts`` is numeric, so
    cross-seed aggregation and report rendering handle mixed
    success/failure replicate sets without special cases.
    """
    kind = "timeout" if isinstance(error, TaskTimeoutError) else type(error).__name__
    row = {
        "task": task.task_id,
        "status": "failed",
        "failure": kind,
        "attempts": attempts,
        "error": str(error),
    }
    return TaskOutcome(
        task_id=task.task_id, experiment=task.experiment, replicate=task.replicate,
        seed=task.seed, quick=task.quick,
        description=f"{task.experiment} (failed)",
        wall_time=wall_time, rows=[row],
        notes=[f"FAILED after {attempts} attempt(s): {kind}: {error}"],
        scenario=None if task.scenario is None else task.scenario.as_dict(),
        traffic=None if task.traffic is None else task.traffic.as_dict(),
        attempts=attempts)


def execute_task(task: CampaignTask,
                 max_trace_records: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 obs: bool = False,
                 obs_heap: bool = False,
                 profile_dir: Optional[str] = None) -> TaskOutcome:
    """Run one task in the current process and return its outcome.

    This is the unit of work both backends share; it is a module-level
    function so the multiprocessing pool can pickle it.  Each of the
    ``1 + retries`` attempts is bounded by ``timeout`` seconds; a task whose
    attempts are all lost to crashes or timeouts resolves to a structured
    failure outcome instead of propagating (``KeyboardInterrupt`` and friends
    still propagate).

    ``obs`` collects a fresh :class:`repro.obs.ObsContext` around each
    attempt (installed process-locally, so pool workers observe only their
    own task) and attaches the export blob of the successful attempt to the
    outcome.  ``profile_dir`` dumps a cProfile ``<task_id>.prof`` per task;
    both are runtime observation and never change metric rows.
    """
    # Imported lazily: the experiment suite sits above the campaign layer.
    from repro.experiments.suite import ALL_EXPERIMENTS, run_experiment
    from repro.obs import ObsContext, observing, profiling
    from repro.sim.trace import TraceRecorder

    if task.experiment.upper() not in ALL_EXPERIMENTS:
        # A malformed spec is a configuration error, not a task failure:
        # propagate instead of burning retries on every replicate.
        raise KeyError(f"unknown experiment {task.experiment!r}; "
                       f"valid: {sorted(ALL_EXPERIMENTS)}")
    profile_path = None
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
        profile_path = os.path.join(profile_dir,
                                    task.task_id.replace("/", "_") + ".prof")
    start = time.perf_counter()
    attempts = 1 + max(0, retries)
    last_error: Optional[Exception] = None
    for attempt in range(1, attempts + 1):
        previous_cap = TraceRecorder.default_max_records
        TraceRecorder.default_max_records = max_trace_records
        result = None
        # A fresh context per attempt: a retried attempt must not inherit the
        # half-collected metrics of the crashed one.
        ctx = ObsContext(track_heap=obs_heap) if obs else None
        obs_scope = observing(ctx) if ctx is not None else contextlib.nullcontext()
        try:
            attempt_start = time.perf_counter()
            with _attempt_deadline(timeout), profiling(profile_path), obs_scope:
                result = run_experiment(task.experiment, quick=task.quick,
                                        seed=task.seed, scenario=task.scenario,
                                        traffic=task.traffic)
            wall_time = time.perf_counter() - attempt_start
        except Exception as exc:  # noqa: BLE001 - the retry/failure boundary
            # Disarm race: the interval timer can fire in the sliver between
            # the experiment returning and the deadline's __exit__ disarming
            # it.  A TaskTimeoutError with the result already bound means the
            # attempt finished inside its budget — keep it.
            if result is None or not isinstance(exc, TaskTimeoutError):
                last_error = exc
                continue
            wall_time = time.perf_counter() - attempt_start
        finally:
            TraceRecorder.default_max_records = previous_cap
        return TaskOutcome(
            task_id=task.task_id, experiment=task.experiment, replicate=task.replicate,
            seed=task.seed, quick=task.quick, description=result.description,
            wall_time=wall_time, rows=result.rows, notes=result.notes,
            scenario=None if task.scenario is None else task.scenario.as_dict(),
            traffic=None if task.traffic is None else task.traffic.as_dict(),
            attempts=attempt,
            obs=None if ctx is None else ctx.export())
    return _failure_outcome(task, last_error, attempts, time.perf_counter() - start)


@dataclass
class CampaignResult:
    """Outcome of a whole campaign, in canonical (spec expansion) order."""

    spec: CampaignSpec
    outcomes: List[TaskOutcome]
    executed: int
    skipped: int

    def outcomes_for(self, experiment: str,
                     scenario_label: Optional[str] = None,
                     traffic_label: Optional[str] = None) -> List[TaskOutcome]:
        """Outcomes of one experiment, optionally restricted to one grid cell.

        ``scenario_label`` / ``traffic_label`` are the ``label()`` values of
        the cells; ``None`` matches the respective default (axis-less) cell
        only.
        """
        return [o for o in self.outcomes
                if o.experiment == experiment.upper()
                and o.scenario_label == scenario_label
                and o.traffic_label == traffic_label]


def run_campaign(spec: CampaignSpec,
                 store: Optional[ResultStore] = None,
                 jobs: int = 1,
                 progress: Optional[Callable[[TaskOutcome], None]] = None,
                 profile_dir: Optional[str] = None) -> CampaignResult:
    """Execute ``spec``, resuming from ``store`` when one is given.

    Tasks already recorded in the store (matched by spec hash + task id) are
    not re-run; fresh outcomes are appended to the store as they complete, so
    an interrupted campaign loses at most its in-flight tasks.  ``jobs <= 1``
    uses the in-process serial reference backend; ``jobs > 1`` shards the
    pending tasks over a process pool.  Outcomes are always returned in the
    canonical expansion order, whatever order workers finish in.

    ``progress`` is invoked once per completed task on both backends — first
    for every store-replayed outcome (``from_store=True``), then for each
    fresh outcome as its worker finishes.

    ``profile_dir`` enables per-task cProfile dumps (one ``.prof`` per task,
    written by whichever process ran it).  It is a runtime argument, not a
    spec field: profiling changes no stored result, so profiled and
    unprofiled runs share the same spec hash and resume each other.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    tasks = spec.expand()
    spec_hash = spec.spec_hash()
    done = store.completed(spec_hash) if store is not None else {}
    outcomes_by_id: Dict[str, TaskOutcome] = {
        task.task_id: _outcome_from_record(done[task.task_id])
        for task in tasks if task.task_id in done}
    pending = [task for task in tasks if task.task_id not in outcomes_by_id]
    if progress is not None:
        for task in tasks:
            if task.task_id in outcomes_by_id:
                progress(outcomes_by_id[task.task_id])

    def _finish(outcome: TaskOutcome) -> None:
        outcomes_by_id[outcome.task_id] = outcome
        if store is not None:
            store.append(outcome.to_record(spec_hash))
        if progress is not None:
            progress(outcome)

    worker = functools.partial(execute_task, max_trace_records=spec.max_trace_records,
                               timeout=spec.task_timeout, retries=spec.task_retries,
                               obs=spec.obs, obs_heap=spec.obs_heap,
                               profile_dir=profile_dir)
    if jobs > 1 and len(pending) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
            for outcome in pool.imap_unordered(worker, pending):
                _finish(outcome)
    else:
        for task in pending:
            _finish(worker(task))

    return CampaignResult(
        spec=spec,
        outcomes=[outcomes_by_id[task.task_id] for task in tasks],
        executed=len(pending),
        skipped=len(tasks) - len(pending))
