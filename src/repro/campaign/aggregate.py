"""Cross-seed aggregation of campaign outcomes.

Two layers:

- :func:`aggregate_metrics` — machine-readable per-metric statistics
  (mean / std / min / max over replicate rows), used by tests and by anything
  that post-processes the JSONL store.
- :func:`campaign_report` — the human-readable campaign report: one block per
  experiment with a summary table rendered through
  :func:`repro.metrics.report.aggregate_rows` (mean ± std cells).

Both aggregate from outcomes sorted in canonical spec-expansion order, so the
result is independent of worker scheduling — serial and parallel executions
of the same spec produce byte-identical reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.metrics.report import (aggregate_rows, format_table, format_value, group_rows,
                                  ordered_columns, safe_pstdev)

from .executor import CampaignResult

__all__ = ["ColumnStats", "column_stats", "aggregate_metrics", "campaign_report",
           "deterministic_report"]

#: Columns never aggregated across replicates (they index the replicate, not
#: the behaviour being measured).
DROP_COLUMNS: Tuple[str, ...] = ("seed",)


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one numeric metric column across replicates."""

    count: int
    mean: float
    std: float
    min: float
    max: float


def column_stats(values: Sequence[object]) -> "ColumnStats | None":
    """Stats over the numeric (non-bool, non-None) entries of ``values``.

    Returns ``None`` when no numeric entry exists.  The std is the population
    standard deviation (zero for a single replicate).
    """
    numeric = [float(v) for v in values
               if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return None
    return ColumnStats(count=len(numeric), mean=statistics.fmean(numeric),
                       std=safe_pstdev(numeric),
                       min=min(numeric), max=max(numeric))


def aggregate_metrics(rows: Sequence[Mapping[str, object]],
                      group_by: Sequence[str] = (),
                      drop: Sequence[str] = DROP_COLUMNS,
                      ) -> "Dict[tuple, Dict[str, ColumnStats]]":
    """Per-group, per-column statistics over replicate rows.

    ``group_by`` names the key columns of the experiment's parameter grid;
    the remaining numeric columns are aggregated.  Grouping and column
    ordering are shared with :func:`repro.metrics.report.aggregate_rows`, so
    the machine-readable stats and the rendered table always agree.
    """
    skip = set(group_by) | set(drop)
    aggregated: Dict[tuple, Dict[str, ColumnStats]] = {}
    for key, members in group_rows(rows, group_by).items():
        stats: Dict[str, ColumnStats] = {}
        for column in ordered_columns(members, skip=skip):
            result = column_stats([row.get(column) for row in members])
            if result is not None:
                stats[column] = result
        aggregated[key] = stats
    return aggregated


def _obs_note(outcomes: Sequence[object]) -> "str | None":
    """One ``note: obs:`` line summarizing the outcomes' obs blobs.

    Surfaces the headline observability columns — events/s, deliveries/s,
    p95 CSR-rebuild wall time, peak heap — as replicate means.  Everything
    here depends on wall clock, so the line carries the ``note: obs:``
    prefix that :func:`deterministic_report` strips (like wall time).
    """
    pairs = [(o.obs, o.wall_time) for o in outcomes
             if getattr(o, "obs", None) and o.wall_time > 0]
    if not pairs:
        return None
    parts = []
    for label, counter in (("events/s", "sim.events"),
                           ("deliveries/s", "net.delivered")):
        rates = [blob["counters"][counter] / wall for blob, wall in pairs
                 if counter in blob.get("counters", {})]
        if rates:
            parts.append(f"{label} {format_value(statistics.fmean(rates))}")
    rebuilds = [blob["spans"]["topology.csr_rebuild"]["wall_ns_p95"]
                for blob, _ in pairs
                if blob.get("spans", {}).get("topology.csr_rebuild", {})
                                        .get("wall_ns_p95") is not None]
    if rebuilds:
        parts.append(f"csr rebuild p95 "
                     f"{format_value(statistics.fmean(rebuilds) / 1e6)}ms")
    heaps = [blob["heap_peak_bytes"] for blob, _ in pairs
             if blob.get("heap_peak_bytes") is not None]
    if heaps:
        parts.append(f"peak heap "
                     f"{format_value(statistics.fmean(heaps) / 1e6)}MB")
    if not parts:
        return None
    return "note: obs: " + ", ".join(parts)


def campaign_report(result: CampaignResult) -> str:
    """Render the full campaign report.

    One block per {experiment x scenario cell}, in canonical spec order;
    replicate rows collapse to ``mean ± std`` cells within each block.
    Scenario-less campaigns render exactly as before the scenario axis
    existed (one block per experiment, no scenario mention in the headers).
    """
    # The suite sits above the campaign layer; import lazily to keep the
    # dependency one-way at module-import time.
    from repro.experiments.suite import AGGREGATE_KEYS

    spec = result.spec
    header = (f"campaign {spec.name} [{spec.spec_hash()}]: "
              f"{len(spec.experiments)} experiments x {spec.replicates} seeds "
              f"(root seed {spec.root_seed}, {'quick' if spec.quick else 'full'}), "
              f"executed {result.executed}, resumed {result.skipped}")
    if spec.scenarios:
        cells = " | ".join(scenario.label() for scenario in spec.scenarios)
        header += f"\nscenario axis ({len(spec.scenarios)} cells): {cells}"
    if spec.traffics:
        cells = " | ".join(traffic.label() for traffic in spec.traffics)
        header += f"\ntraffic axis ({len(spec.traffics)} cells): {cells}"
    blocks = [header]
    for experiment in spec.experiments:
        for scenario in spec.scenario_cells():
            label = None if scenario is None else scenario.label()
            for traffic in spec.traffic_cells():
                tlabel = None if traffic is None else traffic.label()
                outcomes = result.outcomes_for(experiment, label, tlabel)
                if not outcomes:
                    continue
                # Prefer a successful replicate's description: a failed first
                # replicate carries the "<EXP> (failed)" placeholder and must
                # not mislabel a block whose other seeds succeeded.
                description = next(
                    (o.description for o in outcomes
                     if not any(row.get("status") == "failed" for row in o.rows)),
                    outcomes[0].description)
                rows = [row for outcome in outcomes for row in outcome.rows]
                table = aggregate_rows(rows,
                                       group_by=AGGREGATE_KEYS.get(experiment, ()),
                                       drop=DROP_COLUMNS)
                cell = "" if label is None else f"scenario {label}, "
                if tlabel is not None:
                    cell += f"traffic {tlabel}, "
                parts = [f"== {experiment} — {description} == "
                         f"({cell}{spec.replicates} seeds)"]
                if table:
                    parts.append(format_table(table))
                wall = column_stats([outcome.wall_time for outcome in outcomes])
                if wall is not None:
                    parts.append(f"note: wall time per replicate: "
                                 f"{format_value(wall.mean)} ± {format_value(wall.std)}s")
                obs_note = _obs_note(outcomes)
                if obs_note is not None:
                    parts.append(obs_note)
                for note in outcomes[0].notes:
                    parts.append(f"note: {note}")
                blocks.append("\n".join(parts))
    return "\n\n".join(blocks)


def deterministic_report(result: CampaignResult) -> str:
    """:func:`campaign_report` minus the wall-clock-dependent notes.

    Wall times — and the obs summary lines computed from them — are the only
    backend-dependent fields, so this rendering must be byte-identical
    between serial and parallel executions of the same spec — the equality
    the tier-1 tests enforce.
    """
    lines = [line for line in campaign_report(result).splitlines()
             if not (line.startswith("note: wall time per replicate:")
                     or line.startswith("note: obs: "))]
    return "\n".join(lines)
