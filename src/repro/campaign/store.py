"""Persistent, resumable JSONL result store.

One line per completed task.  Record schema (all keys always present)::

    {
      "spec_hash":  str,   # CampaignSpec.spec_hash() of the owning campaign
      "task_id":    str,   # e.g. "E3/r1" or "E3/manet_waypoint[n=30]/r1"
      "experiment": str,   # "E1" ... "E10"
      "replicate":  int,
      "seed":       int,   # derived per-task seed
      "quick":      bool,
      "scenario":   null | {"name": str, "params": {...}},  # scenario cell
                           # (optional on load: absent in pre-axis stores)
      "traffic":    null | {"name": str, "params": {...}},  # traffic cell
                           # (optional on load: absent in pre-axis stores)
      "description": str,  # experiment description (for report headers)
      "wall_time":  float, # seconds spent executing the task
      "rows":       [ {column: value, ...}, ... ],   # metric rows
      "notes":      [ str, ... ],
      "attempts":   int,   # attempts the task consumed (optional, default 1)
      "obs":        null | {...}  # ObsContext.export() blob (optional:
                           # present only for campaigns run with obs=True)
    }

Append-only semantics make the store crash-safe: a run killed mid-task loses
at most the line being written.  :meth:`ResultStore.load` skips blank and
corrupt (partially written) lines, so resuming against a truncated store
simply re-runs the lost task.  Records are namespaced by ``spec_hash``;
:meth:`ResultStore.completed` only reports tasks of the requested campaign, so
one file can accumulate several campaigns without cross-talk.  Duplicate
``(spec_hash, task_id)`` lines can appear if two runs race on the same store
or a task is retried; the last line wins, matching the append order.
:meth:`ResultStore.compact` rewrites the file with only the surviving line
per ``(spec_hash, task_id)``.

:class:`SQLiteResultStore` is a drop-in alternative backed by a SQLite file
in WAL mode: several worker processes can append concurrently without losing
rows (SQLite serializes the writes; a busy writer waits instead of failing),
and the same duplicate/namespacing semantics hold through a monotonic rowid
standing in for file order.  :func:`open_store` picks the backend from the
path: a ``sqlite:`` prefix or a ``.sqlite``/``.db`` suffix selects SQLite,
anything else the JSONL reference backend.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["TaskRecord", "ResultStore", "SQLiteResultStore", "open_store"]


def _json_default(value: object) -> object:
    """Best-effort JSON coercion (numpy scalars expose ``item()``)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


@dataclass(frozen=True)
class TaskRecord:
    """One completed campaign task, as persisted in the store."""

    spec_hash: str
    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool
    description: str
    wall_time: float
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: ``ScenarioSpec.as_dict()`` of the task's scenario cell, or ``None`` for
    #: the default-workload cell (scenario-less campaigns).
    scenario: Optional[Dict[str, object]] = None
    #: ``TrafficSpec.as_dict()`` of the task's traffic cell, or ``None`` for
    #: the default cell (traffic-less campaigns).
    traffic: Optional[Dict[str, object]] = None
    #: How many attempts the task consumed (1 = first attempt succeeded);
    #: the CLI's final campaign summary counts retried tasks from it.
    attempts: int = 1
    #: ``ObsContext.export()`` blob of the task run (counters, gauges,
    #: histograms, span aggregates), or ``None`` when the campaign ran
    #: without observability.
    obs: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


#: Keys every persisted record must carry to parse (see module docstring).
_REQUIRED_KEYS = frozenset(
    ("spec_hash", "task_id", "experiment", "replicate", "seed", "quick",
     "description", "wall_time", "rows", "notes"))


def _record_from_json(line: str) -> Optional[TaskRecord]:
    """Parse one persisted JSON record; ``None`` for corrupt/foreign data."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict) or not _REQUIRED_KEYS <= set(data):
        return None
    # "scenario", "traffic", "attempts" and "obs" are optional so stores
    # written before those fields existed keep loading (records default to
    # the axis-less cell / single attempt / no observability).
    return TaskRecord(scenario=data.get("scenario"),
                      traffic=data.get("traffic"),
                      attempts=int(data.get("attempts", 1)),
                      obs=data.get("obs"),
                      **{k: data[k] for k in _REQUIRED_KEYS})


class ResultStore:
    """Append-only JSONL store of :class:`TaskRecord` lines."""

    REQUIRED_KEYS = _REQUIRED_KEYS

    def __init__(self, path: str):
        self.path = str(path)

    def append(self, record: TaskRecord) -> None:
        """Persist one completed task (flushed immediately)."""
        # Keys keep insertion order: metric-row column order is part of the
        # report rendering, so a resumed campaign must replay it exactly.
        line = json.dumps(record.as_dict(), default=_json_default)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def load(self, spec_hash: Optional[str] = None) -> List[TaskRecord]:
        """All parseable records (of ``spec_hash`` if given), in file order.

        Blank and corrupt lines — e.g. the partial trailing line of a crashed
        writer — are skipped silently; their tasks will simply re-run.
        """
        if not os.path.exists(self.path):
            return []
        records: List[TaskRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = _record_from_json(line)
                if record is None:
                    continue
                if spec_hash is not None and record.spec_hash != spec_hash:
                    continue
                records.append(record)
        return records

    def completed(self, spec_hash: str) -> Dict[str, TaskRecord]:
        """Mapping task_id -> record for one campaign (last duplicate wins)."""
        return {record.task_id: record for record in self.load(spec_hash)}

    def compact(self) -> int:
        """Drop superseded duplicate lines; returns how many were removed.

        Keeps, for every ``(spec_hash, task_id)``, only the *last* line —
        exactly the record :meth:`completed` already resolves to — so retried
        or raced tasks stop accumulating dead weight.  Corrupt and blank
        lines are dropped too (same as :meth:`load` skipping them; their
        tasks re-run either way).  The rewrite goes through a temp file and
        an atomic rename, so a crash mid-compaction leaves the original
        store intact.  Not safe against a *concurrent* appender — compact
        between campaign runs, not during one.
        """
        if not os.path.exists(self.path):
            return 0
        survivors: Dict[tuple, str] = {}
        total = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                total += 1
                record = _record_from_json(stripped)
                if record is None:
                    continue
                key = (record.spec_hash, record.task_id)
                # Re-insertion keeps first-occurrence order while the value
                # (the surviving line) is the last occurrence.
                survivors[key] = stripped
        tmp_path = self.path + ".compact.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for line in survivors.values():
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return total - len(survivors)


class SQLiteResultStore:
    """:class:`ResultStore`-compatible backend on a WAL-mode SQLite file.

    Records persist as their JSON blobs in an append-ordered table, so the
    schema never chases :class:`TaskRecord` fields and every JSONL semantic
    (spec-hash namespacing, last-duplicate-wins, optional fields) carries
    over by construction.  WAL journaling plus a generous busy timeout lets
    multiple worker processes append to the same store concurrently: writes
    serialize inside SQLite instead of interleaving half-written lines, so
    no row is ever lost or torn.  Each operation opens a short-lived
    connection — the store object itself stays picklable and fork/spawn
    friendly.
    """

    #: How long a writer waits on a locked database before giving up (ms).
    BUSY_TIMEOUT_MS = 30_000

    def __init__(self, path: str):
        self.path = str(path)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.BUSY_TIMEOUT_MS / 1000.0)
        conn.execute(f"PRAGMA busy_timeout = {self.BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS task_records ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " spec_hash TEXT NOT NULL,"
            " task_id TEXT NOT NULL,"
            " record TEXT NOT NULL)")
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_task_records_spec"
            " ON task_records (spec_hash, task_id)")
        return conn

    def append(self, record: TaskRecord) -> None:
        """Persist one completed task (committed immediately)."""
        line = json.dumps(record.as_dict(), default=_json_default)
        conn = self._connect()
        try:
            with conn:
                conn.execute(
                    "INSERT INTO task_records (spec_hash, task_id, record)"
                    " VALUES (?, ?, ?)",
                    (record.spec_hash, record.task_id, line))
        finally:
            conn.close()

    def load(self, spec_hash: Optional[str] = None) -> List[TaskRecord]:
        """All parseable records (of ``spec_hash`` if given), in append order."""
        if not os.path.exists(self.path):
            return []
        conn = self._connect()
        try:
            if spec_hash is None:
                cursor = conn.execute(
                    "SELECT record FROM task_records ORDER BY id")
            else:
                cursor = conn.execute(
                    "SELECT record FROM task_records WHERE spec_hash = ?"
                    " ORDER BY id", (spec_hash,))
            blobs = [row[0] for row in cursor]
        finally:
            conn.close()
        records: List[TaskRecord] = []
        for blob in blobs:
            record = _record_from_json(blob)
            if record is not None:
                records.append(record)
        return records

    def completed(self, spec_hash: str) -> Dict[str, TaskRecord]:
        """Mapping task_id -> record for one campaign (last duplicate wins)."""
        return {record.task_id: record for record in self.load(spec_hash)}

    def compact(self) -> int:
        """Drop superseded duplicate rows and VACUUM; returns rows removed.

        Keeps the highest-rowid record per ``(spec_hash, task_id)`` — the
        same record :meth:`completed` resolves to.  Like the JSONL variant,
        run it between campaigns, not while workers are appending.
        """
        if not os.path.exists(self.path):
            return 0
        conn = self._connect()
        try:
            with conn:
                cursor = conn.execute(
                    "DELETE FROM task_records WHERE id NOT IN ("
                    " SELECT MAX(id) FROM task_records"
                    " GROUP BY spec_hash, task_id)")
                removed = cursor.rowcount
            conn.execute("VACUUM")
        finally:
            conn.close()
        return removed


def open_store(path: str):
    """Pick the store backend from ``path``.

    ``sqlite:results.db`` (explicit prefix) or a bare ``.sqlite``/``.db``
    suffix opens a :class:`SQLiteResultStore`; every other path keeps the
    JSONL reference backend.
    """
    path = str(path)
    if path.startswith("sqlite:"):
        return SQLiteResultStore(path[len("sqlite:"):])
    if path.endswith((".sqlite", ".db")):
        return SQLiteResultStore(path)
    return ResultStore(path)
