"""Persistent, resumable JSONL result store.

One line per completed task.  Record schema (all keys always present)::

    {
      "spec_hash":  str,   # CampaignSpec.spec_hash() of the owning campaign
      "task_id":    str,   # e.g. "E3/r1" or "E3/manet_waypoint[n=30]/r1"
      "experiment": str,   # "E1" ... "E10"
      "replicate":  int,
      "seed":       int,   # derived per-task seed
      "quick":      bool,
      "scenario":   null | {"name": str, "params": {...}},  # scenario cell
                           # (optional on load: absent in pre-axis stores)
      "traffic":    null | {"name": str, "params": {...}},  # traffic cell
                           # (optional on load: absent in pre-axis stores)
      "description": str,  # experiment description (for report headers)
      "wall_time":  float, # seconds spent executing the task
      "rows":       [ {column: value, ...}, ... ],   # metric rows
      "notes":      [ str, ... ],
      "attempts":   int,   # attempts the task consumed (optional, default 1)
      "obs":        null | {...}  # ObsContext.export() blob (optional:
                           # present only for campaigns run with obs=True)
    }

Append-only semantics make the store crash-safe: a run killed mid-task loses
at most the line being written.  :meth:`ResultStore.load` skips blank and
corrupt (partially written) lines, so resuming against a truncated store
simply re-runs the lost task.  Records are namespaced by ``spec_hash``;
:meth:`ResultStore.completed` only reports tasks of the requested campaign, so
one file can accumulate several campaigns without cross-talk.  Duplicate
``(spec_hash, task_id)`` lines can appear if two runs race on the same store;
the last line wins, matching the append order.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["TaskRecord", "ResultStore"]


def _json_default(value: object) -> object:
    """Best-effort JSON coercion (numpy scalars expose ``item()``)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


@dataclass(frozen=True)
class TaskRecord:
    """One completed campaign task, as persisted in the store."""

    spec_hash: str
    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool
    description: str
    wall_time: float
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: ``ScenarioSpec.as_dict()`` of the task's scenario cell, or ``None`` for
    #: the default-workload cell (scenario-less campaigns).
    scenario: Optional[Dict[str, object]] = None
    #: ``TrafficSpec.as_dict()`` of the task's traffic cell, or ``None`` for
    #: the default cell (traffic-less campaigns).
    traffic: Optional[Dict[str, object]] = None
    #: How many attempts the task consumed (1 = first attempt succeeded);
    #: the CLI's final campaign summary counts retried tasks from it.
    attempts: int = 1
    #: ``ObsContext.export()`` blob of the task run (counters, gauges,
    #: histograms, span aggregates), or ``None`` when the campaign ran
    #: without observability.
    obs: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class ResultStore:
    """Append-only JSONL store of :class:`TaskRecord` lines."""

    REQUIRED_KEYS = frozenset(
        ("spec_hash", "task_id", "experiment", "replicate", "seed", "quick",
         "description", "wall_time", "rows", "notes"))

    def __init__(self, path: str):
        self.path = str(path)

    def append(self, record: TaskRecord) -> None:
        """Persist one completed task (flushed immediately)."""
        # Keys keep insertion order: metric-row column order is part of the
        # report rendering, so a resumed campaign must replay it exactly.
        line = json.dumps(record.as_dict(), default=_json_default)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def load(self, spec_hash: Optional[str] = None) -> List[TaskRecord]:
        """All parseable records (of ``spec_hash`` if given), in file order.

        Blank and corrupt lines — e.g. the partial trailing line of a crashed
        writer — are skipped silently; their tasks will simply re-run.
        """
        if not os.path.exists(self.path):
            return []
        records: List[TaskRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(data, dict) or not self.REQUIRED_KEYS <= set(data):
                    continue
                if spec_hash is not None and data["spec_hash"] != spec_hash:
                    continue
                # "scenario", "traffic", "attempts" and "obs" are optional so
                # stores written before those fields existed keep loading
                # (records default to the axis-less cell / single attempt /
                # no observability).
                records.append(TaskRecord(scenario=data.get("scenario"),
                                          traffic=data.get("traffic"),
                                          attempts=int(data.get("attempts", 1)),
                                          obs=data.get("obs"),
                                          **{k: data[k] for k in self.REQUIRED_KEYS}))
        return records

    def completed(self, spec_hash: str) -> Dict[str, TaskRecord]:
        """Mapping task_id -> record for one campaign (last duplicate wins)."""
        return {record.task_id: record for record in self.load(spec_hash)}
