"""Declarative campaign specifications.

A *campaign* is a grid of {experiment cell x seed replicate} expanded into
independent tasks.  Each experiment identifier (``"E1"`` ... ``"E10"``) names
one scenario x algorithm/config cell of the reproduction suite; the campaign
adds the replicate dimension on top, deriving one deterministic seed per task
from the campaign's root seed (via the same SHA-256 stream derivation the
simulator uses, see :func:`repro.sim.randomness.derive_seed`).

Determinism contract: ``CampaignSpec.expand()`` always yields the same task
list — same identifiers, same seeds, same order — for the same spec fields,
regardless of how (or on how many workers) the tasks later execute.  The
canonical spec hash (:meth:`CampaignSpec.spec_hash`) namespaces the result
store so records of one campaign never satisfy the resume check of another.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.randomness import derive_seed

__all__ = ["CampaignTask", "CampaignSpec"]


@dataclass(frozen=True)
class CampaignTask:
    """One independent unit of campaign work: a single seeded experiment run."""

    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable)."""
        return asdict(self)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a multi-seed experiment campaign.

    Parameters
    ----------
    name:
        Free-form campaign label (participates in the spec hash, so two
        otherwise identical campaigns with different names keep separate
        result namespaces).
    experiments:
        Experiment identifiers to run (each is one scenario x algorithm/config
        grid cell of the suite).
    replicates:
        Seed replicates per experiment cell.
    root_seed:
        Master seed; per-task seeds are derived deterministically from it.
    quick:
        Use the quick workload sizes (the full sizes otherwise).
    max_trace_records:
        Bound on stored trace records inside each worker (oldest records are
        dropped beyond it; per-category counters stay exact).  ``None`` keeps
        traces unbounded — avoid for long campaigns.
    """

    name: str
    experiments: Tuple[str, ...]
    replicates: int = 1
    root_seed: int = 0
    quick: bool = True
    max_trace_records: Optional[int] = 100_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiments",
                           tuple(str(e).upper() for e in self.experiments))
        if not self.experiments:
            raise ValueError("a campaign needs at least one experiment")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.max_trace_records is not None and self.max_trace_records < 0:
            raise ValueError("max_trace_records must be >= 0 or None")

    # ----------------------------------------------------------- identity

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form with the experiments as a list (JSON-serializable)."""
        data = asdict(self)
        data["experiments"] = list(self.experiments)
        return data

    def spec_hash(self) -> str:
        """Canonical hash of the spec, used to namespace result-store records."""
        payload = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ---------------------------------------------------------- expansion

    def task_seed(self, experiment: str, replicate: int) -> int:
        """Deterministic seed of the (experiment, replicate) task."""
        return derive_seed(self.root_seed, f"campaign/{experiment}/rep{replicate}")

    def expand(self) -> List[CampaignTask]:
        """Expand the grid into independent tasks, in canonical order."""
        tasks: List[CampaignTask] = []
        for experiment in self.experiments:
            for replicate in range(self.replicates):
                tasks.append(CampaignTask(
                    task_id=f"{experiment}/r{replicate}",
                    experiment=experiment,
                    replicate=replicate,
                    seed=self.task_seed(experiment, replicate),
                    quick=self.quick,
                ))
        return tasks
