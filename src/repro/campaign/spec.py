"""Declarative campaign specifications.

A *campaign* is a grid of {experiment cell x scenario cell x traffic cell x
seed replicate} expanded into independent tasks.  Each experiment identifier
(``"E1"`` ... ``"E11"``) names one measurement of the reproduction suite; the
optional scenario axis re-runs it across registered workloads
(:class:`repro.scenarios.ScenarioSpec` entries, e.g. a ``--sweep`` over node
count or speed), the optional traffic axis re-runs it across registered
application workloads (:class:`repro.traffic.TrafficSpec` entries), and the
replicate dimension derives one deterministic seed per task from the
campaign's root seed (via the same SHA-256 stream derivation the simulator
uses, see :func:`repro.sim.randomness.derive_seed`).

Determinism contract: ``CampaignSpec.expand()`` always yields the same task
list — same identifiers, same seeds, same order — for the same spec fields,
regardless of how (or on how many workers) the tasks later execute.  The
canonical spec hash (:meth:`CampaignSpec.spec_hash`) covers the scenario and
traffic axes too and namespaces the result store, so records of one campaign
never satisfy the resume check of another.  Per-task seeds mix the scenario's
canonical JSON — and, separately prefixed, the traffic cell's — into the
derivation, so no two cells of the same experiment ever share a seed
sequence, and a traffic cell can never impersonate a scenario cell in the
stream name (the ``traffic=`` prefix cannot be produced by a scenario's
canonical JSON, which always starts with ``{``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scenarios import ScenarioSpec, normalize_spec
from repro.sim.randomness import derive_seed
from repro.traffic import TrafficSpec, normalize_traffic_spec

__all__ = ["CampaignTask", "CampaignSpec"]


@dataclass(frozen=True)
class CampaignTask:
    """One independent unit of campaign work: a single seeded experiment run."""

    task_id: str
    experiment: str
    replicate: int
    seed: int
    quick: bool
    scenario: Optional[ScenarioSpec] = None
    traffic: Optional[TrafficSpec] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "task_id": self.task_id,
            "experiment": self.experiment,
            "replicate": self.replicate,
            "seed": self.seed,
            "quick": self.quick,
            "scenario": None if self.scenario is None else self.scenario.as_dict(),
            "traffic": None if self.traffic is None else self.traffic.as_dict(),
        }


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a multi-seed experiment campaign.

    Parameters
    ----------
    name:
        Free-form campaign label (participates in the spec hash, so two
        otherwise identical campaigns with different names keep separate
        result namespaces).
    experiments:
        Experiment identifiers to run (each is one measurement of the suite).
    replicates:
        Seed replicates per {experiment x scenario} cell.
    root_seed:
        Master seed; per-task seeds are derived deterministically from it.
    quick:
        Use the quick workload sizes (the full sizes otherwise).
    max_trace_records:
        Bound on stored trace records inside each worker (oldest records are
        dropped beyond it; per-category counters stay exact).  ``None`` keeps
        traces unbounded — avoid for long campaigns.
    scenarios:
        Scenario-axis cells: every experiment runs once per entry (specs or
        their ``as_dict`` forms).  Empty means "no scenario axis": each
        experiment builds its own default workload, task ids and seeds stay
        exactly as in scenario-less campaigns.
    traffics:
        Traffic-axis cells (:class:`repro.traffic.TrafficSpec` entries or
        their ``as_dict`` forms): every {experiment x scenario} cell runs
        once per entry.  Empty means "no traffic axis": traffic-aware
        experiments use their default workload, and task ids, seeds and the
        spec hash stay exactly as in traffic-less campaigns.
    task_timeout:
        Wall-clock budget (seconds) per task *attempt*; an attempt past the
        budget is aborted and counts as a failure.  ``None`` (default) never
        times out.
    task_retries:
        Extra attempts after a failed (crashed or timed-out) first attempt.
        A task that exhausts ``1 + task_retries`` attempts records a
        structured failure row instead of killing the campaign.
    obs:
        Collect runtime observability (metrics + spans, see
        :mod:`repro.obs`) around every task and persist the export blob in
        each :class:`~repro.campaign.store.TaskRecord`.  Off by default; the
        obs layer never consumes RNG or reorders events, so results are
        bit-identical either way — but the blobs change the stored records,
        so the flag participates in the spec hash when set.
    obs_heap:
        Additionally track peak heap per task via :mod:`tracemalloc`
        (noticeably slower; implies nothing unless ``obs`` is on).
    """

    name: str
    experiments: Tuple[str, ...]
    replicates: int = 1
    root_seed: int = 0
    quick: bool = True
    max_trace_records: Optional[int] = 100_000
    scenarios: Tuple[ScenarioSpec, ...] = field(default=())
    task_timeout: Optional[float] = None
    task_retries: int = 0
    traffics: Tuple[TrafficSpec, ...] = field(default=())
    obs: bool = False
    obs_heap: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiments",
                           tuple(str(e).upper() for e in self.experiments))
        if not self.experiments:
            raise ValueError("a campaign needs at least one experiment")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.max_trace_records is not None and self.max_trace_records < 0:
            raise ValueError("max_trace_records must be >= 0 or None")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        # Normalizing against the registry schema makes labels, seeds and the
        # spec hash describe the workload that actually builds: n=8, n=8.0
        # and n="8" are the same cell (and duplicate as such), and unknown
        # scenarios/parameters fail at spec creation, not mid-campaign.
        scenarios = tuple(
            normalize_spec(spec if isinstance(spec, ScenarioSpec)
                           else ScenarioSpec.from_dict(spec))
            for spec in self.scenarios)
        object.__setattr__(self, "scenarios", scenarios)
        labels = [spec.label() for spec in scenarios]
        if len(set(labels)) != len(labels):
            duplicates = sorted({lab for lab in labels if labels.count(lab) > 1})
            raise ValueError(f"duplicate scenario cell(s): {duplicates}")
        traffics = tuple(
            normalize_traffic_spec(spec if isinstance(spec, TrafficSpec)
                                   else TrafficSpec.from_dict(spec))
            for spec in self.traffics)
        object.__setattr__(self, "traffics", traffics)
        traffic_labels = [spec.label() for spec in traffics]
        if len(set(traffic_labels)) != len(traffic_labels):
            duplicates = sorted({lab for lab in traffic_labels
                                 if traffic_labels.count(lab) > 1})
            raise ValueError(f"duplicate traffic cell(s): {duplicates}")

    # ----------------------------------------------------------- identity

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable).

        The ``scenarios`` key is omitted when the axis is empty, and the
        execution-policy keys (``task_timeout`` / ``task_retries``) are
        omitted at their defaults, so the spec hash of a campaign that does
        not use these features is identical to what the earlier code produced
        — existing result stores keep resuming.  The policy keys *do*
        participate when set: a timeout can turn a slow task into a failure
        row, so records produced under different policies must not mix.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "experiments": list(self.experiments),
            "replicates": self.replicates,
            "root_seed": self.root_seed,
            "quick": self.quick,
            "max_trace_records": self.max_trace_records,
        }
        if self.scenarios:
            data["scenarios"] = [spec.as_dict() for spec in self.scenarios]
        if self.task_timeout is not None:
            data["task_timeout"] = self.task_timeout
        if self.task_retries:
            data["task_retries"] = self.task_retries
        # Like the scenario axis: omitted when empty, so traffic-less
        # campaigns keep their pre-axis spec hash and stores keep resuming.
        if self.traffics:
            data["traffics"] = [spec.as_dict() for spec in self.traffics]
        # Omitted when off (the pre-obs hash), present when on: obs blobs
        # change the stored records, so observed and unobserved campaigns
        # must not share a result namespace.
        if self.obs:
            data["obs"] = True
            if self.obs_heap:
                data["obs_heap"] = True
        return data

    def spec_hash(self) -> str:
        """Canonical hash of the spec, used to namespace result-store records."""
        payload = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ---------------------------------------------------------- expansion

    def scenario_cells(self) -> Tuple[Optional[ScenarioSpec], ...]:
        """The scenario axis: the declared cells, or a single default cell."""
        return self.scenarios if self.scenarios else (None,)

    def traffic_cells(self) -> Tuple[Optional[TrafficSpec], ...]:
        """The traffic axis: the declared cells, or a single default cell."""
        return self.traffics if self.traffics else (None,)

    def task_count(self) -> int:
        """Number of tasks :meth:`expand` yields, without deriving any seeds.

        Cheap arithmetic (progress denominators and the like should not pay
        one SHA-256 per task just to learn the grid size).
        """
        return (len(self.experiments) * len(self.scenario_cells())
                * len(self.traffic_cells()) * self.replicates)

    def task_seed(self, experiment: str, replicate: int,
                  scenario: Optional[ScenarioSpec] = None,
                  traffic: Optional[TrafficSpec] = None) -> int:
        """Deterministic seed of the (experiment, scenario, traffic, replicate) task.

        Axis-less derivation is unchanged from pre-axis campaigns, so adding
        either axis never silently re-seeds existing grids.  With a scenario
        the cell's canonical JSON joins the stream name; a traffic cell joins
        as a ``traffic=``-prefixed segment.  The prefix keeps the two axes
        collision-free by construction: a scenario's canonical JSON always
        starts with ``{``, so no scenario segment can ever read
        ``traffic=...`` — two cells of different kinds (or a cell and a
        cell-pair) never share a seed stream even when the underlying specs
        render identically (see ``tests/test_traffic.py``).
        """
        name = f"campaign/{experiment}"
        if scenario is not None:
            name += f"/{scenario.canonical_json()}"
        if traffic is not None:
            name += f"/traffic={traffic.canonical_json()}"
        return derive_seed(self.root_seed, f"{name}/rep{replicate}")

    def expand(self) -> List[CampaignTask]:
        """Expand the grid into independent tasks, in canonical order."""
        tasks: List[CampaignTask] = []
        for experiment in self.experiments:
            for scenario in self.scenario_cells():
                for traffic in self.traffic_cells():
                    prefix = experiment
                    if scenario is not None:
                        prefix += f"/{scenario.label()}"
                    if traffic is not None:
                        prefix += f"/{traffic.label()}"
                    for replicate in range(self.replicates):
                        tasks.append(CampaignTask(
                            task_id=f"{prefix}/r{replicate}",
                            experiment=experiment,
                            replicate=replicate,
                            seed=self.task_seed(experiment, replicate, scenario,
                                                traffic),
                            quick=self.quick,
                            scenario=scenario,
                            traffic=traffic,
                        ))
        return tasks
