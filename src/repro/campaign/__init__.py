"""Parallel campaign orchestrator.

A new layer between the simulator and the experiment suite: declarative
multi-seed campaign specs (:mod:`~repro.campaign.spec`), resumable result
stores — append-only JSONL and a concurrent-writer-safe SQLite backend
(:mod:`~repro.campaign.store`) — serial and multiprocessing execution
backends (:mod:`~repro.campaign.executor`) and cross-seed aggregation
(:mod:`~repro.campaign.aggregate`).
"""

from .aggregate import (ColumnStats, aggregate_metrics, campaign_report, column_stats,
                        deterministic_report)
from .executor import CampaignResult, TaskOutcome, execute_task, run_campaign
from .spec import CampaignSpec, CampaignTask
from .store import ResultStore, SQLiteResultStore, TaskRecord, open_store

__all__ = [
    "CampaignSpec",
    "CampaignTask",
    "CampaignResult",
    "TaskOutcome",
    "TaskRecord",
    "ResultStore",
    "SQLiteResultStore",
    "open_store",
    "ColumnStats",
    "aggregate_metrics",
    "column_stats",
    "campaign_report",
    "deterministic_report",
    "execute_task",
    "run_campaign",
]
