"""Reproduction of "Best-effort Group Service in Dynamic Networks" (SPAA 2010).

The package is organised around the paper's structure:

* :mod:`repro.core` — the GRP protocol (ancestor lists, the ``ant`` r-operator,
  marks, priorities, quarantine, the node state machine) and the formal
  predicates of the Dynamic Group Service specification;
* :mod:`repro.sim` — the discrete-event simulation kernel;
* :mod:`repro.net` — the wireless-network substrate (radios, channels,
  topology snapshots, fault injection);
* :mod:`repro.mobility` — synthetic mobility models (VANET highway, random
  waypoint, RPGM, …) and churn;
* :mod:`repro.baselines` — clustering comparators (lowest-ID, Max-Min
  d-cluster, k-hop clustering);
* :mod:`repro.metrics` — convergence, continuity, group and overhead metrics;
* :mod:`repro.experiments` — scenario builders, the experiment runner and the
  E1…E10 reproduction suite.

Quick start::

    from repro import GRPConfig, build_grp_network
    from repro.net.geometry import random_positions
    import numpy as np

    positions = random_positions(range(20), area=(300, 300), rng=np.random.default_rng(1))
    deployment = build_grp_network(positions, GRPConfig(dmax=3), radio_range=120, seed=1)
    deployment.run(30.0)
    print(deployment.views())
"""

from .core import (AncestorList, GRPConfig, GRPDeployment, GRPMessage, GRPNode, Mark,
                   agreement, build_grp_network, continuity, evaluate_configuration,
                   legitimate, maximality, omega, safety, topological)

__version__ = "1.0.0"

__all__ = [
    "AncestorList",
    "GRPConfig",
    "GRPDeployment",
    "GRPMessage",
    "GRPNode",
    "Mark",
    "agreement",
    "build_grp_network",
    "continuity",
    "evaluate_configuration",
    "legitimate",
    "maximality",
    "omega",
    "safety",
    "topological",
    "__version__",
]
