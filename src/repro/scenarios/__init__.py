"""Declarative scenario layer: registry, parameterized specs, build entry point.

Usage::

    from repro.scenarios import ScenarioSpec, build

    spec = ScenarioSpec.create("manet_waypoint", n=30, speed=8.0)
    deployment = build(spec, seed=42)

Scenario names, parameter schemas and defaults live in the registry
(:func:`scenario_names`, :func:`get_scenario`, :func:`format_catalog`); specs
are hashable and JSON-roundtrippable so the campaign layer can use them as
grid axes and persist them in result stores.
"""

from .registry import (REQUIRED, ScenarioDefinition, ScenarioParameter, build,
                       format_catalog, get_scenario, normalize_spec, parameter_names,
                       register_scenario, scenario, scenario_definitions, scenario_names)
from .spec import ScenarioSpec

# Importing the builders module populates the registry with the stock catalog.
from . import builders  # noqa: F401  (imported for its registration side effect)

__all__ = [
    "REQUIRED",
    "ScenarioDefinition",
    "ScenarioParameter",
    "ScenarioSpec",
    "build",
    "format_catalog",
    "get_scenario",
    "normalize_spec",
    "parameter_names",
    "register_scenario",
    "scenario",
    "scenario_definitions",
    "scenario_names",
]
