"""Registered scenario builders.

The nine historical workloads of ``repro.experiments.scenarios`` live here as
registry entries (that module keeps thin deprecated aliases), plus three newer
regimes: urban Manhattan-grid mobility, flash-crowd join/leave bursts, and a
sparse intermittently-connected field over a lossy delayed channel.

Every builder is a pure function of ``(seed, config, **params)``: all random
streams derive from the seed (via :class:`~repro.sim.randomness.SeedSequenceFactory`),
so the same spec and seed always produce a bit-identical deployment.
Structural scenarios publish their layout through
``deployment.scenario_metadata`` (e.g. the two cluster member lists).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.node import GRPConfig
from repro.core.protocol import GRPDeployment, build_grp_network
from repro.mobility.churn import ChurnEvent, ChurnSchedule
from repro.mobility.highway import HighwayMobility
from repro.mobility.manhattan import ManhattanGridMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.sparse_waypoint import SparseWaypointMobility
from repro.net.channel import LossyChannel
from repro.net.geometry import line_positions, random_positions
from repro.sim.randomness import SeedSequenceFactory

from .registry import ScenarioParameter, scenario

__all__: List[str] = []  # Everything is consumed through the registry.


def _config(config: Optional[GRPConfig], dmax: int) -> GRPConfig:
    return config if config is not None else GRPConfig(dmax=dmax)


def _p(name: str, kind: str, default: object, description: str) -> ScenarioParameter:
    return ScenarioParameter(name=name, kind=kind, default=default, description=description)


# ------------------------------------------------------------ static layouts

@scenario(
    "static_random",
    "Uniformly random static placement in a square area",
    [_p("n", "int", 20, "number of nodes"),
     _p("area", "float", 300.0, "side of the square area"),
     _p("radio_range", "float", 110.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability")],
    tags=("static",))
def static_random(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                  radio_range: float, dmax: int, loss_probability: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(area, area), rng=seeds.stream("placement"))
    return build_grp_network(positions, cfg, radio_range=radio_range,
                             loss_probability=loss_probability, seed=seed)


@scenario(
    "line_topology",
    "Chain of equally spaced static nodes",
    [_p("n", "int", 6, "number of nodes"),
     _p("spacing", "float", 45.0, "distance between consecutive nodes"),
     _p("radio_range", "float", 50.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound")],
    tags=("static", "structural"))
def line_topology(*, seed: int, config: Optional[GRPConfig], n: int, spacing: float,
                  radio_range: float, dmax: int) -> GRPDeployment:
    cfg = _config(config, dmax)
    positions = line_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)


@scenario(
    "two_cluster_topology",
    "Two tight static clusters separated by a gap (merging experiment)",
    [_p("cluster_size", "int", 3, "nodes per cluster"),
     _p("gap", "float", 400.0, "distance between the clusters"),
     _p("spacing", "float", 30.0, "intra-cluster node spacing"),
     _p("radio_range", "float", 90.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound")],
    tags=("static", "structural"))
def two_cluster_topology(*, seed: int, config: Optional[GRPConfig], cluster_size: int,
                         gap: float, spacing: float, radio_range: float,
                         dmax: int) -> GRPDeployment:
    cfg = _config(config, dmax)
    positions: Dict[Hashable, Tuple[float, float]] = {}
    left = list(range(cluster_size))
    right = list(range(cluster_size, 2 * cluster_size))
    for index, node in enumerate(left):
        positions[node] = (index * spacing, 0.0)
    offset = (cluster_size - 1) * spacing + gap
    for index, node in enumerate(right):
        positions[node] = (offset + index * spacing, 0.0)
    deployment = build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)
    deployment.scenario_metadata = {"left": left, "right": right}
    return deployment


@scenario(
    "ring_of_clusters",
    "Static clusters on a circle, each in range of both neighbours",
    [_p("cluster_count", "int", 4, "number of clusters on the ring"),
     _p("cluster_size", "int", 3, "nodes per cluster"),
     _p("ring_radius", "float", 110.0, "radius of the ring of cluster centres"),
     _p("cluster_radius", "float", 18.0, "spread of one cluster around its centre"),
     _p("radio_range", "float", 120.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound")],
    tags=("static", "structural"))
def ring_of_clusters(*, seed: int, config: Optional[GRPConfig], cluster_count: int,
                     cluster_size: int, ring_radius: float, cluster_radius: float,
                     radio_range: float, dmax: int) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    rng = seeds.stream("placement")
    positions: Dict[Hashable, Tuple[float, float]] = {}
    clusters: List[List] = []
    node_id = 0
    for index in range(cluster_count):
        angle = 2 * math.pi * index / cluster_count
        cx = ring_radius * math.cos(angle) + ring_radius
        cy = ring_radius * math.sin(angle) + ring_radius
        members = []
        for _ in range(cluster_size):
            dx, dy = rng.uniform(-cluster_radius, cluster_radius, size=2)
            positions[node_id] = (cx + float(dx), cy + float(dy))
            members.append(node_id)
            node_id += 1
        clusters.append(members)
    deployment = build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)
    deployment.scenario_metadata = {"clusters": clusters}
    return deployment


# ----------------------------------------------------------- mobile regimes

@scenario(
    "manet_waypoint",
    "Random-waypoint MANET in a square area",
    [_p("n", "int", 20, "number of nodes"),
     _p("area", "float", 300.0, "side of the square area"),
     _p("radio_range", "float", 120.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("speed", "float", 2.0, "max node speed (min is half of it)"),
     _p("pause_time", "float", 0.0, "pause at each waypoint"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability")],
    tags=("mobile",))
def manet_waypoint(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                   radio_range: float, dmax: int, speed: float, pause_time: float,
                   loss_probability: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypointMobility((area, area), min_speed=speed * 0.5, max_speed=speed,
                                      pause_time=pause_time, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed)


@scenario(
    "vanet_highway",
    "Multi-lane ring-road VANET with per-lane speeds",
    [_p("n", "int", 18, "number of vehicles"),
     _p("road_length", "float", 1500.0, "length of the ring road"),
     _p("radio_range", "float", 180.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("lane_count", "int", 2, "number of lanes"),
     _p("base_speed", "float", 25.0, "nominal speed of the slowest lane"),
     _p("spacing", "float", 40.0, "initial bumper-to-bumper spacing"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability")],
    tags=("mobile", "vanet"))
def vanet_highway(*, seed: int, config: Optional[GRPConfig], n: int, road_length: float,
                  radio_range: float, dmax: int, lane_count: int, base_speed: float,
                  spacing: float, loss_probability: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = HighwayMobility(road_length=road_length, lane_count=lane_count,
                               base_speed=base_speed, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed)


@scenario(
    "rpgm_scenario",
    "Reference-point group mobility: convoys moving together",
    [_p("group_sizes", "int_tuple", (4, 4, 3), "nodes per convoy (e.g. 4+4+3)"),
     _p("area", "float", 300.0, "side of the square area"),
     _p("radio_range", "float", 100.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("group_speed", "float", 4.0, "speed of each convoy's reference point"),
     _p("member_radius", "float", 30.0, "member spread around the reference point")],
    tags=("mobile", "group"))
def rpgm_scenario(*, seed: int, config: Optional[GRPConfig], group_sizes: Tuple[int, ...],
                  area: float, radio_range: float, dmax: int, group_speed: float,
                  member_radius: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    groups: List[List[int]] = []
    node_id = 0
    for size in group_sizes:
        groups.append(list(range(node_id, node_id + size)))
        node_id += size
    mobility = ReferencePointGroupMobility((area, area), groups, group_speed=group_speed,
                                           member_radius=member_radius,
                                           rng=seeds.stream("mobility"))
    positions = mobility.initial_positions([n for group in groups for n in group])
    deployment = build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                                   seed=seed)
    deployment.scenario_metadata = {"groups": groups}
    return deployment


# ------------------------------------------------------ large-scale regimes

@scenario(
    "large_manet_waypoint",
    "Thousand-node random-waypoint field (large-network asymptotics)",
    [_p("n", "int", 1000, "number of nodes"),
     _p("area", "float", 2000.0, "side of the square area"),
     _p("radio_range", "float", 120.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("speed", "float", 10.0, "max node speed (min is half of it)"),
     _p("pause_time", "float", 0.0, "pause at each waypoint"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability"),
     _p("use_spatial_index", "bool", True, "serve neighbour queries from the grid index")],
    tags=("mobile", "large"))
def large_manet_waypoint(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                         radio_range: float, dmax: int, speed: float, pause_time: float,
                         loss_probability: float, use_spatial_index: bool) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypointMobility((area, area), min_speed=speed * 0.5, max_speed=speed,
                                      pause_time=pause_time, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed,
                             use_spatial_index=use_spatial_index)


@scenario(
    "dense_highway_convoy",
    "Dense bumper-to-bumper VANET convoy across many lanes",
    [_p("n", "int", 600, "number of vehicles"),
     _p("road_length", "float", 3000.0, "length of the ring road"),
     _p("radio_range", "float", 200.0, "unit-disk radio range"),
     _p("dmax", "int", 4, "group diameter bound"),
     _p("lane_count", "int", 6, "number of lanes"),
     _p("base_speed", "float", 25.0, "nominal speed of the slowest lane"),
     _p("spacing", "float", 15.0, "initial bumper-to-bumper spacing"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability"),
     _p("use_spatial_index", "bool", True, "serve neighbour queries from the grid index")],
    tags=("mobile", "vanet", "large"))
def dense_highway_convoy(*, seed: int, config: Optional[GRPConfig], n: int,
                         road_length: float, radio_range: float, dmax: int, lane_count: int,
                         base_speed: float, spacing: float, loss_probability: float,
                         use_spatial_index: bool) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = HighwayMobility(road_length=road_length, lane_count=lane_count,
                               base_speed=base_speed, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed,
                             use_spatial_index=use_spatial_index)


# ------------------------------------------------------------- new regimes

@scenario(
    "manhattan_grid",
    "Urban Manhattan-grid mobility: nodes funnel down city streets",
    [_p("n", "int", 40, "number of nodes"),
     _p("area", "float", 600.0, "side of the square city"),
     _p("block_size", "float", 100.0, "distance between parallel streets"),
     _p("radio_range", "float", 100.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("speed", "float", 8.0, "travel speed along the streets"),
     _p("turn_probability", "float", 0.5, "probability of turning at an intersection"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability")],
    tags=("mobile", "urban"))
def manhattan_grid(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                   block_size: float, radio_range: float, dmax: int, speed: float,
                   turn_probability: float, loss_probability: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = ManhattanGridMobility(area=area, block_size=block_size, speed=speed,
                                     turn_probability=turn_probability,
                                     rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed)


@scenario(
    "flash_crowd",
    "Join/leave bursts: waves of nodes power off and return together",
    [_p("n", "int", 30, "number of nodes"),
     _p("area", "float", 400.0, "side of the square area"),
     _p("radio_range", "float", 130.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("speed", "float", 1.5, "max node speed (0 keeps the field static)"),
     _p("burst_fraction", "float", 0.3, "fraction of nodes leaving per burst"),
     _p("burst_period", "float", 30.0, "time between consecutive bursts"),
     _p("off_time", "float", 10.0, "how long a burst stays away"),
     _p("first_burst", "float", 40.0, "time of the first burst (after stabilization)"),
     _p("horizon", "float", 400.0, "schedule bursts up to this simulated time"),
     _p("loss_probability", "float", 0.0, "per-receiver message loss probability")],
    tags=("mobile", "churn"))
def flash_crowd(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                radio_range: float, dmax: int, speed: float, burst_fraction: float,
                burst_period: float, off_time: float, first_burst: float, horizon: float,
                loss_probability: float) -> GRPDeployment:
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError("burst_fraction must be in [0, 1]")
    if burst_period <= 0 or off_time <= 0:
        raise ValueError("burst_period and off_time must be positive")
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = None
    if speed > 0:
        mobility = RandomWaypointMobility((area, area), min_speed=speed * 0.5,
                                          max_speed=speed, rng=seeds.stream("mobility"))
        positions = mobility.initial_positions(range(n))
    else:
        positions = random_positions(range(n), area=(area, area),
                                     rng=seeds.stream("placement"))
    deployment = build_grp_network(positions, cfg, radio_range=radio_range,
                                   mobility=mobility, loss_probability=loss_probability,
                                   seed=seed)
    churn_rng = seeds.stream("churn")
    burst_size = max(1, int(round(burst_fraction * n)))
    events: List[ChurnEvent] = []
    time = first_burst
    while time < horizon:
        # Node ids are a fixed ordered range, so the draw never depends on
        # set-iteration order (PYTHONHASHSEED independence).
        leavers = sorted(int(i) for i in churn_rng.choice(n, size=burst_size, replace=False))
        for node in leavers:
            events.append(ChurnEvent(time=time, node_id=node, active=False))
            events.append(ChurnEvent(time=time + off_time, node_id=node, active=True))
        time += burst_period
    schedule = ChurnSchedule(events)
    schedule.install(deployment.network)
    deployment.scenario_metadata = {"churn_schedule": schedule, "burst_size": burst_size}
    return deployment


@scenario(
    "city_scale",
    "Hundred-thousand-node static urban field: dense hotspots over a sparse background",
    [_p("n", "int", 100_000, "number of nodes"),
     _p("area", "float", 30_000.0, "side of the square city"),
     _p("radio_range", "float", 100.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("hotspot_count", "int", 12, "number of dense urban hotspots"),
     _p("hotspot_fraction", "float", 0.6, "fraction of nodes placed in hotspots"),
     _p("hotspot_sigma", "float", 2_000.0, "gaussian spread of one hotspot"),
     _p("loss_probability", "float", 0.05, "per-receiver message loss probability"),
     _p("min_delay", "float", 0.05, "minimum channel delivery delay"),
     _p("max_delay", "float", 0.05, "maximum channel delivery delay"),
     _p("use_spatial_index", "bool", True, "serve neighbour queries from the grid index")],
    tags=("static", "large", "urban"))
def city_scale(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
               radio_range: float, dmax: int, hotspot_count: int,
               hotspot_fraction: float, hotspot_sigma: float, loss_probability: float,
               min_delay: float, max_delay: float,
               use_spatial_index: bool) -> GRPDeployment:
    """Static mega-city: the sharding and store benchmarks' reference workload.

    A ``hotspot_fraction`` share of the nodes cluster around gaussian city
    centres; the rest spread uniformly (suburban background).  The channel is
    lossy with a *positive minimum delay*, which gives any windowed executor
    (e.g. :mod:`repro.shard`) a non-zero lookahead; the default keeps
    ``min_delay == max_delay`` so the vectorized delivery batch path stays
    engaged.  The field is static — ownership of a spatial tile never changes.
    """
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    if hotspot_count <= 0:
        raise ValueError("hotspot_count must be positive")
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    positions = _hotspot_field(seeds.stream("placement"), n, area, hotspot_count,
                               hotspot_fraction, hotspot_sigma)
    channel = LossyChannel(loss_probability=loss_probability, min_delay=min_delay,
                           max_delay=max_delay)
    return build_grp_network(positions, cfg, radio_range=radio_range, channel=channel,
                             seed=seed, use_spatial_index=use_spatial_index)


def _hotspot_field(rng, n: int, area: float, hotspot_count: int,
                   hotspot_fraction: float,
                   hotspot_sigma: float) -> Dict[Hashable, Tuple[float, float]]:
    """Gaussian-hotspot urban placement shared by the ``city_scale`` family."""
    in_hotspots = int(round(hotspot_fraction * n))
    centres = rng.uniform(0.0, area, size=(hotspot_count, 2))
    # One vectorized pass per coordinate set; positions assemble in node-id
    # order so the layout is independent of dict iteration order.
    choice = rng.integers(0, hotspot_count, size=in_hotspots)
    spread = rng.normal(0.0, hotspot_sigma, size=(in_hotspots, 2))
    hotspot_xy = (centres[choice] + spread).clip(0.0, area)
    background_xy = rng.uniform(0.0, area, size=(n - in_hotspots, 2))
    positions: Dict[Hashable, Tuple[float, float]] = {}
    for node in range(in_hotspots):
        positions[node] = (float(hotspot_xy[node, 0]), float(hotspot_xy[node, 1]))
    for index in range(n - in_hotspots):
        positions[in_hotspots + index] = (float(background_xy[index, 0]),
                                          float(background_xy[index, 1]))
    return positions


@scenario(
    "city_scale_mobile",
    "Mega-city hotspot field where a sparse fraction of nodes circulate",
    [_p("n", "int", 100_000, "number of nodes"),
     _p("area", "float", 30_000.0, "side of the square city"),
     _p("radio_range", "float", 100.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("hotspot_count", "int", 12, "number of dense urban hotspots"),
     _p("hotspot_fraction", "float", 0.6, "fraction of nodes placed in hotspots"),
     _p("hotspot_sigma", "float", 2_000.0, "gaussian spread of one hotspot"),
     _p("mover_fraction", "float", 0.01, "fraction of nodes that move"),
     _p("speed", "float", 15.0, "maximum mover speed (min is half)"),
     _p("pause_time", "float", 5.0, "waypoint pause duration"),
     _p("loss_probability", "float", 0.05, "per-receiver message loss probability"),
     _p("min_delay", "float", 0.05, "minimum channel delivery delay"),
     _p("max_delay", "float", 0.05, "maximum channel delivery delay"),
     _p("use_spatial_index", "bool", True, "serve neighbour queries from the grid index")],
    tags=("mobile", "large", "urban"))
def city_scale_mobile(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                      radio_range: float, dmax: int, hotspot_count: int,
                      hotspot_fraction: float, hotspot_sigma: float,
                      mover_fraction: float, speed: float, pause_time: float,
                      loss_probability: float, min_delay: float, max_delay: float,
                      use_spatial_index: bool) -> GRPDeployment:
    """``city_scale`` with a circulating minority: the incremental-CSR workload.

    The static hotspot field of :func:`city_scale` plus
    :class:`~repro.mobility.sparse_waypoint.SparseWaypointMobility`: a
    ``mover_fraction`` share of the nodes (1% by default) follow random
    waypoints while everyone else stays parked.  Each mobility tick therefore
    dirties only a small, roughly constant set of array-store rows — exactly
    the regime where the array link-state's CSR patch beats a full rebuild.
    """
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    if hotspot_count <= 0:
        raise ValueError("hotspot_count must be positive")
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    positions = _hotspot_field(seeds.stream("placement"), n, area, hotspot_count,
                               hotspot_fraction, hotspot_sigma)
    mobility = SparseWaypointMobility((area, area), min_speed=speed * 0.5,
                                      max_speed=speed, mover_fraction=mover_fraction,
                                      pause_time=pause_time,
                                      rng=seeds.stream("mobility"))
    channel = LossyChannel(loss_probability=loss_probability, min_delay=min_delay,
                           max_delay=max_delay)
    return build_grp_network(positions, cfg, radio_range=radio_range, channel=channel,
                             mobility=mobility, seed=seed,
                             use_spatial_index=use_spatial_index)


@scenario(
    "sparse_lossy_field",
    "Sparse intermittently-connected field over a lossy delayed channel",
    [_p("n", "int", 40, "number of nodes"),
     _p("area", "float", 1500.0, "side of the square area (sparse by default)"),
     _p("radio_range", "float", 100.0, "unit-disk radio range"),
     _p("dmax", "int", 3, "group diameter bound"),
     _p("speed", "float", 1.0, "random-walk speed"),
     _p("turn_interval", "float", 10.0, "time between random heading changes"),
     _p("loss_probability", "float", 0.3, "per-receiver message loss probability"),
     _p("min_delay", "float", 0.05, "minimum channel delivery delay"),
     _p("max_delay", "float", 0.2, "maximum channel delivery delay")],
    tags=("mobile", "sparse", "lossy"))
def sparse_lossy_field(*, seed: int, config: Optional[GRPConfig], n: int, area: float,
                       radio_range: float, dmax: int, speed: float, turn_interval: float,
                       loss_probability: float, min_delay: float,
                       max_delay: float) -> GRPDeployment:
    cfg = _config(config, dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWalkMobility((area, area), speed=speed, turn_interval=turn_interval,
                                  rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    channel = LossyChannel(loss_probability=loss_probability, min_delay=min_delay,
                           max_delay=max_delay)
    return build_grp_network(positions, cfg, radio_range=radio_range, channel=channel,
                             mobility=mobility, seed=seed)
