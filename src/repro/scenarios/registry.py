"""The scenario registry: named builders with declared parameter schemas.

Every workload the harness can run is registered here as a
:class:`ScenarioDefinition`: a name, a one-line description, a typed parameter
schema with defaults, and a builder returning a ready-to-run
:class:`~repro.core.protocol.GRPDeployment`.  The registry is the single
source of truth consumed by

* the experiment suite (default workloads and ``--scenario`` overrides),
* the campaign layer (scenario axes of a result grid),
* the CLI (``--scenario`` / ``--set`` / ``--sweep`` / ``--list-scenarios``),
* the documentation (the README scenario catalog is rendered from it).

Determinism contract: :func:`build` is a pure function of
``(spec, seed, config)`` — the same arguments always produce a bit-identical
deployment, whatever process builds it.  Builders must derive every random
stream from the given seed (conventionally through
:class:`repro.sim.randomness.SeedSequenceFactory`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .spec import ScenarioSpec

__all__ = ["REQUIRED", "ScenarioParameter", "ScenarioDefinition", "register_scenario",
           "scenario", "get_scenario", "scenario_names", "scenario_definitions",
           "build", "normalize_spec", "parameter_names", "format_catalog"]

#: Sentinel default marking a parameter that every spec must provide.
REQUIRED = object()

_TRUE_STRINGS = frozenset(("1", "true", "yes", "on"))
_FALSE_STRINGS = frozenset(("0", "false", "no", "off"))


@dataclass(frozen=True)
class ScenarioParameter:
    """One declared scenario parameter: name, kind, default, description.

    ``kind`` is one of ``"int"``, ``"float"``, ``"bool"``, ``"str"`` and
    ``"int_tuple"`` (a ``+``-separated list on the command line, e.g.
    ``group_sizes=4+4+3``).
    """

    name: str
    kind: str
    default: object = REQUIRED
    description: str = ""

    KINDS = ("int", "float", "bool", "str", "int_tuple")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown parameter kind {self.kind!r}; valid: {self.KINDS}")

    @property
    def required(self) -> bool:
        """Whether the parameter has no default."""
        return self.default is REQUIRED

    def coerce(self, value: object) -> object:
        """Coerce ``value`` (possibly a CLI string) to the declared kind."""
        try:
            if self.kind == "int":
                if isinstance(value, bool):
                    raise ValueError("bool is not an int")
                return int(value)
            if self.kind == "float":
                if isinstance(value, bool):
                    raise ValueError("bool is not a float")
                return float(value)
            if self.kind == "bool":
                if isinstance(value, bool):
                    return value
                text = str(value).strip().lower()
                if text in _TRUE_STRINGS:
                    return True
                if text in _FALSE_STRINGS:
                    return False
                raise ValueError(f"not a boolean: {value!r}")
            if self.kind == "int_tuple":
                if isinstance(value, str):
                    parts = [p for p in value.split("+") if p]
                else:
                    parts = list(value)
                result = tuple(int(p) for p in parts)
                if not result:
                    raise ValueError("empty tuple")
                return result
            return str(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"parameter {self.name!r} expects kind {self.kind!r}, "
                f"got {value!r} ({exc})") from None


@dataclass(frozen=True)
class ScenarioDefinition:
    """A registered scenario: builder plus declared parameter schema."""

    name: str
    description: str
    parameters: Tuple[ScenarioParameter, ...]
    builder: Callable[..., object]
    tags: Tuple[str, ...] = field(default=())

    def parameter(self, name: str) -> ScenarioParameter:
        """The declared parameter called ``name``."""
        for param in self.parameters:
            if param.name == name:
                return param
        raise KeyError(f"scenario {self.name!r} has no parameter {name!r}; "
                       f"valid: {[p.name for p in self.parameters]}")

    def defaults(self) -> Dict[str, object]:
        """Default value of every optional parameter."""
        return {p.name: p.default for p in self.parameters if not p.required}

    def resolve_params(self, explicit: Mapping[str, object]) -> Dict[str, object]:
        """Merge ``explicit`` over the defaults, validating and coercing.

        Unknown and missing-required parameters raise ``ValueError`` so a
        typo'd ``--set`` flag fails before any simulation runs.
        """
        declared = {p.name: p for p in self.parameters}
        unknown = sorted(set(explicit) - set(declared))
        if unknown:
            raise ValueError(f"unknown parameter(s) {unknown} for scenario {self.name!r}; "
                             f"valid: {sorted(declared)}")
        resolved: Dict[str, object] = {}
        for param in self.parameters:
            if param.name in explicit:
                resolved[param.name] = param.coerce(explicit[param.name])
            elif param.required:
                raise ValueError(
                    f"scenario {self.name!r} requires parameter {param.name!r}")
            else:
                resolved[param.name] = param.default
        return resolved


_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(definition: ScenarioDefinition) -> ScenarioDefinition:
    """Add a definition to the registry (duplicate names are an error)."""
    if definition.name in _REGISTRY:
        raise ValueError(f"scenario {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition
    return definition


def scenario(name: str, description: str, parameters: List[ScenarioParameter],
             tags: Tuple[str, ...] = ()) -> Callable:
    """Decorator registering a builder function as a scenario.

    The builder is called as ``builder(seed=..., config=..., **params)`` with
    every declared parameter resolved, and must return a
    :class:`~repro.core.protocol.GRPDeployment`.
    """
    def decorate(builder: Callable) -> Callable:
        register_scenario(ScenarioDefinition(
            name=name, description=description, parameters=tuple(parameters),
            builder=builder, tags=tuple(tags)))
        return builder
    return decorate


def get_scenario(name: str) -> ScenarioDefinition:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; valid: {scenario_names()}") from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def scenario_definitions() -> List[ScenarioDefinition]:
    """Every registered definition, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def parameter_names(name: str) -> List[str]:
    """Declared parameter names of the scenario called ``name``."""
    return [p.name for p in get_scenario(name).parameters]


def normalize_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """Coerce the spec's explicit parameters through the registry schema.

    Defaults are *not* filled in (specs stay minimal, labels stay compact),
    but every explicit value takes its canonical type — so
    ``create("static_random", n=8.0)``, ``n="8"`` and ``n=8`` normalize to the
    same spec, and label / seed-derivation / hash always describe the workload
    that actually builds.  Unknown scenarios or parameters raise.
    """
    definition = get_scenario(spec.name)
    unknown = sorted(set(spec.param_dict) - {p.name for p in definition.parameters})
    if unknown:
        raise ValueError(f"unknown parameter(s) {unknown} for scenario {spec.name!r}; "
                         f"valid: {sorted(p.name for p in definition.parameters)}")
    coerced = {name: definition.parameter(name).coerce(value)
               for name, value in spec.params}
    return ScenarioSpec(name=spec.name, params=tuple(coerced.items()))


def build(spec: ScenarioSpec, seed: int = 0, config: Optional[object] = None):
    """Build the deployment described by ``spec``.

    Parameters declared by the scenario but absent from the spec take their
    registry defaults; unknown parameters raise ``ValueError``.  ``config``
    optionally forces the :class:`~repro.core.node.GRPConfig` shared by all
    nodes (experiments use it for protocol ablations); builders fall back to
    ``GRPConfig(dmax=dmax)`` when it is ``None``, exactly like the historical
    ad-hoc builder functions.
    """
    definition = get_scenario(spec.name)
    params = definition.resolve_params(spec.param_dict)
    return definition.builder(seed=int(seed), config=config, **params)


def format_catalog(verbose: bool = True) -> str:
    """Human-readable catalog of every registered scenario.

    Printed by ``--list-scenarios`` and pasted (regenerated) into the README.
    """
    lines: List[str] = []
    for definition in scenario_definitions():
        lines.append(f"{definition.name}: {definition.description}")
        if not verbose:
            continue
        for param in definition.parameters:
            default = "required" if param.required else f"default {param.default!r}"
            detail = f" — {param.description}" if param.description else ""
            lines.append(f"    {param.name} ({param.kind}, {default}){detail}")
    return "\n".join(lines)
