"""Ordered lists of ancestors' sets and the ``ant`` r-operator.

The central data structure of GRP (paper Section 4.2).  A node ``v`` maintains
an ordered list ``(a0, a1, ..., ap)`` where ``ai`` is the set of identities
believed to be at distance ``i`` from ``v`` (``a0 = {v}``).  Lists are combined
with:

* ``⊕`` (:meth:`AncestorList.merge`): level-wise union followed by duplicate
  removal — an identity is kept only at its smallest level — and removal of
  trailing empty levels;
* ``r`` (:meth:`AncestorList.shifted`): prepend an empty level (one more hop);
* ``ant(l1, l2) = l1 ⊕ r(l2)`` (:meth:`AncestorList.ant`), the strictly
  idempotent r-operator the stabilization proofs rely on.

Every identity occurrence carries a :class:`~repro.core.identity.Mark`.
Instances are immutable; all operations return new lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from .identity import Mark, NodeId

__all__ = ["AncestorList", "WireList"]

#: Wire representation: a tuple of levels, each level a tuple of (node, mark-int)
#: pairs sorted by ``str(node)`` — hashable, comparable and JSON-friendly.
WireList = Tuple[Tuple[Tuple[NodeId, int], ...], ...]


def _normalize(levels: Sequence[Mapping[NodeId, Mark]],
               dedupe: bool = True) -> Tuple[Dict[NodeId, Mark], ...]:
    """Canonicalize levels: optional cross-level dedup, strip trailing empties."""
    cleaned: list = []
    seen: Dict[NodeId, int] = {}
    for index, level in enumerate(levels):
        new_level: Dict[NodeId, Mark] = {}
        for node, mark in level.items():
            mark = Mark(mark)
            if dedupe and node in seen:
                # Keep the occurrence at the smallest level; if the duplicate is
                # at the same level, keep the strongest mark.
                if seen[node] == index:
                    prev = new_level.get(node, Mark.NONE)
                    new_level[node] = Mark(max(prev, mark))
                continue
            if node in new_level:
                new_level[node] = Mark(max(new_level[node], mark))
            else:
                new_level[node] = mark
                seen[node] = index
        cleaned.append(new_level)
    while cleaned and not cleaned[-1]:
        cleaned.pop()
    return tuple(cleaned)


class AncestorList:
    """Immutable ordered list of ancestors' sets.

    Parameters
    ----------
    levels:
        Sequence of mappings ``{node: mark}``; duplicates across levels are
        removed (smallest level wins) and trailing empty levels are dropped.
    """

    __slots__ = ("_levels", "_hash")

    def __init__(self, levels: Sequence[Mapping[NodeId, Mark]] = ()):
        self._levels = _normalize(levels)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def singleton(cls, node: NodeId, mark: Mark = Mark.NONE) -> "AncestorList":
        """The list ``({node})`` — a node's initial knowledge, or a rejected sender."""
        return cls(({node: Mark(mark)},))

    @classmethod
    def from_levels(cls, levels: Sequence[Iterable[NodeId]]) -> "AncestorList":
        """Build an unmarked list from plain sets of identities per level."""
        return cls(tuple({node: Mark.NONE for node in level} for level in levels))

    @classmethod
    def from_wire(cls, wire: WireList) -> "AncestorList":
        """Rebuild a list from its wire representation."""
        return cls(tuple({node: Mark(mark) for node, mark in level} for level in wire))

    # ----------------------------------------------------------------- queries

    @property
    def levels(self) -> Tuple[Dict[NodeId, Mark], ...]:
        """Levels as a tuple of ``{node: mark}`` dict copies."""
        return tuple(dict(level) for level in self._levels)

    def __len__(self) -> int:
        """Number of levels — ``s(list)`` in the paper's pseudo-code."""
        return len(self._levels)

    def __bool__(self) -> bool:
        return bool(self._levels)

    def level(self, index: int) -> Dict[NodeId, Mark]:
        """The set of identities (with marks) at distance ``index``; empty if absent."""
        if 0 <= index < len(self._levels):
            return dict(self._levels[index])
        return {}

    def level_nodes(self, index: int) -> Set[NodeId]:
        """Identities at distance ``index`` regardless of mark."""
        return set(self.level(index))

    def nodes(self) -> Set[NodeId]:
        """All identities appearing in the list."""
        out: Set[NodeId] = set()
        for level in self._levels:
            out.update(level)
        return out

    def unmarked_nodes(self) -> Set[NodeId]:
        """Identities appearing with :attr:`Mark.NONE` (the view candidates)."""
        out: Set[NodeId] = set()
        for level in self._levels:
            out.update(node for node, mark in level.items() if mark is Mark.NONE)
        return out

    def marked_nodes(self) -> Set[NodeId]:
        """Identities carrying a single or double mark."""
        out: Set[NodeId] = set()
        for level in self._levels:
            out.update(node for node, mark in level.items() if mark is not Mark.NONE)
        return out

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` appears (marked or not)."""
        return any(node in level for level in self._levels)

    def __contains__(self, node: NodeId) -> bool:
        return self.contains(node)

    def position_of(self, node: NodeId) -> Optional[int]:
        """Level index of ``node`` or ``None`` when absent."""
        for index, level in enumerate(self._levels):
            if node in level:
                return index
        return None

    def mark_of(self, node: NodeId) -> Optional[Mark]:
        """Mark carried by ``node`` or ``None`` when absent."""
        for level in self._levels:
            if node in level:
                return level[node]
        return None

    def has_empty_level(self) -> bool:
        """Whether any (non-trailing) level is empty — a malformed list."""
        return any(not level for level in self._levels)

    def size(self) -> int:
        """Total number of identities across all levels."""
        return sum(len(level) for level in self._levels)

    def __iter__(self) -> Iterator[Dict[NodeId, Mark]]:
        return iter(self.levels)

    # ------------------------------------------------------------- operations

    def merge(self, other: "AncestorList") -> "AncestorList":
        """The ``⊕`` operator: level-wise union with duplicate removal."""
        merged = []
        for index in range(max(len(self._levels), len(other._levels))):
            level: Dict[NodeId, Mark] = {}
            for source in (self, other):
                if index < len(source._levels):
                    for node, mark in source._levels[index].items():
                        level[node] = Mark(max(level.get(node, Mark.NONE), mark))
            merged.append(level)
        return AncestorList(merged)

    def __or__(self, other: "AncestorList") -> "AncestorList":
        return self.merge(other)

    def shifted(self) -> "AncestorList":
        """The ``r`` endomorphism: prepend an empty level (one additional hop)."""
        if not self._levels:
            return AncestorList()
        return AncestorList(({},) + self._levels)

    def ant(self, other: "AncestorList") -> "AncestorList":
        """The ``ant`` r-operator: ``self ⊕ r(other)``."""
        return self.merge(other.shifted())

    def truncated(self, max_levels: int) -> "AncestorList":
        """Keep the first ``max_levels`` levels (pseudo-code line 28)."""
        if max_levels < 0:
            raise ValueError("max_levels must be non-negative")
        return AncestorList(self._levels[:max_levels])

    def without_marked(self, keep: Iterable[NodeId] = ()) -> "AncestorList":
        """Remove marked identities except those listed in ``keep``.

        This is pseudo-code line 2 ("delete marked nodes except v"): marked
        identities are neighbour-local information and must not be propagated.
        Trailing empty levels produced by the removal are dropped; intermediate
        empty levels are preserved (such a list is then rejected by goodList).
        """
        keep = set(keep)
        levels = []
        for level in self._levels:
            levels.append({node: mark for node, mark in level.items()
                           if mark is Mark.NONE or node in keep})
        return AncestorList(levels)

    def sanitized_for(self, receiver: NodeId) -> "AncestorList":
        """Apply the reception filtering of pseudo-code line 2 for ``receiver``.

        Marked identities are neighbour-local information and must not be
        propagated, so every marked entry is removed **except** the receiver's
        own *single-marked* entry (the handshake witness).  A *double-marked*
        receiver entry is removed as well: per the paper's Proposition 3, a node
        double-marked by its neighbour must stop seeing itself in that
        neighbour's list so that the incompatibility is detected reciprocally
        (the subsequent ``goodList`` test then fails and only the sender's
        identity is kept, single-marked).
        """
        levels = []
        for level in self._levels:
            levels.append({
                node: mark for node, mark in level.items()
                if mark is Mark.NONE or (node == receiver and mark is Mark.SINGLE)
            })
        return AncestorList(levels)

    def restricted_to(self, members: Iterable[NodeId]) -> "AncestorList":
        """Keep only the (unmarked) identities belonging to ``members``.

        Used to measure the span of an *established group* inside a list: the
        compatibility test compares group spans, not candidate spans (see
        DESIGN.md, "Compatibility is evaluated between established groups").
        """
        members = set(members)
        levels = []
        for level in self._levels:
            levels.append({node: mark for node, mark in level.items()
                           if node in members and mark is Mark.NONE})
        return AncestorList(levels)

    def without_nodes(self, nodes: Iterable[NodeId]) -> "AncestorList":
        """Remove the given identities entirely (used for effective-length computations)."""
        drop = set(nodes)
        levels = []
        for level in self._levels:
            levels.append({node: mark for node, mark in level.items() if node not in drop})
        return AncestorList(levels)

    def stripped(self, receiver: Optional[NodeId] = None) -> "AncestorList":
        """Effective list used by the compatibility test.

        Removes every marked identity and (optionally) the receiver's own
        identity: marked entries are neighbour-local annotations and the
        receiver is not a *new* member brought by the sender, so neither should
        count towards the prospective group diameter (see DESIGN.md and
        Proposition 13).
        """
        drop: Set[NodeId] = set() if receiver is None else {receiver}
        levels = []
        for level in self._levels:
            levels.append({node: mark for node, mark in level.items()
                           if mark is Mark.NONE and node not in drop})
        return AncestorList(levels)

    def relabel_mark(self, node: NodeId, mark: Mark) -> "AncestorList":
        """Return a copy where ``node`` (if present) carries ``mark``."""
        levels = []
        for level in self._levels:
            new_level = dict(level)
            if node in new_level:
                new_level[node] = Mark(mark)
            levels.append(new_level)
        return AncestorList(levels)

    # ---------------------------------------------------------------- equality

    def to_wire(self) -> WireList:
        """Canonical, hashable wire representation."""
        return tuple(
            tuple(sorted(((node, int(mark)) for node, mark in level.items()),
                         key=lambda item: str(item[0])))
            for level in self._levels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AncestorList):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.to_wire())
        return self._hash

    def __repr__(self) -> str:
        def fmt(level: Dict[NodeId, Mark]) -> str:
            parts = []
            for node in sorted(level, key=str):
                mark = level[node]
                suffix = {Mark.NONE: "", Mark.SINGLE: "'", Mark.DOUBLE: "''"}[mark]
                parts.append(f"{node}{suffix}")
            return "{" + ",".join(parts) + "}"

        return "(" + ", ".join(fmt(level) for level in self._levels) + ")"
