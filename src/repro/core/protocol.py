"""Convenience helpers to instantiate a GRP network.

``build_grp_network`` wires together the simulator, a radio, a channel, an
optional mobility model and one :class:`~repro.core.node.GRPNode` per node.
The examples and the experiment scenarios are thin wrappers around it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.net.channel import ChannelModel, LossyChannel, PerfectChannel
from repro.net.network import Network
from repro.net.radio import RadioModel, UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.randomness import SeedSequenceFactory
from repro.sim.trace import TraceRecorder

from .node import GRPConfig, GRPNode

__all__ = ["GRPDeployment", "build_grp_network"]


class GRPDeployment:
    """A ready-to-run GRP deployment: simulator + network + nodes.

    Attributes
    ----------
    sim:
        The discrete-event simulator.
    network:
        The wireless network carrying the GRP messages.
    nodes:
        Mapping node id -> :class:`GRPNode`.
    trace:
        The trace recorder shared by the network and the metric collectors.
    scenario_metadata:
        Structural facts published by the scenario builder (e.g. the member
        lists of a clustered layout); empty for unstructured scenarios.
    """

    def __init__(self, sim: Simulator, network: Network, nodes: Dict[Hashable, GRPNode],
                 trace: TraceRecorder, config: GRPConfig):
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.trace = trace
        self.config = config
        self.scenario_metadata: Dict[str, object] = {}
        self._started = False

    def start(self) -> None:
        """Start every node and the mobility process (idempotent)."""
        if not self._started:
            self.network.start()
            self._started = True

    def run(self, duration: float) -> None:
        """Start if needed and advance the simulation by ``duration`` time units."""
        self.start()
        self.sim.run(until=self.sim.now + duration)

    def views(self) -> Dict[Hashable, frozenset]:
        """Current views of all active nodes (a configuration snapshot)."""
        return {node_id: node.current_view()
                for node_id, node in self.nodes.items() if node.active}

    def topology(self):
        """Current symmetric-link topology graph over active nodes."""
        return self.network.topology()

    def node(self, node_id: Hashable) -> GRPNode:
        """The GRP node with the given identifier."""
        return self.nodes[node_id]


def build_grp_network(positions: Mapping[Hashable, Tuple[float, float]],
                      config: GRPConfig,
                      radio: Optional[RadioModel] = None,
                      radio_range: float = 1.0,
                      channel: Optional[ChannelModel] = None,
                      loss_probability: float = 0.0,
                      mobility=None,
                      seed: Optional[int] = None,
                      trace_categories: Optional[set] = None,
                      use_spatial_index: bool = True) -> GRPDeployment:
    """Build a GRP deployment from node positions.

    Parameters
    ----------
    positions:
        Mapping node id -> initial (x, y) position.
    config:
        GRP protocol configuration (shared by all nodes).
    radio:
        Vicinity model; defaults to a :class:`UnitDiskRadio` with ``radio_range``.
    radio_range:
        Range of the default unit-disk radio (ignored when ``radio`` is given).
    channel:
        Channel model; defaults to a perfect channel, or a :class:`LossyChannel`
        when ``loss_probability`` > 0.
    loss_probability:
        Per-receiver message loss probability of the default channel.
    mobility:
        Optional mobility model (see :mod:`repro.mobility`).
    seed:
        Master seed; sub-streams are derived for the simulator, the channel and
        the mobility model.
    trace_categories:
        Categories stored (not only counted) by the trace recorder.
    use_spatial_index:
        Serve neighbour queries from the network's spatial index (default);
        disable to force the brute-force scans, e.g. for cross-checking runs.
    """
    seeds = SeedSequenceFactory(seed)
    sim = Simulator(seed=seeds.seed_for("simulator"))
    trace = TraceRecorder(keep_categories=trace_categories)
    if radio is None:
        radio = UnitDiskRadio(radio_range)
    if channel is None:
        if loss_probability > 0:
            channel = LossyChannel(loss_probability=loss_probability,
                                   rng=seeds.stream("channel"))
        else:
            channel = PerfectChannel()
    elif isinstance(channel, LossyChannel):
        channel.set_rng(seeds.stream("channel"))
    if mobility is not None and hasattr(mobility, "set_rng"):
        mobility.set_rng(seeds.stream("mobility"))
    network = Network(sim, radio=radio, channel=channel, mobility=mobility, trace=trace,
                      use_spatial_index=use_spatial_index)
    nodes: Dict[Hashable, GRPNode] = {}
    for node_id in sorted(positions, key=str):
        node = GRPNode(node_id, config)
        network.add_node(node, positions[node_id])
        nodes[node_id] = node
    return GRPDeployment(sim=sim, network=network, nodes=nodes, trace=trace, config=config)
