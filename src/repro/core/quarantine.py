"""Quarantine bookkeeping.

A node entering a group is not immediately added to the *view*: it is placed in
quarantine for ``Dmax`` computation rounds (paper Section 4.1 and pseudo-code
line 30).  Because a group's diameter is at most ``Dmax``, the news of the
arrival reaches every current member — and any conflict (a member that must
reject the newcomer) is detected — before the quarantine expires.  This is the
mechanism that makes the continuity property ΠT ⇒ ΠC possible: views only ever
gain members that the whole group has implicitly approved.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from .identity import NodeId

__all__ = ["QuarantineTracker"]


class QuarantineTracker:
    """Per-identity quarantine counters for one GRP node."""

    def __init__(self, owner: NodeId, dmax: int):
        if dmax < 1:
            raise ValueError("dmax must be >= 1")
        self.owner = owner
        self.dmax = int(dmax)
        self._counters: Dict[NodeId, int] = {owner: 0}

    # ----------------------------------------------------------------- state

    def counter(self, node: NodeId) -> int:
        """Remaining quarantine of ``node`` (``dmax`` when unknown)."""
        return self._counters.get(node, self.dmax)

    def counters(self) -> Dict[NodeId, int]:
        """Copy of the full quarantine table."""
        return dict(self._counters)

    def is_cleared(self, node: NodeId) -> bool:
        """Whether ``node`` has finished its quarantine."""
        return self._counters.get(node, self.dmax) == 0

    def cleared(self) -> Set[NodeId]:
        """All identities with a null quarantine."""
        return {node for node, value in self._counters.items() if value == 0}

    # --------------------------------------------------------------- updates

    def update(self, current_members: Iterable[NodeId]) -> None:
        """One computation round (pseudo-code line 30).

        New identities get a counter of ``Dmax``; already tracked identities
        with a non-null counter are decremented; identities that left the list
        are forgotten.  The owner always stays at zero.
        """
        current = set(current_members) | {self.owner}
        new_counters: Dict[NodeId, int] = {}
        for node in current:
            if node == self.owner:
                new_counters[node] = 0
            elif node in self._counters:
                new_counters[node] = max(0, self._counters[node] - 1)
            else:
                new_counters[node] = self.dmax
        self._counters = new_counters

    def reset(self, node: NodeId) -> None:
        """Restart the quarantine of ``node`` (used by fault injection)."""
        if node != self.owner:
            self._counters[node] = self.dmax

    def force(self, node: NodeId, value: int) -> None:
        """Force a counter value (fault injection / tests)."""
        if node == self.owner:
            return
        self._counters[node] = max(0, int(value))

    def clear_all(self) -> None:
        """Forget every tracked identity except the owner."""
        self._counters = {self.owner: 0}
