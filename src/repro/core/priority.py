"""Node and group priorities.

GRP uses priorities to arbitrate which node must be excluded when the diameter
constraint would be violated, and which of two neighbouring groups absorbs the
other during a merge (paper Section 4.1).

The paper suggests implementing priorities as *oldness in the group*: each node
carries a logical counter that grows while the node is alone and is frozen
while the node belongs to a group of more than one member.  Therefore nodes
that have been in a group the longest carry the *smallest* value and win every
arbitration; freshly arrived nodes lose and leave, preserving the existing
group — which is exactly the continuity behaviour the protocol is after.

:class:`PriorityTable` tracks the local node's own counter plus the latest
counters learned from neighbours' messages, and exposes the two comparisons
used by ``compute()``:

* node-versus-node (same group): compare the two oldness counters;
* group-versus-group (merge arbitration): compare the minimum counter over
  each group's known members.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from .identity import NodeId, priority_key

__all__ = ["PriorityTable"]

PriorityKey = Tuple[int, str]


class PriorityTable:
    """Priority bookkeeping for one GRP node."""

    def __init__(self, owner: NodeId, initial: int = 0):
        self.owner = owner
        self._own = int(initial)
        self._known: Dict[NodeId, int] = {}

    # ----------------------------------------------------------------- state

    @property
    def own_oldness(self) -> int:
        """The local node's oldness counter."""
        return self._own

    def set_own(self, value: int) -> None:
        """Overwrite the local counter (fault injection / initialisation)."""
        self._own = int(value)

    def oldness_of(self, node: NodeId) -> Optional[int]:
        """Last known counter of ``node`` (``None`` when unknown)."""
        if node == self.owner:
            return self._own
        return self._known.get(node)

    def key_of(self, node: NodeId, default_oldness: Optional[int] = None) -> Optional[PriorityKey]:
        """Total-order key of ``node``; ``None`` when unknown and no default is given."""
        oldness = self.oldness_of(node)
        if oldness is None:
            if default_oldness is None:
                return None
            oldness = default_oldness
        return priority_key(oldness, node)

    def own_key(self) -> PriorityKey:
        """Total-order key of the local node."""
        return priority_key(self._own, self.owner)

    # --------------------------------------------------------------- updates

    def learn(self, priorities: Mapping[NodeId, int]) -> None:
        """Merge counters carried by a received message (latest value wins)."""
        for node, oldness in priorities.items():
            if node == self.owner:
                continue
            self._known[node] = int(oldness)

    def forget_except(self, keep: Iterable[NodeId]) -> None:
        """Drop counters of identities no longer relevant (keeps memory bounded)."""
        keep = set(keep)
        self._known = {node: value for node, value in self._known.items() if node in keep}

    def tick(self, in_group: bool) -> None:
        """Pseudo-code line 32: the counter grows only while the node is alone."""
        if not in_group:
            self._own += 1

    # ----------------------------------------------------------- comparisons

    def node_has_priority_over_self(self, node: NodeId,
                                    default_oldness: Optional[int] = None) -> bool:
        """Whether ``node`` wins a node-versus-node arbitration against the owner.

        Unknown nodes lose by default (they are newcomers the local node has no
        information about), unless ``default_oldness`` provides their counter.
        """
        other = self.key_of(node, default_oldness)
        if other is None:
            return False
        return other < self.own_key()

    def group_priority(self, members: Iterable[NodeId],
                       extra: Optional[Mapping[NodeId, int]] = None) -> PriorityKey:
        """Group priority = smallest member key (paper: min of members' priorities)."""
        best: Optional[PriorityKey] = None
        for member in members:
            oldness = None
            if extra is not None and member in extra:
                oldness = extra[member]
            if oldness is None:
                oldness = self.oldness_of(member)
            if oldness is None:
                continue
            key = priority_key(oldness, member)
            if best is None or key < best:
                best = key
        if best is None:
            best = self.own_key()
        return best

    def snapshot(self, nodes: Iterable[NodeId]) -> Dict[NodeId, int]:
        """Counters for the given identities (used to build outgoing messages)."""
        out: Dict[NodeId, int] = {}
        for node in nodes:
            oldness = self.oldness_of(node)
            if oldness is not None:
                out[node] = oldness
        out[self.owner] = self._own
        return out
