"""The GRP protocol node.

Implements the three event handlers of the paper's Algorithm GRP (message
reception, computation timer ``Tc``, send timer ``Ts``) and the ``compute()``
procedure, faithfully following the pseudo-code of Section 4.3:

1. *Check the received lists*: strip marked identities (except the local one),
   reject malformed lists (``goodList``) by replacing them with a single-marked
   sender singleton, reject incompatible lists from non-members
   (``compatibleList``) by replacing them with a double-marked sender singleton.
2. *Compute the ancestor list* with the ``ant`` r-operator over all (possibly
   replaced) received lists.
3. *Too-far arbitration*: if the computed list has ``Dmax + 2`` levels, every
   identity at the last level with priority over the local node causes the
   lists that provided it to be replaced by double-marked singletons; the list
   is recomputed and truncated to ``Dmax + 1`` levels.
4. *Quarantine update* and *view extraction* (unmarked identities with a null
   quarantine).
5. *Priority update* (oldness grows only while the node is alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.obs import current as _obs_current
from repro.sim.process import Process
from repro.sim.timers import PeriodicTimer

from .ancestor_list import AncestorList
from .checks import compatible_list, good_list
from .identity import Mark, NodeId, priority_key
from .messages import GRPMessage
from .priority import PriorityTable
from .quarantine import QuarantineTracker

__all__ = ["GRPConfig", "GRPNode"]


@dataclass(frozen=True)
class GRPConfig:
    """Static configuration of a GRP node.

    Parameters
    ----------
    dmax:
        Application-chosen bound on the group diameter (``Dmax`` in the paper).
    tc:
        Period of the computation timer (τ1 of the fair-channel hypothesis).
    ts:
        Period of the send timer (τ2 ≤ τ1).
    timer_jitter:
        Relative jitter applied to both timers to desynchronize nodes.
    quarantine_enabled:
        Disable to run the quarantine ablation (experiment E7).
    optimized_compatibility:
        Disable to run the naive ``compatibleList`` ablation (experiment E10).
    use_group_priorities:
        Disable to arbitrate merges with plain node priorities (experiment E9
        ablation).
    exclusion_patience:
        Number of consecutive computations a too-far identity must persist at
        level ``Dmax + 1`` before its providers are double-marked.  Transient
        distance over-estimates produced while the ``ant`` computation is still
        converging disappear within a round or two; acting only on persistent
        observations prevents spurious group cuts (see DESIGN.md).
    neighbor_timeout_rounds:
        Number of consecutive computations a neighbour may stay silent before
        its last message is discarded.  The paper resets the message set at
        every computation (equivalent to ``1``); the default of ``2`` tolerates
        a single missed send window (e.g. a link flapping at the radio-range
        boundary) before declaring that the neighbour left, which is what real
        beaconing implementations do.
    view_reconciliation:
        Experimental repair of stuck disagreements: when two members of the
        local view persistently double-mark each other, the younger one is
        evicted.  Disabled by default — it helps dense graphs with a tight
        ``Dmax`` escape middle-node disagreement deadlocks, but can delay
        convergence elsewhere (see the "known limitations" section of
        DESIGN.md).
    initial_oldness:
        Initial value of the oldness counter.
    """

    dmax: int
    tc: float = 1.0
    ts: float = 0.5
    timer_jitter: float = 0.05
    quarantine_enabled: bool = True
    optimized_compatibility: bool = True
    use_group_priorities: bool = True
    exclusion_patience: int = 2
    neighbor_timeout_rounds: int = 2
    view_reconciliation: bool = False
    initial_oldness: int = 0

    def __post_init__(self) -> None:
        if self.dmax < 1:
            raise ValueError("dmax must be >= 1")
        if self.ts > self.tc:
            raise ValueError("the send period ts must not exceed the compute period tc "
                             "(fair-channel hypothesis: τ2 <= τ1)")
        if self.tc <= 0 or self.ts <= 0:
            raise ValueError("timer periods must be positive")
        if self.exclusion_patience < 1:
            raise ValueError("exclusion_patience must be >= 1")
        if self.neighbor_timeout_rounds < 1:
            raise ValueError("neighbor_timeout_rounds must be >= 1")


class GRPNode(Process):
    """One node running the GRP protocol."""

    def __init__(self, node_id: NodeId, config: GRPConfig):
        super().__init__(node_id)
        self.config = config
        self.alist: AncestorList = AncestorList.singleton(node_id)
        self.view: FrozenSet[NodeId] = frozenset({node_id})
        self.msg_set: Dict[NodeId, GRPMessage] = {}
        self._msg_age: Dict[NodeId, int] = {}
        self.priorities = PriorityTable(node_id, config.initial_oldness)
        self.quarantine = QuarantineTracker(node_id, config.dmax)
        self.computations = 0
        self.sends = 0
        self.receptions = 0
        self._far_streaks: Dict[NodeId, int] = {}
        self._conflict_streaks: Dict[NodeId, int] = {}
        self._tc_timer: Optional[PeriodicTimer] = None
        self._ts_timer: Optional[PeriodicTimer] = None
        # Protocol observatory hook, captured once (PR-7 contract: with obs
        # off, compute() pays exactly one attribute check).
        self._obs = _obs_current()
        self._obs_head: Optional[str] = None

    # --------------------------------------------------------------- outputs

    @property
    def dmax(self) -> int:
        """The configured diameter bound."""
        return self.config.dmax

    def current_view(self) -> FrozenSet[NodeId]:
        """The protocol output used by applications (the node's view of its group)."""
        return self.view

    def group_priority(self) -> Tuple[int, str]:
        """Priority of the node's group (minimum key over the view members)."""
        return self.priorities.group_priority(self.view)

    def in_group(self) -> bool:
        """Whether the node currently belongs to a group of more than one member."""
        return len(self.view) > 1

    # -------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        rng = self.sim.spawn_rng()
        self._tc_timer = PeriodicTimer(self.sim, self.config.tc, self._on_tc_expired,
                                       jitter=self.config.timer_jitter, rng=rng)
        self._ts_timer = PeriodicTimer(self.sim, self.config.ts, self._on_ts_expired,
                                       jitter=self.config.timer_jitter, rng=rng)
        self._tc_timer.start()
        self._ts_timer.start()

    def on_deactivate(self) -> None:
        if self._tc_timer is not None:
            self._tc_timer.stop()
        if self._ts_timer is not None:
            self._ts_timer.stop()

    def on_activate(self) -> None:
        # A node coming back keeps no stale neighbourhood knowledge: it restarts
        # from its own identity (its memory may have been lost while powered off).
        if self._obs is not None and len(self.view) > 1:
            self._obs.record_event("group.dissolved", self.sim.now,
                                   node=str(self.node_id),
                                   prev_size=len(self.view),
                                   reason="reactivated")
        self._obs_head = None
        self.msg_set.clear()
        self._msg_age.clear()
        self.alist = AncestorList.singleton(self.node_id)
        self.view = frozenset({self.node_id})
        self.quarantine.clear_all()
        if self._tc_timer is not None:
            self._tc_timer.start()
        if self._ts_timer is not None:
            self._ts_timer.start()

    # --------------------------------------------------------------- handlers

    def on_message(self, sender: NodeId, payload: object) -> None:
        """Paper lines 1-2: keep only the last message per neighbour."""
        if not isinstance(payload, GRPMessage):
            return
        self.receptions += 1
        self.msg_set[payload.sender] = payload
        self._msg_age[payload.sender] = 0

    def _on_ts_expired(self) -> None:
        """Paper lines 7-9: broadcast the current list with priorities."""
        message = GRPMessage.build(
            sender=self.node_id,
            alist=self.alist,
            priorities=self.priorities.snapshot(self.alist.nodes() | {self.node_id}),
            group_priority=self.group_priority(),
            view=self.view,
        )
        self.sends += 1
        self.broadcast(message)

    def _on_tc_expired(self) -> None:
        """Paper lines 3-6: compute, then expire stale neighbour messages.

        The paper resets the whole message set after every computation so that
        departed neighbours are detected; we age messages instead and drop them
        after ``neighbor_timeout_rounds`` silent computations (the paper's
        behaviour is recovered with a timeout of 1).
        """
        self.compute()
        timeout = self.config.neighbor_timeout_rounds
        for sender in list(self.msg_set):
            age = self._msg_age.get(sender, 0) + 1
            if age >= timeout:
                del self.msg_set[sender]
                self._msg_age.pop(sender, None)
            else:
                self._msg_age[sender] = age

    # ----------------------------------------------------------- computation

    def compute(self) -> None:
        """One execution of the paper's ``compute()`` procedure."""
        dmax = self.config.dmax
        obs = self._obs
        old_view = self.view if obs is not None else None

        # Learn the priorities carried by the received messages.
        for message in self.msg_set.values():
            self.priorities.learn(message.priority_map)

        # Step 1 — check the received lists (pseudo-code lines 1-9).
        accepted: Dict[NodeId, AncestorList] = {}
        for sender in sorted(self.msg_set, key=str):
            message = self.msg_set[sender]
            candidate = message.ancestor_list.sanitized_for(self.node_id)
            if not good_list(candidate, self.node_id, dmax):
                candidate = AncestorList.singleton(sender, Mark.SINGLE)
            elif sender not in self.view and not compatible_list(
                    self.alist, candidate, self.node_id, dmax,
                    optimized=self.config.optimized_compatibility,
                    local_members=self.view,
                    sender_members=message.view_set):
                candidate = AncestorList.singleton(sender, Mark.DOUBLE)
            accepted[sender] = candidate

        # Step 2 — ant computation (lines 10-13).
        new_list = self._combine(accepted)

        # Step 3 — too-far arbitration (lines 14-29).
        if len(new_list) == dmax + 2:
            far_nodes = new_list.level_nodes(dmax + 1)
            for far_node in sorted(far_nodes, key=str):
                self._far_streaks[far_node] = self._far_streaks.get(far_node, 0) + 1
                persistent = self._far_streaks[far_node] >= self.config.exclusion_patience
                if persistent and self._far_node_has_priority(far_node):
                    # The far identity wins the arbitration: the local node backs
                    # off by double-marking every neighbour whose list provided
                    # the far identity at the last admissible level (paper lines
                    # 16-21).  This is what guarantees that two nodes farther
                    # apart than Dmax end up on opposite sides of a double-marked
                    # edge (Proposition 5), at the cost of the local node leaving
                    # the providers' group.
                    for sender in sorted(accepted, key=str):
                        provider = accepted[sender]
                        if far_node not in provider.level_nodes(dmax):
                            continue
                        accepted[sender] = AncestorList.singleton(sender, Mark.DOUBLE)
                    self._far_streaks.pop(far_node, None)
            # Identities that are no longer observed at the forbidden level stop
            # accumulating their exclusion streak.
            for node in list(self._far_streaks):
                if node not in far_nodes:
                    del self._far_streaks[node]
            new_list = self._combine(accepted).truncated(dmax + 1)
        else:
            self._far_streaks.clear()

        self.alist = new_list

        # Step 3b — view-conflict reconciliation.  Two members of the local view
        # that have double-marked each other can never be in the same group; a
        # view containing both can never satisfy the agreement predicate ΠA.
        # The member with the lower priority (the younger one) is evicted; when
        # it is a direct neighbour the eviction is materialised as a double mark
        # so that the cut propagates, otherwise it is kept out of the view until
        # the conflict evidence disappears.  (See DESIGN.md: the paper's
        # conservative growth makes such conflicts impossible by construction;
        # with liberal growth they are rare but must be repaired.)
        vetoed = (self._persistent_conflict_losers() if self.config.view_reconciliation
                  else set())
        if vetoed:
            changed = False
            for loser in vetoed:
                if loser in accepted:
                    accepted[loser] = AncestorList.singleton(loser, Mark.DOUBLE)
                    changed = True
                self.quarantine.reset(loser)
            if changed:
                self.alist = self._combine(accepted).truncated(dmax + 1)

        # Step 4 — quarantine update and view extraction (lines 30-31).
        candidates = (self.alist.unmarked_nodes() | {self.node_id}) - vetoed
        if self.config.quarantine_enabled:
            self.quarantine.update(candidates)
            eligible = {node for node in candidates if self.quarantine.is_cleared(node)}
        else:
            self.quarantine.update(candidates)
            eligible = set(candidates)
        self.view = frozenset(eligible | {self.node_id})

        # Step 5 — priority update (line 32).
        self.priorities.tick(in_group=self.in_group())
        self.priorities.forget_except(self.alist.nodes() | self.view)
        self.computations += 1
        if obs is not None and self.view != old_view:
            self._emit_view_events(old_view)

    def _emit_view_events(self, old_view: FrozenSet[NodeId]) -> None:
        """Protocol hook: report this node's view transition to the observatory.

        Node-scoped group-lifecycle events (payloads carry ``node``, unlike
        the sampler's partition-level events), derived purely from the old
        and new views — observation only, no protocol state is touched.
        """
        obs = self._obs
        now = self.sim.now
        new_view = self.view
        node = str(self.node_id)
        if len(old_view) == 1:
            self._obs_head = head = self.group_priority()[1]
            obs.record_event("group.formed", now, node=node,
                             size=len(new_view), head=head)
            return
        if len(new_view) == 1:
            obs.record_event("group.dissolved", now, node=node,
                             prev_size=len(old_view))
            self._obs_head = None
            return
        joined = len(new_view - old_view)
        left = len(old_view - new_view)
        if left == 0:
            obs.record_event("group.merged", now, node=node,
                             size=len(new_view), joined=joined)
        elif joined == 0:
            obs.record_event("group.split", now, node=node,
                             prev_size=len(old_view), size=len(new_view),
                             left=left)
        else:
            obs.record_event("group.changed", now, node=node,
                             size=len(new_view), joined=joined, left=left)
        head = self.group_priority()[1]
        if head != self._obs_head:
            obs.record_event("group.head_changed", now, node=node,
                             head=head, previous=self._obs_head,
                             size=len(new_view))
            self._obs_head = head

    def _combine(self, accepted: Mapping[NodeId, AncestorList]) -> AncestorList:
        """Fold the accepted lists with ``ant`` starting from the local singleton."""
        result = AncestorList.singleton(self.node_id)
        for sender in sorted(accepted, key=str):
            result = result.ant(accepted[sender])
        return result

    def _view_conflict_losers(self) -> Set[NodeId]:
        """Members of the local view evicted because another member double-marked them.

        For every received message whose sender belongs to the view, every view
        member appearing double-marked in that message is in conflict with the
        sender; the conflict is resolved in favour of the member with the
        smaller priority key (the older one).
        """
        losers: Set[NodeId] = set()
        for sender, message in self.msg_set.items():
            if sender not in self.view or sender == self.node_id:
                continue
            raw = message.ancestor_list
            for member in self.view:
                if member == self.node_id or member == sender:
                    continue
                if raw.mark_of(member) is Mark.DOUBLE:
                    sender_key = self.priorities.key_of(sender)
                    member_key = self.priorities.key_of(member)
                    if sender_key is None or member_key is None:
                        continue
                    losers.add(member if member_key > sender_key else sender)
        losers.discard(self.node_id)
        return losers

    def _persistent_conflict_losers(self) -> Set[NodeId]:
        """Conflict losers that have been implicated for several consecutive computations.

        Transient double-marks routinely appear while two sides of a forming
        group negotiate; evicting a member on first sight would churn.  Only a
        conflict that keeps being advertised (the marks are still there after
        ``exclusion_patience + 1`` computations) is acted upon — a genuinely
        incompatible pair keeps advertising it forever, so the repair still
        happens in bounded time.
        """
        current = self._view_conflict_losers()
        patience = self.config.exclusion_patience + 1
        for node in list(self._conflict_streaks):
            if node not in current:
                del self._conflict_streaks[node]
        vetoed: Set[NodeId] = set()
        for node in current:
            self._conflict_streaks[node] = self._conflict_streaks.get(node, 0) + 1
            if self._conflict_streaks[node] >= patience:
                vetoed.add(node)
        return vetoed

    def _far_node_has_priority(self, far_node: NodeId) -> bool:
        """Arbitration of pseudo-code line 16.

        Node-versus-node priorities are used when the far node already belongs
        to the local group; otherwise this is a group merge and group
        priorities are compared (unless disabled by configuration).
        """
        if far_node in self.view or not self.config.use_group_priorities:
            return self.priorities.node_has_priority_over_self(far_node)

        local_group_key = self.group_priority()
        far_group_key = self._estimated_group_priority(far_node)
        if far_group_key is None:
            # Unknown challenger: the local node keeps its group (the newcomer
            # will be truncated away), preserving continuity.
            return False
        return far_group_key < local_group_key

    def _estimated_group_priority(self, far_node: NodeId) -> Optional[Tuple[int, str]]:
        """Best known priority of the group the far node belongs to.

        When a received message advertises the far node as a member of the
        sender's *view*, the sender's advertised group priority is used;
        otherwise the far node's own priority (from the shipped priority
        tables) stands in for its group's priority.
        """
        candidates: List[Tuple[int, str]] = []
        for message in self.msg_set.values():
            if far_node in message.view_set and message.group_priority is not None:
                candidates.append(tuple(message.group_priority))  # type: ignore[arg-type]
            oldness = message.priority_map.get(far_node)
            if oldness is not None:
                candidates.append(priority_key(oldness, far_node))
        local_oldness = self.priorities.oldness_of(far_node)
        if local_oldness is not None:
            candidates.append(priority_key(local_oldness, far_node))
        if not candidates:
            return None
        return min(candidates)

    # -------------------------------------------------------- fault injection

    def corrupt_state(self, ghost_nodes: Optional[Mapping[NodeId, int]] = None,
                      view: Optional[Iterable[NodeId]] = None,
                      priority: Optional[int] = None,
                      quarantine_noise: Optional[Tuple[object, int]] = None,
                      append_levels: Optional[Iterable[NodeId]] = None) -> None:
        """Apply a transient memory corruption (used by :class:`repro.net.faults.FaultInjector`).

        Parameters
        ----------
        ghost_nodes:
            Mapping ``identity -> level``: each identity is inserted (unmarked)
            at the given level of the ancestor list, extending it if needed.
        view:
            Replace the view with an arbitrary member set.
        priority:
            Overwrite the local oldness counter.
        quarantine_noise:
            Pair ``(rng, limit)``: every tracked quarantine counter is replaced
            by a random value in ``[0, limit]``.
        append_levels:
            Identities appended as extra levels at the end of the list (makes
            it longer than ``Dmax + 1``).
        """
        if ghost_nodes:
            levels = [dict(level) for level in self.alist.levels]
            for ghost, position in ghost_nodes.items():
                position = max(0, int(position))
                while len(levels) <= position:
                    levels.append({})
                levels[position][ghost] = Mark.NONE
            self.alist = AncestorList(levels)
        if append_levels:
            levels = [dict(level) for level in self.alist.levels]
            for ghost in append_levels:
                levels.append({ghost: Mark.NONE})
            self.alist = AncestorList(levels)
        if view is not None:
            self.view = frozenset(set(view) | {self.node_id})
        if priority is not None:
            self.priorities.set_own(int(priority))
        if quarantine_noise is not None:
            rng, limit = quarantine_noise
            # alist.nodes() is a set; a fixed iteration order keeps the rng
            # draws — and hence the whole corrupted run — independent of
            # PYTHONHASHSEED, so campaign replicates reproduce across
            # interpreter invocations.
            for node in sorted(self.alist.nodes(), key=str):
                if node != self.node_id:
                    self.quarantine.force(node, int(rng.integers(0, max(1, limit) + 1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GRPNode(id={self.node_id!r}, view={sorted(map(str, self.view))}, "
                f"list_len={len(self.alist)})")
