"""The GRP protocol: the paper's primary contribution."""

from .ancestor_list import AncestorList, WireList
from .checks import compatible_list, good_list, group_span, merged_pair_bound
from .identity import Mark, NodeId, priority_key
from .messages import GRPMessage
from .node import GRPConfig, GRPNode
from .predicates import (ConfigurationReport, agreement, agreement_violations, continuity,
                         continuity_violations, evaluate_configuration, groups_partition,
                         legitimate, maximality, maximality_violations, omega, safety,
                         safety_violations, topological)
from .priority import PriorityTable
from .protocol import GRPDeployment, build_grp_network
from .quarantine import QuarantineTracker

__all__ = [
    "AncestorList", "WireList",
    "compatible_list", "good_list", "group_span", "merged_pair_bound",
    "Mark", "NodeId", "priority_key",
    "GRPMessage",
    "GRPConfig", "GRPNode",
    "ConfigurationReport", "agreement", "agreement_violations", "continuity",
    "continuity_violations", "evaluate_configuration", "groups_partition", "legitimate",
    "maximality", "maximality_violations", "omega", "safety", "safety_violations",
    "topological",
    "PriorityTable",
    "GRPDeployment", "build_grp_network",
    "QuarantineTracker",
]
