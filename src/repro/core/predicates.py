"""Formal predicates of the Dynamic Group Service specification.

These functions evaluate, on configuration snapshots, the predicates defined
in Section 3 of the paper:

* ``Ω`` (group of a node) — :func:`omega`;
* ΠA (agreement) — :func:`agreement`;
* ΠS (safety) — :func:`safety`;
* ΠM (maximality) — :func:`maximality`;
* ΠT (topological, on consecutive configurations) — :func:`topological`;
* ΠC (continuity, on consecutive configurations) — :func:`continuity`.

A *configuration snapshot* consists of the views (mapping node → frozenset of
members) and the symmetric-link topology graph at that instant.  The metric
collectors (:mod:`repro.metrics`) call these functions at sampling times; the
tests call them directly on hand-built configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Set, Tuple

import networkx as nx

from repro.net.topology import merged_diameter_ok, subgraph_diameter

__all__ = [
    "Views",
    "Groups",
    "omega",
    "groups_partition",
    "agreement",
    "agreement_violations",
    "safety",
    "safety_violations",
    "maximality",
    "maximality_violations",
    "topological",
    "continuity",
    "continuity_violations",
    "legitimate",
    "ConfigurationReport",
    "evaluate_configuration",
]

NodeId = Hashable
Views = Mapping[NodeId, FrozenSet[NodeId]]
Groups = Dict[NodeId, FrozenSet[NodeId]]


def omega(views: Views) -> Groups:
    """The group Ω_v of every node.

    Ω_v equals view_v when v belongs to its own view and every member shares
    exactly the same view; otherwise Ω_v = {v} (paper Section 3).
    """
    groups: Groups = {}
    for node, view in views.items():
        if node in view and all(views.get(member) == view for member in view):
            groups[node] = frozenset(view)
        else:
            groups[node] = frozenset({node})
    return groups


def groups_partition(views: Views) -> Set[FrozenSet[NodeId]]:
    """The set of distinct groups {Ω_v : v}."""
    return set(omega(views).values())


def agreement_violations(views: Views) -> List[Tuple[NodeId, str]]:
    """Nodes violating ΠA, with a human-readable reason."""
    violations: List[Tuple[NodeId, str]] = []
    for node, view in views.items():
        if node not in view:
            violations.append((node, "node absent from its own view"))
            continue
        for member in view:
            other = views.get(member)
            if other is None:
                violations.append((node, f"view member {member!r} is not a node"))
                break
            if other != view:
                violations.append((node, f"view member {member!r} disagrees"))
                break
    return violations


def agreement(views: Views) -> bool:
    """ΠA: the views define a partition on which all members agree."""
    return not agreement_violations(views)


def safety_violations(views: Views, graph: nx.Graph, dmax: int) -> List[Tuple[FrozenSet, float]]:
    """Groups violating ΠS with their (possibly infinite) diameter."""
    violations: List[Tuple[FrozenSet, float]] = []
    for group in set(omega(views).values()):
        diameter = subgraph_diameter(graph, group)
        if diameter > dmax:
            violations.append((group, diameter))
    return violations


def safety(views: Views, graph: nx.Graph, dmax: int) -> bool:
    """ΠS: every group is connected with diameter ≤ Dmax inside the group subgraph."""
    return not safety_violations(views, graph, dmax)


def maximality_violations(views: Views, graph: nx.Graph,
                          dmax: int) -> List[Tuple[FrozenSet, FrozenSet]]:
    """Pairs of distinct groups that could merge without breaking ΠS.

    A merged pair keeps ΠS only if the subgraph over the union is connected,
    which requires the groups to share a node (possible while agreement is
    broken) or to be joined by a direct edge.  Only those candidate pairs
    get a diameter check — on a mostly-singleton configuration this reduces
    the O(g^2) pair scan to roughly one check per topology edge.
    """
    groups = sorted(set(omega(views).values()), key=lambda g: sorted(map(str, g)))
    member_of: Dict[NodeId, List[int]] = {}
    for index, group in enumerate(groups):
        for node in group:
            member_of.setdefault(node, []).append(index)
    candidates: Set[Tuple[int, int]] = set()
    for indices in member_of.values():
        for i, index_a in enumerate(indices):
            for index_b in indices[i + 1:]:
                candidates.add((index_a, index_b) if index_a < index_b
                               else (index_b, index_a))
    for node_u, node_v in graph.edges():
        for index_a in member_of.get(node_u, ()):
            for index_b in member_of.get(node_v, ()):
                if index_a != index_b:
                    candidates.add((index_a, index_b) if index_a < index_b
                                   else (index_b, index_a))
    violations: List[Tuple[FrozenSet, FrozenSet]] = []
    for index_a, index_b in sorted(candidates):
        if merged_diameter_ok(graph, groups[index_a], groups[index_b], dmax):
            violations.append((groups[index_a], groups[index_b]))
    return violations


def maximality(views: Views, graph: nx.Graph, dmax: int) -> bool:
    """ΠM: no two distinct groups could be merged while keeping the diameter ≤ Dmax."""
    return not maximality_violations(views, graph, dmax)


def legitimate(views: Views, graph: nx.Graph, dmax: int) -> bool:
    """The stabilization target ΠA ∧ ΠS ∧ ΠM."""
    return agreement(views) and safety(views, graph, dmax) and maximality(views, graph, dmax)


def topological(previous_groups: Groups, new_graph: nx.Graph, dmax: int) -> bool:
    """ΠT on a pair of consecutive configurations.

    For every node, the members of its *previous* group must still be within
    distance ``Dmax`` of each other in the *new* topology, counting only paths
    inside the previous group.
    """
    for group in set(previous_groups.values()):
        if len(group) <= 1:
            continue
        if subgraph_diameter(new_graph, group) > dmax:
            return False
    return True


def continuity_violations(previous_groups: Groups,
                          new_groups: Groups) -> List[Tuple[NodeId, FrozenSet, FrozenSet]]:
    """Nodes whose group lost at least one member between two configurations."""
    violations: List[Tuple[NodeId, FrozenSet, FrozenSet]] = []
    for node, previous in previous_groups.items():
        new = new_groups.get(node, frozenset({node}))
        if not previous <= new:
            violations.append((node, previous, new))
    return violations


def continuity(previous_groups: Groups, new_groups: Groups) -> bool:
    """ΠC: no node disappears from any group between two configurations."""
    return not continuity_violations(previous_groups, new_groups)


@dataclass(frozen=True)
class ConfigurationReport:
    """Predicate values of one sampled configuration."""

    time: float
    agreement: bool
    safety: bool
    maximality: bool
    group_count: int
    largest_group: int
    isolated_nodes: int

    @property
    def legitimate(self) -> bool:
        """ΠA ∧ ΠS ∧ ΠM."""
        return self.agreement and self.safety and self.maximality


def evaluate_configuration(time: float, views: Views, graph: nx.Graph,
                           dmax: int) -> ConfigurationReport:
    """Evaluate every static predicate on one configuration snapshot."""
    groups = set(omega(views).values())
    sizes = [len(group) for group in groups]
    return ConfigurationReport(
        time=time,
        agreement=agreement(views),
        safety=safety(views, graph, dmax),
        maximality=maximality(views, graph, dmax),
        group_count=len(groups),
        largest_group=max(sizes) if sizes else 0,
        isolated_nodes=sum(1 for size in sizes if size == 1),
    )
