"""Node identities and marks.

The GRP protocol annotates neighbour identities with *marks* (rendered with
overlines in the paper):

* :attr:`Mark.NONE`   — a regular (propagatable) group member or candidate;
* :attr:`Mark.SINGLE` — "I hear you, but I do not know yet whether you hear
  me": added when a received list does not contain the receiver (the first leg
  of the symmetric-link triple handshake, paper Section 4.1);
* :attr:`Mark.DOUBLE` — "incompatible neighbour": the neighbour's list was
  rejected by ``compatibleList`` or by the too-far-node arbitration, so the two
  nodes cannot belong to the same group.

Marked identities are only meaningful between direct neighbours: they are
never inserted into views and are stripped from received lists (except the
receiver's own identity, which carries the handshake information).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Hashable, Tuple

__all__ = ["NodeId", "Mark", "priority_key"]

#: Type alias for node identifiers.  Any hashable with a stable ``str()`` works;
#: the experiment harness uses small integers.
NodeId = Hashable


class Mark(IntEnum):
    """Mark level attached to an identity inside an ancestor list."""

    NONE = 0
    SINGLE = 1
    DOUBLE = 2

    @property
    def propagatable(self) -> bool:
        """Only unmarked identities may be propagated beyond one hop."""
        return self is Mark.NONE


def priority_key(oldness: int, node_id: NodeId) -> Tuple[int, str]:
    """Total-order key for priorities.

    The paper requires priorities to be totally ordered with "smaller wins".
    Oldness (a logical clock frozen while the node is in a group) is the main
    criterion; the node identifier breaks ties deterministically.
    """
    return (int(oldness), str(node_id))
