"""List admission tests: ``goodList`` and ``compatibleList``.

``goodList`` (paper, Function goodList) rejects malformed lists: lists that do
not witness the symmetric-link handshake (the receiver must appear — possibly
marked — among the sender's distance-1 identities), lists longer than
``Dmax + 1`` and lists containing an empty level.

``compatibleList`` (paper, Function compatibleList and Proposition 13) decides
whether accepting a new neighbour's list could force the group diameter past
``Dmax``.  Its role in the protocol is to *protect established groups*: a list
is rejected — and its sender double-marked — exactly when merging the sender's
group with the local group cannot be shown to respect the diameter bound.

Interpretation notes (see DESIGN.md for the full discussion)
------------------------------------------------------------
* The pseudo-code printed in the arXiv version compares the *entire* candidate
  lists of both nodes.  Taken literally this makes every boundary pair reject
  each other during the initial transient (both candidate lists already span
  the whole connected component), producing a livelock that the paper's proofs
  implicitly exclude by reasoning from already-safe configurations.  We
  therefore evaluate compatibility between the two **established groups** (the
  views, whose span is what continuity must protect); growth beyond the views
  is regulated by the quarantine and by the priority-based too-far arbitration.
* Proposition 13 bounds merged distances by path counting through the local
  node and through shortcut members adjacent to the sender.  We generalise the
  same idea into *pairwise position bounds*: for a local exclusive member ``x``
  and a remote exclusive member ``y``, every route whose length can be bounded
  from the two lists gives an upper bound on ``d(x, y)`` —

  - through the local node and the (symmetric, handshaked) local-sender edge:
    ``pos_local(x) + 1 + pos_received(y)``;
  - through the local node only, when ``y`` already appears in the local list:
    ``pos_local(x) + pos_local(y)``;
  - through the sender only, when ``x`` already appears in the received list:
    ``pos_received(x) + pos_received(y)``.

  The merge is accepted when every cross pair admits a bound ≤ ``Dmax``.
  Positions are lengths of real propagation paths, hence valid upper bounds on
  the corresponding graph distances; acceptance therefore never violates ΠS
  (validated empirically by experiment E10).  The *naive* variant used as the
  E10 ablation only applies the first route with whole-list spans, which is the
  ``s(listv) + s(list) <= Dmax + 1`` test of the paper's pseudo-code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from .ancestor_list import AncestorList
from .identity import Mark, NodeId

__all__ = ["good_list", "compatible_list", "merged_pair_bound", "group_span"]

_INF = float("inf")


def good_list(received: AncestorList, receiver: NodeId, dmax: int) -> bool:
    """Paper's ``goodList``: handshake witnessed, not too long, no empty level.

    Following the prose of Section 4.1 ("when v receives a list from u that
    contains either v or v̄, then it adds u in its list"), the handshake is
    witnessed when the receiver appears *anywhere* in the list — either marked
    among the sender's direct neighbours (first leg of the handshake) or
    unmarked at any level (the sender already counts the receiver among its
    group candidates, e.g. through an alternate path while the direct link is
    re-forming).  Restricting the test to level 1 only — as the printed
    pseudo-code does — makes every radio-range boundary flap demote an
    established member and breaks continuity in situations where ΠT holds.
    """
    if len(received) > dmax + 1:
        return False
    if received.has_empty_level():
        return False
    if receiver in received.level(1):
        return True
    mark = received.mark_of(receiver)
    return mark is Mark.NONE


def group_span(alist: AncestorList, members: Optional[Iterable[NodeId]] = None,
               exclude: Iterable[NodeId] = ()) -> int:
    """Largest occupied level of ``alist`` restricted to ``members`` (0 when empty).

    This is the quantity ``p`` (resp. ``q``) of Proposition 13: the distance of
    the farthest established-group member known through the list.
    """
    restricted = alist.stripped()
    if members is not None:
        restricted = restricted.restricted_to(members)
    exclude = set(exclude)
    if exclude:
        restricted = restricted.without_nodes(exclude)
    return max(len(restricted) - 1, 0)


def _positions(alist: AncestorList) -> Dict[NodeId, int]:
    """Mapping identity -> level, marks included (a marked direct neighbour still
    witnesses a one-hop path)."""
    out: Dict[NodeId, int] = {}
    for index, level in enumerate(alist.levels):
        for node in level:
            out.setdefault(node, index)
    return out


def merged_pair_bound(pos_local: Dict[NodeId, int], pos_received: Dict[NodeId, int],
                      x: NodeId, y: NodeId) -> float:
    """Best available upper bound on d(x, y) after the merge (see module docstring)."""
    best = _INF
    px_local = pos_local.get(x)
    py_local = pos_local.get(y)
    px_recv = pos_received.get(x)
    py_recv = pos_received.get(y)
    if px_local is not None and py_recv is not None:
        best = min(best, px_local + 1 + py_recv)
    if px_local is not None and py_local is not None:
        best = min(best, px_local + py_local)
    if px_recv is not None and py_recv is not None:
        best = min(best, px_recv + py_recv)
    if py_local is not None and px_recv is not None:
        best = min(best, py_local + 1 + px_recv)
    return best


def compatible_list(local: AncestorList, received: AncestorList, receiver: NodeId,
                    dmax: int, optimized: bool = True,
                    local_members: Optional[Iterable[NodeId]] = None,
                    sender_members: Optional[Iterable[NodeId]] = None) -> bool:
    """Paper's ``compatibleList``: can the sender's group merge with ours?

    Parameters
    ----------
    local:
        The receiver's current ancestor list.
    received:
        The (goodList-approved) list sent by the candidate neighbour.
    receiver:
        Identity of the local node.
    dmax:
        Group diameter bound.
    optimized:
        When ``False``, only the naive whole-span length test is applied — the
        ablation of experiment E10.
    local_members:
        Members of the local established group (the view).  ``None`` means the
        whole unmarked content of ``local`` (the paper's literal reading).
    sender_members:
        Members of the sender's established group (shipped in the message).
        ``None`` means the whole unmarked content of ``received``.
    """
    local_view: Set[NodeId] = (set(local_members) if local_members is not None
                               else set(local.unmarked_nodes()) | {receiver})
    sender_view: Set[NodeId] = (set(sender_members) if sender_members is not None
                                else set(received.stripped(receiver=receiver).nodes()))
    local_exclusive = local_view - sender_view
    sender_exclusive = sender_view - local_view - {receiver}
    if not sender_exclusive or not local_exclusive:
        # Nothing new on one of the sides: the merged group is contained in a
        # group that already satisfies the diameter bound.
        return True

    if not optimized:
        # Naive test of the pseudo-code: sum of the whole-group spans.
        p = group_span(local, local_exclusive)
        q = group_span(received, sender_exclusive, exclude={receiver})
        return p + 1 + q <= dmax

    pos_local = _positions(local)
    pos_received = _positions(received)
    # The local node is at distance 0 from itself whatever (possibly corrupted)
    # occurrence of its identity the list contains.
    pos_local[receiver] = 0
    for x in local_exclusive:
        for y in sender_exclusive:
            if x == y:
                continue
            bound = merged_pair_bound(pos_local, pos_received, x, y)
            if bound > dmax:
                return False
    return True
