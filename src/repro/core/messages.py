"""Wire format of GRP messages.

Each node periodically broadcasts its ancestor list *with priorities* (paper,
pseudo-code line 8).  A message therefore carries:

* the sender identity,
* the sender's ancestor list (wire representation, marks included),
* the sender's priority table restricted to the identities of the list,
* the sender's current *group priority* (minimum key over its view), used by
  the receiver for group-versus-group arbitration during merges,
* the sender's current view (its established group), used by the receiver's
  ``compatibleList`` to evaluate the prospective merged diameter of the two
  established groups and to attribute group priorities to far candidates.

Messages are plain frozen dataclasses: they can be copied, compared, hashed
and — importantly for fault-injection experiments — corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from .ancestor_list import AncestorList, WireList
from .identity import NodeId

__all__ = ["GRPMessage"]


@dataclass(frozen=True)
class GRPMessage:
    """One GRP broadcast."""

    sender: NodeId
    wire_list: WireList
    priorities: Tuple[Tuple[NodeId, int], ...] = field(default_factory=tuple)
    group_priority: Optional[Tuple[int, str]] = None
    view: Tuple[NodeId, ...] = field(default_factory=tuple)

    @classmethod
    def build(cls, sender: NodeId, alist: AncestorList,
              priorities: Mapping[NodeId, int],
              group_priority: Optional[Tuple[int, str]] = None,
              view: Optional[FrozenSet[NodeId]] = None) -> "GRPMessage":
        """Build a message from live protocol state."""
        prio = tuple(sorted(((node, int(value)) for node, value in priorities.items()),
                            key=lambda item: str(item[0])))
        view_tuple = tuple(sorted(view, key=str)) if view is not None else (sender,)
        return cls(sender=sender, wire_list=alist.to_wire(), priorities=prio,
                   group_priority=group_priority, view=view_tuple)

    @property
    def ancestor_list(self) -> AncestorList:
        """The carried ancestor list, decoded."""
        return AncestorList.from_wire(self.wire_list)

    @property
    def priority_map(self) -> Dict[NodeId, int]:
        """Priorities as a mapping node -> oldness."""
        return {node: value for node, value in self.priorities}

    @property
    def view_set(self) -> FrozenSet[NodeId]:
        """The sender's view as a frozenset."""
        return frozenset(self.view) if self.view else frozenset({self.sender})

    def size_estimate(self) -> int:
        """Rough payload size in "identity slots" (used by the overhead metrics).

        Counts one slot per identity occurrence in the list, one per priority
        entry, one per view member and one for the group priority — a portable
        proxy for bytes on the air that does not depend on identity encoding.
        """
        list_slots = sum(len(level) for level in self.wire_list)
        return (list_slots + len(self.priorities) + len(self.view)
                + (1 if self.group_priority else 0))
