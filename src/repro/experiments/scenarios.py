"""Deprecated scenario aliases (use :mod:`repro.scenarios` instead).

The scenario builders moved to the declarative registry in
``repro.scenarios``; this module keeps the historical call signatures as thin
wrappers so existing imports, the seed tests and older notebooks keep working.
Each wrapper builds the equivalent :class:`~repro.scenarios.ScenarioSpec` and
delegates to :func:`repro.scenarios.build`, so a wrapper call and a registry
build of the same parameters are bit-identical.

New code should register scenarios with
:func:`repro.scenarios.register_scenario` (or the ``@scenario`` decorator) and
build them through specs — that is what makes them sweepable from the campaign
CLI (``--scenario``/``--set``/``--sweep``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.node import GRPConfig
from repro.core.protocol import GRPDeployment
from repro.scenarios import ScenarioSpec, build

__all__ = [
    "static_random",
    "line_topology",
    "two_cluster_topology",
    "ring_of_clusters",
    "manet_waypoint",
    "vanet_highway",
    "rpgm_scenario",
    "large_manet_waypoint",
    "dense_highway_convoy",
]


def _build(name: str, seed: int, config: Optional[GRPConfig], **params) -> GRPDeployment:
    return build(ScenarioSpec.create(name, **params), seed=seed, config=config)


def static_random(n: int, area: float, radio_range: float, dmax: int, seed: int = 0,
                  loss_probability: float = 0.0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """``n`` nodes placed uniformly at random in an ``area x area`` square, no mobility."""
    return _build("static_random", seed, config, n=n, area=area, radio_range=radio_range,
                  dmax=dmax, loss_probability=loss_probability)


def line_topology(n: int, spacing: float, radio_range: float, dmax: int,
                  seed: int = 0, config: Optional[GRPConfig] = None) -> GRPDeployment:
    """``n`` nodes on a line with constant spacing (chain topology)."""
    return _build("line_topology", seed, config, n=n, spacing=spacing,
                  radio_range=radio_range, dmax=dmax)


def two_cluster_topology(cluster_size: int, gap: float, spacing: float, radio_range: float,
                         dmax: int, seed: int = 0,
                         config: Optional[GRPConfig] = None) -> Tuple[GRPDeployment, List, List]:
    """Two tight clusters separated by ``gap``; returns (deployment, left, right)."""
    deployment = _build("two_cluster_topology", seed, config, cluster_size=cluster_size,
                        gap=gap, spacing=spacing, radio_range=radio_range, dmax=dmax)
    return deployment, deployment.scenario_metadata["left"], deployment.scenario_metadata["right"]


def ring_of_clusters(cluster_count: int, cluster_size: int, ring_radius: float,
                     cluster_radius: float, radio_range: float, dmax: int, seed: int = 0,
                     config: Optional[GRPConfig] = None) -> Tuple[GRPDeployment, List[List]]:
    """Clusters arranged on a circle; returns (deployment, clusters)."""
    deployment = _build("ring_of_clusters", seed, config, cluster_count=cluster_count,
                        cluster_size=cluster_size, ring_radius=ring_radius,
                        cluster_radius=cluster_radius, radio_range=radio_range, dmax=dmax)
    return deployment, deployment.scenario_metadata["clusters"]


def manet_waypoint(n: int, area: float, radio_range: float, dmax: int, speed: float,
                   seed: int = 0, pause_time: float = 0.0, loss_probability: float = 0.0,
                   config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Random-waypoint MANET: ``n`` nodes moving at ``speed`` in an ``area`` square."""
    return _build("manet_waypoint", seed, config, n=n, area=area, radio_range=radio_range,
                  dmax=dmax, speed=speed, pause_time=pause_time,
                  loss_probability=loss_probability)


def vanet_highway(n: int, road_length: float, radio_range: float, dmax: int,
                  lane_count: int = 2, base_speed: float = 25.0, spacing: float = 40.0,
                  seed: int = 0, loss_probability: float = 0.0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """VANET highway: vehicles on a ring road with per-lane speeds."""
    return _build("vanet_highway", seed, config, n=n, road_length=road_length,
                  radio_range=radio_range, dmax=dmax, lane_count=lane_count,
                  base_speed=base_speed, spacing=spacing,
                  loss_probability=loss_probability)


def large_manet_waypoint(n: int = 1000, area: float = 2000.0, radio_range: float = 120.0,
                         dmax: int = 3, speed: float = 10.0, seed: int = 0,
                         pause_time: float = 0.0, loss_probability: float = 0.0,
                         use_spatial_index: bool = True,
                         config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Thousand-node random-waypoint field (large-network asymptotics workload)."""
    return _build("large_manet_waypoint", seed, config, n=n, area=area,
                  radio_range=radio_range, dmax=dmax, speed=speed, pause_time=pause_time,
                  loss_probability=loss_probability, use_spatial_index=use_spatial_index)


def dense_highway_convoy(n: int = 600, road_length: float = 3000.0, radio_range: float = 200.0,
                         dmax: int = 4, lane_count: int = 6, base_speed: float = 25.0,
                         spacing: float = 15.0, seed: int = 0,
                         loss_probability: float = 0.0,
                         use_spatial_index: bool = True,
                         config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Dense VANET convoy: bumper-to-bumper traffic across many lanes."""
    return _build("dense_highway_convoy", seed, config, n=n, road_length=road_length,
                  radio_range=radio_range, dmax=dmax, lane_count=lane_count,
                  base_speed=base_speed, spacing=spacing, loss_probability=loss_probability,
                  use_spatial_index=use_spatial_index)


def rpgm_scenario(group_sizes: Sequence[int], area: float, radio_range: float, dmax: int,
                  group_speed: float = 4.0, member_radius: float = 30.0, seed: int = 0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Reference-point group mobility: convoys of nodes moving together."""
    return _build("rpgm_scenario", seed, config, group_sizes=tuple(group_sizes), area=area,
                  radio_range=radio_range, dmax=dmax, group_speed=group_speed,
                  member_radius=member_radius)
