"""Scenario builders used by the experiment suite, the examples and the tests.

Every builder returns a ready-to-start :class:`~repro.core.protocol.GRPDeployment`
(plus scenario-specific metadata when useful).  All scenarios are fully seeded.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.node import GRPConfig
from repro.core.protocol import GRPDeployment, build_grp_network
from repro.mobility.highway import HighwayMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.net.geometry import line_positions, random_positions
from repro.sim.randomness import SeedSequenceFactory

__all__ = [
    "static_random",
    "line_topology",
    "two_cluster_topology",
    "ring_of_clusters",
    "manet_waypoint",
    "vanet_highway",
    "rpgm_scenario",
    "large_manet_waypoint",
    "dense_highway_convoy",
]


def static_random(n: int, area: float, radio_range: float, dmax: int, seed: int = 0,
                  loss_probability: float = 0.0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """``n`` nodes placed uniformly at random in an ``area x area`` square, no mobility."""
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    positions = random_positions(range(n), area=(area, area), rng=seeds.stream("placement"))
    return build_grp_network(positions, cfg, radio_range=radio_range,
                             loss_probability=loss_probability, seed=seed)


def line_topology(n: int, spacing: float, radio_range: float, dmax: int,
                  seed: int = 0, config: Optional[GRPConfig] = None) -> GRPDeployment:
    """``n`` nodes on a line with constant spacing (chain topology)."""
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    positions = line_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)


def two_cluster_topology(cluster_size: int, gap: float, spacing: float, radio_range: float,
                         dmax: int, seed: int = 0,
                         config: Optional[GRPConfig] = None) -> Tuple[GRPDeployment, List, List]:
    """Two tight clusters separated by ``gap`` along the x axis.

    Returns the deployment plus the two member lists.  Used by the merging
    experiment E9: the clusters are first out of range, then brought together
    by teleporting the right cluster (``deployment.network.set_positions``).
    """
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    positions: Dict[Hashable, Tuple[float, float]] = {}
    left = list(range(cluster_size))
    right = list(range(cluster_size, 2 * cluster_size))
    for index, node in enumerate(left):
        positions[node] = (index * spacing, 0.0)
    offset = (cluster_size - 1) * spacing + gap
    for index, node in enumerate(right):
        positions[node] = (offset + index * spacing, 0.0)
    deployment = build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)
    return deployment, left, right


def ring_of_clusters(cluster_count: int, cluster_size: int, ring_radius: float,
                     cluster_radius: float, radio_range: float, dmax: int, seed: int = 0,
                     config: Optional[GRPConfig] = None) -> Tuple[GRPDeployment, List[List]]:
    """Clusters arranged on a circle — the "loop of groups willing to merge" scenario.

    Neighbouring clusters on the ring are within radio range of each other, so
    every cluster could merge with either neighbour; the group-priority rule is
    what prevents a livelock of concurrent merge attempts (experiment E9b).
    """
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    rng = seeds.stream("placement")
    positions: Dict[Hashable, Tuple[float, float]] = {}
    clusters: List[List] = []
    node_id = 0
    for index in range(cluster_count):
        angle = 2 * math.pi * index / cluster_count
        cx = ring_radius * math.cos(angle) + ring_radius
        cy = ring_radius * math.sin(angle) + ring_radius
        members = []
        for _ in range(cluster_size):
            dx, dy = rng.uniform(-cluster_radius, cluster_radius, size=2)
            positions[node_id] = (cx + float(dx), cy + float(dy))
            members.append(node_id)
            node_id += 1
        clusters.append(members)
    deployment = build_grp_network(positions, cfg, radio_range=radio_range, seed=seed)
    return deployment, clusters


def manet_waypoint(n: int, area: float, radio_range: float, dmax: int, speed: float,
                   seed: int = 0, pause_time: float = 0.0, loss_probability: float = 0.0,
                   config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Random-waypoint MANET: ``n`` nodes moving at ``speed`` in an ``area`` square."""
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypointMobility((area, area), min_speed=speed * 0.5, max_speed=speed,
                                      pause_time=pause_time, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed)


def vanet_highway(n: int, road_length: float, radio_range: float, dmax: int,
                  lane_count: int = 2, base_speed: float = 25.0, spacing: float = 40.0,
                  seed: int = 0, loss_probability: float = 0.0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """VANET highway: vehicles on a ring road with per-lane speeds."""
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = HighwayMobility(road_length=road_length, lane_count=lane_count,
                               base_speed=base_speed, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed)


def large_manet_waypoint(n: int = 1000, area: float = 2000.0, radio_range: float = 120.0,
                         dmax: int = 3, speed: float = 10.0, seed: int = 0,
                         pause_time: float = 0.0, loss_probability: float = 0.0,
                         use_spatial_index: bool = True,
                         config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Thousand-node random-waypoint field (large-network asymptotics workload).

    Defaults give an expected degree of about ``n * pi * r^2 / area^2`` ≈ 11,
    i.e. a connected but not saturated MANET.  Only tractable through the
    spatial neighbour index; pass ``use_spatial_index=False`` to measure the
    brute-force baseline.
    """
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypointMobility((area, area), min_speed=speed * 0.5, max_speed=speed,
                                      pause_time=pause_time, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n))
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed,
                             use_spatial_index=use_spatial_index)


def dense_highway_convoy(n: int = 600, road_length: float = 3000.0, radio_range: float = 200.0,
                         dmax: int = 4, lane_count: int = 6, base_speed: float = 25.0,
                         spacing: float = 15.0, seed: int = 0,
                         loss_probability: float = 0.0,
                         use_spatial_index: bool = True,
                         config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Dense VANET convoy: bumper-to-bumper traffic across many lanes.

    The tight ``spacing`` packs dozens of vehicles inside every radio range,
    the worst case for the brute-force neighbour scan and the stress case for
    the spatial index (many occupants per grid cell).
    """
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    mobility = HighwayMobility(road_length=road_length, lane_count=lane_count,
                               base_speed=base_speed, rng=seeds.stream("mobility"))
    positions = mobility.initial_positions(range(n), spacing=spacing)
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             loss_probability=loss_probability, seed=seed,
                             use_spatial_index=use_spatial_index)


def rpgm_scenario(group_sizes: Sequence[int], area: float, radio_range: float, dmax: int,
                  group_speed: float = 4.0, member_radius: float = 30.0, seed: int = 0,
                  config: Optional[GRPConfig] = None) -> GRPDeployment:
    """Reference-point group mobility: convoys of nodes moving together."""
    cfg = config if config is not None else GRPConfig(dmax=dmax)
    seeds = SeedSequenceFactory(seed)
    groups: List[List[int]] = []
    node_id = 0
    for size in group_sizes:
        groups.append(list(range(node_id, node_id + size)))
        node_id += size
    mobility = ReferencePointGroupMobility((area, area), groups, group_speed=group_speed,
                                           member_radius=member_radius,
                                           rng=seeds.stream("mobility"))
    positions = mobility.initial_positions([n for group in groups for n in group])
    return build_grp_network(positions, cfg, radio_range=radio_range, mobility=mobility,
                             seed=seed)
