"""Experiment running helpers.

:func:`run_with_sampler` attaches a :class:`~repro.metrics.collectors.ConfigurationSampler`
to a GRP deployment (or to a baseline clustering driver) and advances the
simulation.  :class:`ExperimentResult` is the uniform return type of every
experiment in :mod:`repro.experiments.suite`: a list of flat dict rows plus
free-form notes, printable with :func:`repro.metrics.report.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import SnapshotClusteringAlgorithm
from repro.baselines.periodic import PeriodicClusteringDriver
from repro.core.protocol import GRPDeployment
from repro.metrics.collectors import ConfigurationSampler
from repro.metrics.report import format_table

__all__ = ["ExperimentResult", "run_with_sampler", "attach_baseline", "sweep"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: tabular rows plus context."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form note (expected shape, caveat, seed...)."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the result as the text block stored in EXPERIMENTS.md."""
        parts = [f"== {self.experiment} — {self.description} =="]
        if self.rows:
            parts.append(format_table(self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def run_with_sampler(deployment: GRPDeployment, duration: float,
                     sample_interval: float = 1.0,
                     warmup: float = 0.0,
                     views_provider: Optional[Callable[[], Dict]] = None,
                     keep_graphs: bool = True) -> ConfigurationSampler:
    """Run ``deployment`` for ``duration`` seconds under a configuration sampler.

    ``warmup`` seconds are simulated *before* the sampler starts (useful to
    measure steady-state behaviour only).  The sampler measures the GRP views
    by default; pass ``views_provider`` to measure something else (e.g. a
    baseline driver) running on the same network.
    """
    deployment.start()
    if warmup > 0:
        deployment.sim.run(until=deployment.sim.now + warmup)
    provider = views_provider if views_provider is not None else deployment.views
    sampler = ConfigurationSampler(
        sim=deployment.sim,
        views_provider=provider,
        graph_provider=deployment.topology,
        dmax=deployment.config.dmax,
        interval=sample_interval,
        keep_graphs=keep_graphs,
    )
    sampler.start()
    deployment.sim.run(until=deployment.sim.now + duration)
    sampler.sample_now()
    sampler.stop()
    return sampler


def attach_baseline(deployment: GRPDeployment, algorithm: SnapshotClusteringAlgorithm,
                    period: float = 1.0) -> PeriodicClusteringDriver:
    """Attach a periodic re-clustering driver to the deployment's network.

    The driver recomputes the baseline partition on the same topology the GRP
    nodes experience, so GRP and baselines are compared on identical runs.
    """
    driver = PeriodicClusteringDriver(
        sim=deployment.sim,
        network=deployment.network,
        algorithm=algorithm,
        dmax=deployment.config.dmax,
        period=period,
    )
    deployment.start()
    driver.start()
    return driver


def sweep(values: Sequence,
          runner: Callable[[object], Dict[str, object]]) -> List[Dict[str, object]]:
    """Run ``runner`` for every value of a 1-D parameter sweep, collecting rows."""
    rows = []
    for value in values:
        rows.append(runner(value))
    return rows
