"""Command-line entry point of the experiment harness.

Examples
--------
Run one experiment (quick parameters)::

    python -m repro.experiments.cli E3

Run the full suite with paper-scale parameters and write a report::

    python -m repro.experiments.cli all --full --output results.txt

Run E1–E10 as a multi-seed campaign on 4 worker processes, with a resumable
result store::

    python -m repro.experiments.cli all --seeds 8 --jobs 4 --store results.jsonl

List the registered scenarios, then sweep one of them as a workload grid::

    python -m repro.experiments.cli --list-scenarios
    python -m repro.experiments.cli E3 --scenario manet_waypoint \
        --set area=400 --sweep n=10,20,40 --seeds 4 --jobs 2 --store grid.jsonl

Campaign mode
-------------
``--seeds N`` (N > 1), ``--jobs K`` (K > 1), ``--store PATH``, ``--sweep``,
``--traffic-sweep``, ``--progress``, ``--task-timeout`` or ``--task-retries``
switch the CLI from the single-run path to the campaign orchestrator
(:mod:`repro.campaign`).
Without any of them the CLI behaves exactly as before — one process, one seed
per experiment, byte-identical report output.

*Execution policy.*  ``--task-timeout SECONDS`` bounds each task attempt's
wall clock and ``--task-retries N`` grants extra attempts after a crash or
timeout; a task that exhausts its attempts records a structured failure row
(``status="failed"``) instead of killing the campaign.  ``--progress``
streams one ``[done/total] task`` line to *stderr* per completed task (store
replays included), on both backends; the stdout report is unchanged.

*Scenario axis.*  ``--scenario NAME`` selects a registered scenario
(:mod:`repro.scenarios`) as the workload of the selected experiments in place
of their defaults.  Repeatable ``--set param=value`` pins scenario
parameters; repeatable ``--sweep param=v1,v2,...`` turns a parameter into a
grid axis (multiple sweeps form their cartesian product, in flag order).
Values are validated and coerced against the scenario's declared schema
before anything runs; tuple-valued parameters use ``+`` separators
(``--set group_sizes=4+4+3``).  In single-run mode ``--scenario`` (with
optional ``--set``) simply overrides the workload of the one run.

*Traffic axis.*  ``--traffic NAME`` selects a registered application
workload generator (:mod:`repro.traffic`, see ``--list-traffic``) injected by
traffic-aware experiments (E11); ``--traffic-set`` / ``--traffic-sweep``
mirror ``--set`` / ``--sweep`` against the traffic schema.  Traffic cells are
a campaign grid axis exactly like scenario cells: they appear in task ids,
the spec hash and the per-task seed derivation, and the report renders one
block per {experiment x scenario x traffic} cell.  Campaigns without traffic
flags keep their pre-axis task ids, seeds and hashes.

*Observability.*  ``--obs`` (or ``--obs-out PATH``, which implies it)
collects runtime metrics + sim-time-correlated spans (:mod:`repro.obs`)
around every run: single runs print a one-line counter digest to stderr and
export a ``repro-obs/v1`` JSONL file to ``--obs-out``; campaigns persist
each task's export blob in its store record and write per-task export lines
to ``--obs-out``.  ``--obs-heap`` adds tracemalloc peak-heap tracking
(slower); ``--profile DIR`` dumps one cProfile file per run/task.  None of
these change the stdout report or any simulation result — the obs layer
never consumes RNG and never reorders events.

After a campaign, one final summary line goes to stderr —
``campaign summary: N tasks (X executed, Y resumed, F failed, R retried)`` —
so scripts see failure/retry counts without parsing the report.

*Spec format.*  The selected experiments, the scenario cells, the replicate
count (``--seeds``), the root seed (``--seed``, default 0) and the workload
size (``--full``) define a :class:`repro.campaign.CampaignSpec`.  The spec
expands into one task per {experiment x scenario cell x replicate}; each
task's seed is derived deterministically from the root seed via SHA-256
(:func:`repro.sim.randomness.derive_seed`), mixing in the scenario cell's
canonical JSON, so the task list — identifiers, seeds and order — is a pure
function of the spec.

*Result store schema.*  ``--store`` appends one JSON line per completed task
(see :mod:`repro.campaign.store`), including the scenario cell the task ran
under.

*Resume semantics.*  Rerunning the same command against the same store skips
every task whose ``(spec_hash, task_id)`` is already recorded and replays its
rows from the store — an interrupted campaign loses at most its in-flight
tasks.  Changing any spec field (experiments, scenario cells, seeds, root
seed, ``--full``) changes the spec hash, so stale records of a different
campaign are never reused.  Corrupt trailing lines (crashed writer) are
skipped and their tasks re-run.

*Aggregation.*  The campaign report prints one table per {experiment x
scenario cell} with replicate rows collapsed to ``mean ± std`` cells
(:func:`repro.metrics.report.aggregate_rows`), grouped by the experiment's
parameter-grid columns (:data:`repro.experiments.suite.AGGREGATE_KEYS`).
Aggregates are computed in canonical task order, so serial (``--jobs 1``) and
parallel executions produce identical tables.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from .runner import ExperimentResult
from .suite import ALL_EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (separated for testability)."""
    parser = argparse.ArgumentParser(
        prog="grp-experiments",
        description="Reproduction experiments for 'Best-effort Group Service in Dynamic "
                    "Networks' (SPAA 2010).")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="Experiment identifier (E1..E10) or 'all'.")
    parser.add_argument("--full", action="store_true",
                        help="Use the full (slower) workload sizes instead of the quick ones.")
    parser.add_argument("--seed", type=int, default=None,
                        help="Override the experiment seed (campaign mode: the root seed).")
    parser.add_argument("--output", type=str, default=None,
                        help="Also write the report to this file.")
    parser.add_argument("--list", action="store_true", help="List available experiments.")
    parser.add_argument("--seeds", type=int, default=1,
                        help="Seed replicates per experiment; > 1 runs a multi-seed campaign "
                             "with cross-seed aggregated tables.")
    parser.add_argument("--jobs", type=int, default=1,
                        help="Worker processes for campaign execution (1 = serial reference).")
    parser.add_argument("--store", type=str, default=None,
                        help="Result store; reruns resume by skipping recorded tasks. "
                             "A 'sqlite:' prefix or .sqlite/.db suffix selects the "
                             "SQLite backend (WAL, concurrent-writer safe); any other "
                             "path is the JSONL reference backend.")
    parser.add_argument("--progress", action="store_true",
                        help="Stream one '[done/total] task' line to stderr per completed "
                             "campaign task (serial and pool backends).")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                        help="Wall-clock budget per campaign task attempt; a task whose "
                             "attempts all time out records a failure row.")
    parser.add_argument("--task-retries", type=int, default=0, metavar="N",
                        help="Extra attempts after a crashed or timed-out task attempt "
                             "(default 0).")
    parser.add_argument("--scenario", type=str, default=None,
                        help="Registered scenario overriding the experiments' default "
                             "workload (see --list-scenarios).")
    parser.add_argument("--set", dest="set_params", action="append", default=[],
                        metavar="PARAM=VALUE",
                        help="Pin one scenario parameter (repeatable; requires --scenario; "
                             "tuple values use '+', e.g. group_sizes=4+4+3).")
    parser.add_argument("--sweep", dest="sweep_params", action="append", default=[],
                        metavar="PARAM=V1,V2,...",
                        help="Sweep one scenario parameter as a grid axis (repeatable; "
                             "requires --scenario; multiple sweeps form their cartesian "
                             "product and imply campaign mode).")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="List registered scenarios with their parameter schemas.")
    parser.add_argument("--traffic", type=str, default=None,
                        help="Registered application-traffic pattern injected by "
                             "traffic-aware experiments (see --list-traffic).")
    parser.add_argument("--traffic-set", dest="traffic_set_params", action="append",
                        default=[], metavar="PARAM=VALUE",
                        help="Pin one traffic parameter (repeatable; requires "
                             "--traffic).")
    parser.add_argument("--traffic-sweep", dest="traffic_sweep_params", action="append",
                        default=[], metavar="PARAM=V1,V2,...",
                        help="Sweep one traffic parameter as a grid axis (repeatable; "
                             "requires --traffic; implies campaign mode).")
    parser.add_argument("--list-traffic", action="store_true",
                        help="List registered traffic patterns with their parameter "
                             "schemas.")
    parser.add_argument("--obs", action="store_true",
                        help="Collect runtime observability (per-subsystem metrics and "
                             "sim-time-correlated spans, see repro.obs) around every run; "
                             "results are bit-identical either way.  In campaign mode the "
                             "export blob is persisted per task record.")
    parser.add_argument("--obs-out", type=str, default=None, metavar="PATH",
                        help="Write the collected metrics as JSON lines to PATH "
                             "(implies --obs).")
    parser.add_argument("--obs-heap", action="store_true",
                        help="Also track peak heap via tracemalloc (noticeably slower; "
                             "requires --obs/--obs-out).")
    parser.add_argument("--profile", type=str, default=None, metavar="DIR",
                        help="Dump a cProfile .prof file per experiment run / campaign "
                             "task into DIR.")
    return parser


def _split_assignment(text: str, flag: str) -> Tuple[str, str]:
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ValueError(f"{flag} expects PARAM=VALUE, got {text!r}")
    return key, value


def _expand_variants(kind: str, definition, spec_factory, name: str,
                     set_params: List[str], sweep_params: List[str],
                     set_flag: str, sweep_flag: str) -> List["object"]:
    """Expand --*-set/--*-sweep assignments into validated grid cells.

    Shared by the scenario and traffic axes: pins coerce against the
    definition's schema, sweeps form their cartesian product in flag order,
    every cell fully validates (so a typo'd parameter fails before any
    simulation runs) and duplicate cells are rejected.
    """
    base = {}
    for assignment in set_params:
        key, value = _split_assignment(assignment, set_flag)
        base[key] = definition.parameter(key).coerce(value)
    variants = [spec_factory(name, **base)]
    for sweep in sweep_params:
        key, value = _split_assignment(sweep, sweep_flag)
        parameter = definition.parameter(key)
        points = [parameter.coerce(v) for v in value.split(",") if v]
        if not points:
            raise ValueError(f"{sweep_flag} {key} needs at least one value")
        variants = [variant.with_params(**{key: point})
                    for variant in variants for point in points]
    for variant in variants:
        definition.resolve_params(variant.param_dict)
    labels = [variant.label() for variant in variants]
    if len(set(labels)) != len(labels):
        duplicates = sorted({label for label in labels if labels.count(label) > 1})
        raise ValueError(f"duplicate {kind} cell(s) from {sweep_flag}: {duplicates}")
    return variants


def _scenario_variants(args: argparse.Namespace) -> Optional[List["object"]]:
    """Expand --scenario/--set/--sweep into the list of scenario cells.

    Returns ``None`` when no scenario was selected.
    """
    from repro.scenarios import ScenarioSpec, get_scenario

    if args.scenario is None:
        if args.set_params or args.sweep_params:
            raise ValueError("--set/--sweep require --scenario")
        return None
    return _expand_variants("scenario", get_scenario(args.scenario),
                            ScenarioSpec.create, args.scenario,
                            args.set_params, args.sweep_params, "--set", "--sweep")


def _traffic_variants(args: argparse.Namespace) -> Optional[List["object"]]:
    """Expand --traffic/--traffic-set/--traffic-sweep into traffic cells.

    Returns ``None`` when no traffic was selected.
    """
    from repro.traffic import TrafficSpec, get_traffic

    if args.traffic is None:
        if args.traffic_set_params or args.traffic_sweep_params:
            raise ValueError("--traffic-set/--traffic-sweep require --traffic")
        return None
    return _expand_variants("traffic", get_traffic(args.traffic),
                            TrafficSpec.create, args.traffic,
                            args.traffic_set_params, args.traffic_sweep_params,
                            "--traffic-set", "--traffic-sweep")


def _run(experiment_ids: List[str], quick: bool, seed: Optional[int],
         scenario=None, traffic=None,
         profile_dir: Optional[str] = None) -> List[ExperimentResult]:
    from repro.obs import profiling

    if profile_dir is not None:
        import os
        os.makedirs(profile_dir, exist_ok=True)
    results = []
    for experiment_id in experiment_ids:
        start = time.time()
        profile_path = (None if profile_dir is None
                        else f"{profile_dir}/{experiment_id}.prof")
        with profiling(profile_path):
            result = run_experiment(experiment_id, quick=quick, seed=seed,
                                    scenario=scenario, traffic=traffic)
        result.add_note(f"wall time: {time.time() - start:.1f}s")
        results.append(result)
    return results


def _campaign_spec(experiment_ids: List[str], args: argparse.Namespace, scenarios,
                   traffics):
    """Build the campaign spec (raises ValueError on invalid policy flags)."""
    from repro.campaign import CampaignSpec

    return CampaignSpec(
        name=args.experiment.lower(),
        experiments=tuple(experiment_ids),
        replicates=max(1, args.seeds),
        root_seed=args.seed if args.seed is not None else 0,
        quick=not args.full,
        scenarios=tuple(scenarios) if scenarios else (),
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
        traffics=tuple(traffics) if traffics else (),
        obs=bool(args.obs or args.obs_out),
        obs_heap=args.obs_heap,
    )


def _write_campaign_obs(path: str, spec, result) -> None:
    """Write per-task obs blobs as JSON lines (meta, one per task, merged).

    The final ``{"type": "merged"}`` line folds every task blob through
    :func:`repro.obs.merge_export_blobs` (counters add, histograms fold
    element-wise, record windows interleave) so campaign-wide dashboards
    need not re-implement the merge.
    """
    import json

    from repro.obs import merge_export_blobs

    task_blobs = []
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "meta", "schema": "repro-obs/v1",
                                 "campaign": spec.name,
                                 "spec_hash": spec.spec_hash()}) + "\n")
        for outcome in result.outcomes:
            if outcome.obs is not None:
                task_blobs.append(outcome.obs)
                handle.write(json.dumps({"type": "task",
                                         "task_id": outcome.task_id,
                                         "wall_time": outcome.wall_time,
                                         "obs": outcome.obs}) + "\n")
        if task_blobs:
            handle.write(json.dumps({"type": "merged",
                                     "tasks": len(task_blobs),
                                     "obs": merge_export_blobs(task_blobs)})
                         + "\n")


def _run_campaign(spec, args: argparse.Namespace) -> Tuple[str, int]:
    """Execute the campaign; returns (report, permanently-failed task count)."""
    from repro.campaign import campaign_report, open_store, run_campaign

    store = open_store(args.store) if args.store else None
    progress = None
    if args.progress:
        total = spec.task_count()
        done = [0]

        def progress(outcome) -> None:
            done[0] += 1
            suffix = "resumed" if outcome.from_store else f"{outcome.wall_time:.1f}s"
            print(f"[{done[0]}/{total}] {outcome.task_id} ({suffix})",
                  file=sys.stderr, flush=True)

    result = run_campaign(spec, store=store, jobs=max(1, args.jobs), progress=progress,
                          profile_dir=args.profile)
    if args.obs_out:
        _write_campaign_obs(args.obs_out, spec, result)
    failed = sum(1 for outcome in result.outcomes
                 if any(row.get("status") == "failed" for row in outcome.rows))
    retried = sum(1 for outcome in result.outcomes if outcome.attempts > 1)
    # The per-task --progress stream only says how far the campaign got; the
    # final summary says how it went — failure and retry counts included —
    # on stderr, so the stdout report stays byte-identical.
    print(f"campaign summary: {len(result.outcomes)} tasks "
          f"({result.executed} executed, {result.skipped} resumed, "
          f"{failed} failed, {retried} retried)",
          file=sys.stderr, flush=True)
    return campaign_report(result), failed


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for key, func in sorted(ALL_EXPERIMENTS.items(), key=lambda kv: int(kv[0][1:])):
            print(f"{key}: {func.__doc__.splitlines()[0] if func.__doc__ else ''}")
        return 0
    if args.list_scenarios:
        from repro.scenarios import format_catalog
        print(format_catalog())
        return 0
    if args.list_traffic:
        from repro.traffic import format_traffic_catalog
        print(format_traffic_catalog())
        return 0
    if args.experiment.lower() == "all":
        experiment_ids = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    else:
        experiment_ids = [args.experiment]
    try:
        scenarios = _scenario_variants(args)
        traffics = _traffic_variants(args)
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    campaign_mode = (args.seeds > 1 or args.jobs > 1 or args.store is not None
                     or bool(args.sweep_params) or bool(args.traffic_sweep_params)
                     or args.progress
                     or args.task_timeout is not None or args.task_retries != 0)
    failed_tasks = 0
    try:
        if campaign_mode:
            try:
                # Spec construction validates the policy flags; only *its*
                # ValueError is a bad-input exit — errors raised later, deep
                # inside experiments, must keep their tracebacks.
                spec = _campaign_spec(experiment_ids, args, scenarios, traffics)
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            report, failed_tasks = _run_campaign(spec, args)
        else:
            scenario = scenarios[0] if scenarios else None
            traffic = traffics[0] if traffics else None
            obs_ctx = None
            if args.obs or args.obs_out:
                from repro.obs import ObsContext, observing
                with observing(ObsContext(track_heap=args.obs_heap)) as obs_ctx:
                    results = _run(experiment_ids, quick=not args.full,
                                   seed=args.seed, scenario=scenario,
                                   traffic=traffic, profile_dir=args.profile)
            else:
                results = _run(experiment_ids, quick=not args.full, seed=args.seed,
                               scenario=scenario, traffic=traffic,
                               profile_dir=args.profile)
            report = "\n\n".join(result.to_text() for result in results)
            if obs_ctx is not None:
                if args.obs_out:
                    obs_ctx.to_jsonl(args.obs_out,
                                     meta={"experiments": experiment_ids,
                                           "quick": not args.full,
                                           "seed": args.seed})
                # A one-line digest on stderr keeps the stdout report
                # byte-identical to an unobserved run.
                counters = obs_ctx.registry.as_dict()["counters"]
                digest = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
                print(f"obs: {digest or 'no counters recorded'}",
                      file=sys.stderr, flush=True)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if failed_tasks:
        # The failure-row policy keeps the campaign (and its report) alive,
        # but scripts and CI must still see a nonzero exit.
        print(f"{failed_tasks} task(s) failed permanently (see report)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
