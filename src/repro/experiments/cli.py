"""Command-line entry point of the experiment harness.

Examples
--------
Run one experiment (quick parameters)::

    python -m repro.experiments.cli E3

Run the full suite with paper-scale parameters and write a report::

    python -m repro.experiments.cli all --full --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .runner import ExperimentResult
from .suite import ALL_EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (separated for testability)."""
    parser = argparse.ArgumentParser(
        prog="grp-experiments",
        description="Reproduction experiments for 'Best-effort Group Service in Dynamic "
                    "Networks' (SPAA 2010).")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="Experiment identifier (E1..E10) or 'all'.")
    parser.add_argument("--full", action="store_true",
                        help="Use the full (slower) workload sizes instead of the quick ones.")
    parser.add_argument("--seed", type=int, default=None, help="Override the experiment seed.")
    parser.add_argument("--output", type=str, default=None,
                        help="Also write the report to this file.")
    parser.add_argument("--list", action="store_true", help="List available experiments.")
    return parser


def _run(experiment_ids: List[str], quick: bool, seed: Optional[int]) -> List[ExperimentResult]:
    results = []
    for experiment_id in experiment_ids:
        start = time.time()
        result = run_experiment(experiment_id, quick=quick, seed=seed)
        result.add_note(f"wall time: {time.time() - start:.1f}s")
        results.append(result)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for key, func in sorted(ALL_EXPERIMENTS.items(), key=lambda kv: int(kv[0][1:])):
            print(f"{key}: {func.__doc__.splitlines()[0] if func.__doc__ else ''}")
        return 0
    if args.experiment.lower() == "all":
        experiment_ids = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    else:
        experiment_ids = [args.experiment]
    try:
        results = _run(experiment_ids, quick=not args.full, seed=args.seed)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    blocks = [result.to_text() for result in results]
    report = "\n\n".join(blocks)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
