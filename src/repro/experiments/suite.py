"""The reproduction experiment suite (E1 … E11).

The paper contains no numeric tables or figures — its evaluation consists of
proved propositions plus a simulation study delegated to the (unavailable)
Airplug implementation.  Each experiment below therefore corresponds either to
a proposition (correctness claims, E1–E3, E6, E7, E9, E10) or to a claim of the
introduction / related-work discussion (performance claims, E4, E5, E8, and
E11 for the application-traffic claim the groups exist to serve).  The
mapping and the expected shapes are listed in DESIGN.md; the measured outputs
are recorded in EXPERIMENTS.md.

Every experiment function accepts ``quick`` (smaller workloads, used by the
default benchmark run and the tests), a ``seed``, and an optional
``scenario`` override (a :class:`~repro.scenarios.ScenarioSpec`): with it, the
experiment measures the overridden workload instead of building its default
one, which is what lets the campaign layer sweep any experiment across any
registered scenario grid.  Experiments that iterate an internal parameter
grid (e.g. the ``n`` x ``dmax`` loops of E1) re-apply those grid values onto
the override when its scenario declares them; undeclared ones are dropped
with a note.  Experiments whose logic depends on a hand-built topology (E9,
and the chain part of E10) keep their structural scenarios and say so in a
note.  Every experiment returns an
:class:`~repro.experiments.runner.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.kclustering import KHopClustering
from repro.baselines.lowest_id import LowestIdClustering
from repro.baselines.maxmin import MaxMinDCluster
from repro.core.node import GRPConfig
from repro.core.predicates import agreement, legitimate, omega, safety
from repro.core.protocol import GRPDeployment
from repro.metrics.continuity import continuity_summary
from repro.metrics.convergence import legitimate_fraction, stabilization_time
from repro.metrics.groups import (average_membership_churn, max_group_diameter,
                                  mean_group_lifetime, partition_quality)
from repro.metrics.overhead import overhead_summary
from repro.net.faults import FaultInjector
from repro.scenarios import ScenarioSpec, get_scenario, normalize_spec
from repro.scenarios import build as build_scenario
from repro.sim.randomness import derive_seed
from repro.traffic import TrafficSpec, attach_traffic, get_traffic, normalize_traffic_spec

from .runner import ExperimentResult, attach_baseline, run_with_sampler
from .scenarios import line_topology, ring_of_clusters, static_random, two_cluster_topology

__all__ = [
    "e1_stabilization",
    "e2_safety",
    "e3_continuity",
    "e4_vanet_churn",
    "e5_partition_quality",
    "e6_fault_recovery",
    "e7_quarantine_ablation",
    "e8_overhead",
    "e9_merging",
    "e10_compatibility",
    "e11_application_traffic",
    "ALL_EXPERIMENTS",
    "AGGREGATE_KEYS",
    "TRAFFIC_AWARE",
    "run_experiment",
]


def _advance_until(deployment: GRPDeployment, condition: Callable[[], bool],
                   max_time: float, step: float = 1.0) -> Optional[float]:
    """Advance the simulation until ``condition`` holds; return elapsed time or None."""
    start = deployment.sim.now
    deployment.start()
    while deployment.sim.now - start < max_time:
        if condition():
            return deployment.sim.now - start
        deployment.sim.run(until=deployment.sim.now + step)
    return deployment.sim.now - start if condition() else None


def _workload(override: Optional[ScenarioSpec], seed: int, default_name: str,
              config: Optional[GRPConfig] = None,
              forced: Optional[Dict[str, object]] = None,
              **default_params) -> GRPDeployment:
    """Build the experiment workload: its default scenario, or the override.

    ``forced`` holds the experiment's own grid values (e.g. the ``n``/``dmax``
    loop of E1).  On the default path they merge into the default spec; on the
    override path they are re-applied on top of the override wherever its
    scenario declares the parameter (undeclared ones are dropped, see
    :func:`_note_undeclared`).
    """
    forced = forced or {}
    if override is None:
        spec = ScenarioSpec.create(default_name, **default_params, **forced)
    else:
        declared = {p.name for p in get_scenario(override.name).parameters}
        spec = override.with_params(
            **{key: value for key, value in forced.items() if key in declared})
    return build_scenario(spec, seed=seed, config=config)


def _note_undeclared(result: ExperimentResult, override: Optional[ScenarioSpec],
                     forced_names: tuple) -> None:
    """Record which experiment grid columns cannot vary the override workload."""
    if override is None:
        return
    declared = {p.name for p in get_scenario(override.name).parameters}
    dropped = sorted(set(forced_names) - declared)
    if dropped:
        result.add_note(f"scenario {override.name!r} does not declare "
                        f"{', '.join(dropped)}: that grid column does not vary "
                        f"the workload")


def _structural_note(result: ExperimentResult, override: Optional[ScenarioSpec],
                     what: str) -> None:
    """Record that a structural experiment (part) ignored the override."""
    if override is not None:
        result.add_note(f"scenario override {override.label()} ignored for {what} "
                        f"(hand-built structural topology)")


# --------------------------------------------------------------------------- E1

def e1_stabilization(quick: bool = True, seed: int = 1,
                     scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E1 — Propositions 7/8/12: self-stabilization time on fixed topologies."""
    result = ExperimentResult(
        "E1", "Stabilization of ΠA ∧ ΠS ∧ ΠM on static random geometric graphs")
    sizes = [8, 14] if quick else [10, 20, 30, 40]
    dmaxes = [2, 3] if quick else [2, 3, 4]
    duration = 80.0 if quick else 150.0
    repeats = 2 if quick else 3
    _note_undeclared(result, scenario, ("n", "dmax"))
    for n in sizes:
        for dmax in dmaxes:
            for rep in range(repeats):
                run_seed = seed + 97 * rep
                deployment = _workload(scenario, run_seed, "static_random",
                                       area=60.0 * (n ** 0.5), radio_range=95.0,
                                       forced={"n": n, "dmax": dmax})
                sampler = run_with_sampler(deployment, duration=duration, sample_interval=1.0,
                                           keep_graphs=False)
                stab = stabilization_time(sampler.samples)
                final = sampler.last
                result.add_row(
                    n=n, dmax=dmax, seed=run_seed,
                    stabilization_time=stab,
                    legitimate_at_end=final.report.legitimate if final else False,
                    groups=final.report.group_count if final else None,
                )
    result.add_note("Expected shape: stabilization reached in the vast majority of runs and "
                    "time grows with n and Dmax (news must travel O(Dmax) timer periods). "
                    "Dense graphs with a tight Dmax occasionally settle in a legal-but-not-"
                    "maximal or disagreeing configuration (see DESIGN.md, known limitations).")
    return result


# --------------------------------------------------------------------------- E2

def e2_safety(quick: bool = True, seed: int = 2,
              scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E2 — Proposition 8: group diameters never exceed Dmax after convergence."""
    result = ExperimentResult("E2", "Safety: maximum observed group diameter vs Dmax")
    dmaxes = [2, 3] if quick else [1, 2, 3, 4]
    duration = 60.0 if quick else 120.0
    n = 14 if quick else 30
    _note_undeclared(result, scenario, ("dmax",))
    for dmax in dmaxes:
        if scenario is None:
            static = static_random(n=n, area=260.0, radio_range=100.0, dmax=dmax, seed=seed)
            static_sampler = run_with_sampler(static, duration=duration, warmup=40.0)
            mobile = _workload(None, seed, "manet_waypoint", n=n, area=260.0,
                               radio_range=100.0, speed=2.0, forced={"dmax": dmax})
            mobile_sampler = run_with_sampler(mobile, duration=duration, warmup=40.0)
            variants = [("static", static_sampler), ("waypoint v=2", mobile_sampler)]
        else:
            deployment = _workload(scenario, seed, "static_random", forced={"dmax": dmax})
            variants = [(scenario.name,
                         run_with_sampler(deployment, duration=duration, warmup=40.0))]
        for label, sampler in variants:
            result.add_row(dmax=dmax, scenario=label,
                           max_group_diameter=max_group_diameter(sampler.samples),
                           safety_violations=sum(1 for s in sampler.samples
                                                 if not s.report.safety))
    result.add_note("Expected shape: max observed diameter <= Dmax and zero safety "
                    "violations in the steady state of every run.")
    return result


# --------------------------------------------------------------------------- E3

def e3_continuity(quick: bool = True, seed: int = 3,
                  scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E3 — Proposition 14: ΠT ⇒ ΠC (best-effort continuity) under mobility."""
    result = ExperimentResult(
        "E3", "Continuity: member losses conditioned on the topological predicate ΠT")
    n = 12 if quick else 24
    duration = 80.0 if quick else 200.0
    speeds = [1.0, 8.0, 25.0] if quick else [0.5, 2.0, 8.0, 25.0, 50.0]
    _note_undeclared(result, scenario, ("speed",))
    for speed in speeds:
        deployment = _workload(scenario, seed, "manet_waypoint", n=n, area=300.0,
                               radio_range=120.0, dmax=3, forced={"speed": speed})
        sampler = run_with_sampler(deployment, duration=duration, warmup=40.0)
        summary = continuity_summary(sampler.transitions)
        result.add_row(
            speed=speed,
            transitions=summary.transitions,
            topological_held=summary.topological_held,
            continuity_violations_total=summary.violations_total,
            violations_under_topological=summary.violations_under_topological,
            best_effort_respected=summary.best_effort_respected,
        )
    result.add_note("Expected shape: continuity violations happen only on transitions where "
                    "ΠT is broken (fast mobility); violations_under_topological stays ~0. "
                    "At high speeds ΠT is evaluated on 1-second samples, so a violation "
                    "attributed to a ΠT-preserving transition may hide a mid-interval break.")
    return result


# --------------------------------------------------------------------------- E4

def e4_vanet_churn(quick: bool = True, seed: int = 4,
                   scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E4 — intro claim: GRP keeps groups alive longer than re-clustering baselines."""
    result = ExperimentResult(
        "E4", "VANET highway: membership churn and group lifetime, GRP vs baselines")
    n = 14 if quick else 30
    duration = 80.0 if quick else 200.0

    def highway() -> GRPDeployment:
        return _workload(scenario, seed, "vanet_highway", n=n, road_length=1500.0,
                         radio_range=180.0, dmax=3, base_speed=22.0, lane_count=1)

    deployment = highway()
    drivers = {
        "max-min": attach_baseline(deployment, MaxMinDCluster()),
        "lowest-id": attach_baseline(deployment, LowestIdClustering()),
        "k-hop": attach_baseline(deployment, KHopClustering()),
    }
    sampler = run_with_sampler(deployment, duration=duration, warmup=40.0)
    baseline_samplers = {}
    # Baselines are measured post-hoc on the same sampled instants by replaying
    # their periodic partitions through dedicated samplers on a second pass of
    # the identical scenario (same seed → same trajectory).
    for name, algorithm in (("max-min", MaxMinDCluster()), ("lowest-id", LowestIdClustering()),
                            ("k-hop", KHopClustering())):
        replay = highway()
        driver = attach_baseline(replay, algorithm)
        baseline_samplers[name] = run_with_sampler(replay, duration=duration, warmup=40.0,
                                                   views_provider=driver.views)
    del drivers
    rows = [("GRP", sampler)] + list(baseline_samplers.items())
    for name, smp in rows:
        result.add_row(
            algorithm=name,
            membership_churn_per_step=round(average_membership_churn(smp.samples), 3),
            mean_group_lifetime=round(mean_group_lifetime(smp.samples), 2),
            mean_groups=round(sum(s.report.group_count for s in smp.samples)
                              / max(len(smp.samples), 1), 2),
        )
    result.add_note("Expected shape: GRP has the lowest membership churn and the longest "
                    "group lifetimes; baselines may produce fewer groups but reshuffle them.")
    return result


# --------------------------------------------------------------------------- E5

def e5_partition_quality(quick: bool = True, seed: int = 5,
                         scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E5 — related-work claim: GRP trades partition optimality for stability."""
    result = ExperimentResult(
        "E5", "Partition quality on static graphs: GRP vs clusterhead baselines")
    n = 16 if quick else 35
    duration = 90.0 if quick else 150.0
    deployment = _workload(scenario, seed, "static_random", n=n, area=330.0,
                           radio_range=130.0, dmax=3)
    sampler = run_with_sampler(deployment, duration=duration)
    final = sampler.last
    grp_quality = partition_quality(final)
    graph = final.graph
    result.add_row(algorithm="GRP", groups=grp_quality.group_count,
                   isolated=grp_quality.isolated_nodes,
                   mean_size=round(grp_quality.mean_group_size, 2),
                   max_diameter=grp_quality.max_diameter,
                   legitimate=final.report.legitimate)
    for algorithm in (MaxMinDCluster(), LowestIdClustering(), KHopClustering()):
        views = algorithm.partition(graph, 3)
        groups = set(omega(views).values())
        sizes = [len(g) for g in groups]
        from repro.net.topology import subgraph_diameter
        diameters = [subgraph_diameter(graph, g) for g in groups if len(g) > 1]
        result.add_row(algorithm=algorithm.name, groups=len(groups),
                       isolated=sum(1 for s in sizes if s == 1),
                       mean_size=round(sum(sizes) / len(sizes), 2) if sizes else 0,
                       max_diameter=max(diameters) if diameters else 0,
                       legitimate=(agreement(views) and safety(views, graph, 3)))
    result.add_note("Expected shape: baselines reach similar or fewer groups (they optimise "
                    "the partition); GRP stays legal (diameter <= Dmax, agreement) while "
                    "prioritising stability over minimality.")
    return result


# --------------------------------------------------------------------------- E6

def e6_fault_recovery(quick: bool = True, seed: int = 6,
                      scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E6 — Propositions 1/2: ghost identities and oversized lists vanish in finite time."""
    result = ExperimentResult(
        "E6", "Self-stabilization after transient memory corruption")
    n = 12 if quick else 24
    deployment = _workload(scenario, seed, "static_random", n=n, area=240.0,
                           radio_range=110.0, dmax=3)
    run_with_sampler(deployment, duration=60.0)  # reach a legitimate configuration first
    injector = FaultInjector(deployment.network, rng=deployment.sim.spawn_rng())
    ghosts = [f"ghost-{i}" for i in range(3)]
    corrupted = injector.random_memory_corruption(fraction=0.4, ghost_pool=ghosts)
    injector.oversized_list(corrupted[0], extra_ids=[f"ghost-deep-{i}" for i in range(3)])

    def ghosts_gone() -> bool:
        return all(not node.alist.contains(g)
                   for node in deployment.nodes.values()
                   for g in ghosts + [f"ghost-deep-{i}" for i in range(3)])

    cleanup = _advance_until(deployment, ghosts_gone, max_time=60.0)
    sampler = run_with_sampler(deployment, duration=60.0)
    restab = stabilization_time(sampler.samples)
    result.add_row(corrupted_nodes=len(corrupted), ghost_identities=len(ghosts) + 3,
                   ghost_cleanup_time=cleanup,
                   re_stabilization_time=restab,
                   legitimate_at_end=sampler.last.report.legitimate)
    result.add_note("Expected shape: ghosts disappear within O(Dmax) computation periods and "
                    "the system returns to a legitimate configuration.")
    return result


# --------------------------------------------------------------------------- E7

def e7_quarantine_ablation(quick: bool = True, seed: int = 7,
                           scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E7 — ablation: the quarantine is what makes ΠT ⇒ ΠC hold."""
    result = ExperimentResult(
        "E7", "Quarantine ablation: view retractions with and without quarantine")
    n = 14 if quick else 26
    duration = 70.0 if quick else 150.0
    for label, quarantine in (("with quarantine", True), ("without quarantine", False)):
        config = GRPConfig(dmax=3, quarantine_enabled=quarantine)
        deployment = _workload(scenario, seed, "static_random", config=config,
                               n=n, area=300.0, radio_range=120.0, dmax=3)
        sampler = run_with_sampler(deployment, duration=duration, sample_interval=1.0)
        summary = continuity_summary(sampler.transitions)
        result.add_row(
            variant=label,
            transitions=summary.transitions,
            violations_under_topological=summary.violations_under_topological,
            members_lost_total=summary.members_lost_total,
            legitimate_fraction=round(legitimate_fraction(sampler.samples, start_time=40.0), 3),
        )
    result.add_note("Static topology, measured from the cold start: every transition "
                    "preserves ΠT, so any member loss is a best-effort violation caused by "
                    "admitting a node before the whole group vetted it. Expected shape: with "
                    "the quarantine the count stays ~0; without it, retractions appear.")
    return result


# --------------------------------------------------------------------------- E8

def e8_overhead(quick: bool = True, seed: int = 8,
                scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E8 — scalability: message and computation overhead vs n and Dmax."""
    result = ExperimentResult("E8", "Protocol overhead: messages, payloads, computations")
    sizes = [8, 16] if quick else [10, 20, 40, 60]
    dmaxes = [2, 4] if quick else [2, 3, 4, 5]
    duration = 40.0 if quick else 80.0
    _note_undeclared(result, scenario, ("n", "dmax"))
    for n in sizes:
        for dmax in dmaxes:
            deployment = _workload(scenario, seed, "static_random",
                                   area=60.0 * (n ** 0.5), radio_range=100.0,
                                   forced={"n": n, "dmax": dmax})
            deployment.run(duration)
            summary = overhead_summary(deployment, duration)
            row = {"n": n, "dmax": dmax}
            row.update(summary.as_row())
            result.add_row(**row)
    result.add_note("Expected shape: messages per node per second are constant (timer driven); "
                    "payload grows with the group size (bounded by the Dmax-neighbourhood).")
    return result


# --------------------------------------------------------------------------- E9

def e9_merging(quick: bool = True, seed: int = 9,
               scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E9 — Propositions 11/12: neighbouring groups merge; group priorities break loops."""
    result = ExperimentResult("E9", "Group merging and the group-priority rule")
    _structural_note(result, scenario, "E9")
    # Part 1 — two stabilized clusters brought into range must merge in O(Dmax).
    for dmax in ([2, 3] if quick else [2, 3, 4]):
        deployment, left, right = two_cluster_topology(cluster_size=3, gap=400.0, spacing=30.0,
                                                       radio_range=90.0, dmax=dmax, seed=seed)
        run_with_sampler(deployment, duration=50.0)
        # Teleport the right cluster next to the left one (still respecting Dmax).
        shift = 400.0 - 60.0
        new_positions = {node: (pos[0] - shift, pos[1])
                         for node, pos in deployment.network.positions.items()
                         if node in right}
        deployment.network.set_positions(new_positions)

        def merged() -> bool:
            views = deployment.views()
            graph = deployment.topology()
            return legitimate(views, graph, dmax) and len(set(omega(views).values())) == 1

        merge_time = _advance_until(deployment, merged, max_time=80.0)
        result.add_row(scenario="two clusters", dmax=dmax, merge_time=merge_time,
                       merged=merge_time is not None)
    # Part 2 — ring of groups willing to merge: group priorities prevent livelock.
    for label, use_group_prio in (("group priorities", True), ("node priorities only", False)):
        config = GRPConfig(dmax=3, use_group_priorities=use_group_prio)
        deployment, clusters = ring_of_clusters(cluster_count=4, cluster_size=3,
                                                ring_radius=110.0, cluster_radius=18.0,
                                                radio_range=120.0, dmax=3, seed=seed,
                                                config=config)
        sampler = run_with_sampler(deployment, duration=90.0 if quick else 160.0)
        final = sampler.last
        result.add_row(scenario=f"ring of 4 clusters ({label})", dmax=3,
                       final_groups=final.report.group_count,
                       legitimate=final.report.legitimate,
                       legitimate_fraction=round(legitimate_fraction(sampler.samples,
                                                                     start_time=40.0), 3))
    result.add_note("Expected shape: for Dmax >= 3 the clusters merge within a few timer "
                    "periods of coming into range; the Dmax = 2 row is a negative control "
                    "(the merged chain would have diameter 3, so the merge must NOT happen "
                    "and the partition stays maximal as-is). The ring scenario stabilizes to "
                    "a legitimate partition under both priority rules.")
    return result


# -------------------------------------------------------------------------- E10

def e10_compatibility(quick: bool = True, seed: int = 10,
                      scenario: Optional[ScenarioSpec] = None) -> ExperimentResult:
    """E10 — Proposition 13: the optimized compatibility test merges more, never unsafely."""
    result = ExperimentResult(
        "E10", "compatibleList: optimized (pairwise bounds) vs naive length test")
    duration = 130.0 if quick else 200.0
    _structural_note(result, scenario, "the chain part of E10")
    # A chain whose two halves can only merge thanks to shortcut knowledge.
    chain_n = 6
    for label, optimized in (("optimized", True), ("naive", False)):
        config = GRPConfig(dmax=3, optimized_compatibility=optimized)
        deployment = line_topology(n=chain_n, spacing=45.0, radio_range=50.0, dmax=3,
                                   seed=seed, config=config)
        sampler = run_with_sampler(deployment, duration=duration)
        final = sampler.last
        sizes = sorted(len(g) for g in set(final.groups.values()))
        result.add_row(topology=f"chain of {chain_n}", variant=label,
                       groups=final.report.group_count, largest_group=final.report.largest_group,
                       group_sizes=str(sizes),
                       max_diameter=max_group_diameter(sampler.samples),
                       legitimate=final.report.legitimate)
    # Random graphs: count how often each variant reaches a single legitimate group.
    merged_counts = {"optimized": 0, "naive": 0}
    trials = 4 if quick else 10
    for trial in range(trials):
        for label, optimized in (("optimized", True), ("naive", False)):
            config = GRPConfig(dmax=3, optimized_compatibility=optimized)
            deployment = _workload(scenario, seed + trial, "static_random", config=config,
                                   n=12, area=240.0, radio_range=110.0, dmax=3)
            sampler = run_with_sampler(deployment, duration=duration)
            final = sampler.last
            if final.report.legitimate:
                merged_counts[label] += final.report.group_count == 1
    result.add_row(topology=f"{trials} random graphs", variant="optimized",
                   groups=None, largest_group=None,
                   group_sizes=f"single-group runs: {merged_counts['optimized']}",
                   max_diameter=None, legitimate=None)
    result.add_row(topology=f"{trials} random graphs", variant="naive",
                   groups=None, largest_group=None,
                   group_sizes=f"single-group runs: {merged_counts['naive']}",
                   max_diameter=None, legitimate=None)
    result.add_note("Expected shape: the optimized test reaches larger groups (fewer groups, "
                    "more single-group runs) and never exceeds Dmax; the naive test is safe "
                    "but overly conservative.")
    return result


# -------------------------------------------------------------------------- E11

def e11_application_traffic(quick: bool = True, seed: int = 11,
                            scenario: Optional[ScenarioSpec] = None,
                            traffic: Optional[TrafficSpec] = None) -> ExperimentResult:
    """E11 — north-star claim: groups carry application traffic best-effort.

    A {mobility speed x offered load} grid: each cell runs a mobile workload
    with a traffic generator attached (``periodic_beacon`` by default, any
    registered pattern via the ``traffic`` override) and reports what the
    groups actually delivered — goodput, delivery ratio, latency, staleness
    and cross-group leakage, straight from the
    :class:`~repro.traffic.DeliveryLedger`.
    """
    result = ExperimentResult(
        "E11", "Application goodput over groups under mobility x offered load")
    n = 12 if quick else 24
    duration = 30.0 if quick else 90.0
    speeds = [2.0, 10.0] if quick else [1.0, 5.0, 15.0, 30.0]
    loads = [1.0, 4.0] if quick else [0.5, 1.0, 2.0, 4.0]
    base_interval = 1.0
    _note_undeclared(result, scenario, ("speed",))
    base_traffic = (TrafficSpec.create("periodic_beacon") if traffic is None
                    else traffic)
    traffic_declared = {p.name for p in get_traffic(base_traffic.name).parameters}
    if "interval" not in traffic_declared:
        result.add_note(f"traffic {base_traffic.name!r} does not declare 'interval': "
                        f"the load grid column does not vary the offered rate")
    for speed in speeds:
        for load in loads:
            deployment = _workload(scenario, seed, "manet_waypoint", n=n, area=280.0,
                                   radio_range=120.0, dmax=3,
                                   forced={"speed": speed})
            cell_traffic = base_traffic
            if "interval" in traffic_declared:
                cell_traffic = base_traffic.with_params(
                    interval=base_interval / load)
            driver = attach_traffic(
                deployment, cell_traffic,
                seed=derive_seed(seed, f"E11/speed={speed}/load={load}"))
            deployment.run(duration)
            row: Dict[str, object] = {"speed": speed, "load": load}
            row.update(driver.ledger.totals(duration))
            result.add_row(**row)
    result.add_note(f"traffic pattern: {base_traffic.label()}; offered rate scales "
                    f"with the load column (interval = {base_interval}/load) where "
                    f"the pattern declares it")
    result.add_note("Expected shape: delivery ratio and goodput degrade gracefully "
                    "with speed (groups fragment, broadcasts miss distant members) "
                    "and leakage grows with density of non-members in the vicinity; "
                    "the service stays best-effort — no cell collapses to zero.")
    return result


# ------------------------------------------------------------------ registry

ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_stabilization,
    "E2": e2_safety,
    "E3": e3_continuity,
    "E4": e4_vanet_churn,
    "E5": e5_partition_quality,
    "E6": e6_fault_recovery,
    "E7": e7_quarantine_ablation,
    "E8": e8_overhead,
    "E9": e9_merging,
    "E10": e10_compatibility,
    "E11": e11_application_traffic,
}

#: Experiments that measure application traffic and therefore accept a
#: ``traffic`` override; the others ignore it with a note (mirroring how
#: structural experiments treat scenario overrides).
TRAFFIC_AWARE = frozenset({"E11"})


# Parameter-grid key columns of each experiment's result rows.  Multi-seed
# campaigns group replicate rows by these columns before aggregating the
# metric columns (mean ± std across seeds); rows of E6 form a single cell.
AGGREGATE_KEYS: Dict[str, tuple] = {
    "E1": ("n", "dmax"),
    "E2": ("dmax", "scenario"),
    "E3": ("speed",),
    "E4": ("algorithm",),
    "E5": ("algorithm",),
    "E6": (),
    "E7": ("variant",),
    "E8": ("n", "dmax"),
    "E9": ("scenario", "dmax"),
    "E10": ("topology", "variant"),
    "E11": ("speed", "load"),
}


def run_experiment(experiment_id: str, quick: bool = True,
                   seed: Optional[int] = None,
                   scenario: Optional[ScenarioSpec] = None,
                   traffic: Optional[TrafficSpec] = None) -> ExperimentResult:
    """Run one experiment by identifier (``"E1"`` … ``"E11"``).

    ``scenario`` optionally overrides the experiment's default workload with a
    registered scenario spec (a :class:`~repro.scenarios.ScenarioSpec` or its
    ``as_dict`` form).  ``traffic`` optionally overrides the application
    workload of traffic-aware experiments (:data:`TRAFFIC_AWARE`); the other
    experiments ignore it and say so in a result note.
    """
    key = experiment_id.upper()
    if key not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; valid: {sorted(ALL_EXPERIMENTS)}")
    func = ALL_EXPERIMENTS[key]
    kwargs: Dict[str, object] = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    if scenario is not None:
        if isinstance(scenario, dict):
            scenario = ScenarioSpec.from_dict(scenario)
        # Normalized so result notes/labels agree with the built workload.
        kwargs["scenario"] = normalize_spec(scenario)
    if traffic is not None:
        if isinstance(traffic, dict):
            traffic = TrafficSpec.from_dict(traffic)
        traffic = normalize_traffic_spec(traffic)
        if key in TRAFFIC_AWARE:
            kwargs["traffic"] = traffic
    result = func(**kwargs)
    if traffic is not None and key not in TRAFFIC_AWARE:
        result.add_note(f"traffic spec {traffic.label()} ignored by {key} "
                        f"(experiment measures no application traffic)")
    return result
