"""Experiment harness: scenarios, runner and the E1..E10 reproduction suite."""

from .runner import ExperimentResult, attach_baseline, run_with_sampler, sweep
from .scenarios import (line_topology, manet_waypoint, ring_of_clusters, rpgm_scenario,
                        static_random, two_cluster_topology, vanet_highway)
from .suite import ALL_EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult", "attach_baseline", "run_with_sampler", "sweep",
    "line_topology", "manet_waypoint", "ring_of_clusters", "rpgm_scenario",
    "static_random", "two_cluster_topology", "vanet_highway",
    "ALL_EXPERIMENTS", "run_experiment",
]
