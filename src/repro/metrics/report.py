"""Plain-text table formatting for the experiment harness.

The benchmark harness prints, for every experiment, rows comparable to what the
paper's evaluation would have tabulated.  No third-party table library is used
so the output stays dependency-free and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.3f}".rstrip("0").rstrip(".") if abs(value) < 1e6 else f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(c) for c in columns]
    body: List[List[str]] = [[format_value(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
              for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title))
