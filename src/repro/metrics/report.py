"""Plain-text table formatting for the experiment harness.

The benchmark harness prints, for every experiment, rows comparable to what the
paper's evaluation would have tabulated.  No third-party table library is used
so the output stays dependency-free and diff-friendly.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table", "format_value", "aggregate_rows",
           "group_rows", "ordered_columns", "safe_pstdev"]


def safe_pstdev(values: Sequence[float]) -> float:
    """Population standard deviation, tolerating non-finite data.

    ``statistics.pstdev`` chokes on inf/NaN entries (and a spread around an
    infinite mean is meaningless anyway) — yet some metrics are legitimately
    infinite, e.g. the diameter of a momentarily disconnected group.  Those
    inputs yield ``nan`` instead of an exception.
    """
    if all(math.isfinite(float(v)) for v in values):
        return statistics.pstdev(values)
    return float("nan")


def format_value(value: object) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.3f}".rstrip("0").rstrip(".") if abs(value) < 1e6 else f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(c) for c in columns]
    body: List[List[str]] = [[format_value(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
              for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def group_rows(rows: Sequence[Dict[str, object]],
               group_by: Sequence[str]) -> Dict[tuple, List[Dict[str, object]]]:
    """Group dict rows by the tuple of their ``group_by`` values.

    Groups keep first-seen order (dicts preserve insertion order), so the
    result is deterministic for a deterministic input ordering.
    """
    groups: Dict[tuple, List[Dict[str, object]]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(c) for c in group_by), []).append(row)
    return groups


def ordered_columns(rows: Sequence[Dict[str, object]],
                    skip: Iterable[str] = ()) -> List[str]:
    """Column names appearing across ``rows``, in first-appearance order."""
    skipped = set(skip)
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in skipped and column not in columns:
                columns.append(column)
    return columns


def aggregate_rows(rows: Sequence[Dict[str, object]],
                   group_by: Sequence[str] = (),
                   drop: Sequence[str] = (),
                   count_column: str = "replicates") -> List[Dict[str, object]]:
    """Collapse replicate rows into summary rows, one per ``group_by`` cell.

    Rows sharing the same values of the ``group_by`` columns are merged.
    ``None`` entries are ignored throughout.  Numeric columns (ints and
    floats, not bools) are rendered as ``mean ± std`` through
    :func:`format_value` (population std, so a single replicate reads
    ``x ± 0``).  Boolean columns keep their value when unanimous and
    otherwise show the ``yes`` fraction.  Any other column keeps its value
    when constant across the group and collapses to the number of distinct
    values otherwise.  Columns named in ``drop`` are omitted;
    ``count_column`` reports the group size (shadowing any data column of
    the same name).  Group order and column order follow first appearance,
    so the output is deterministic for a deterministic input ordering.
    """
    skip = set(group_by) | set(drop) | {count_column}
    out: List[Dict[str, object]] = []
    for key, members in group_rows(rows, group_by).items():
        summary: Dict[str, object] = dict(zip(group_by, key))
        summary[count_column] = len(members)
        for column in ordered_columns(members, skip=skip):
            present = [row[column] for row in members
                       if column in row and row[column] is not None]
            if not present:
                summary[column] = None
            elif all(isinstance(v, bool) for v in present):
                if len(set(present)) == 1:
                    summary[column] = present[0]
                else:
                    fraction = sum(1 for v in present if v) / len(present)
                    summary[column] = f"{format_value(fraction)} yes"
            elif all(_is_numeric(v) for v in present):
                mean = statistics.fmean(present)
                std = safe_pstdev(present)
                summary[column] = f"{format_value(mean)} ± {format_value(std)}"
            elif len(set(map(str, present))) == 1:
                summary[column] = present[0]
            else:
                summary[column] = f"{len(set(map(str, present)))} distinct"
        out.append(summary)
    return out


def print_table(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, title=title))
