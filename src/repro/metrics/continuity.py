"""Best-effort continuity measurements (experiments E3, E7).

The best-effort requirement of the paper is ΠT ⇒ ΠC on every pair of
consecutive configurations: whenever the topology change preserved the
diameter condition inside every current group, no node may disappear from any
group.  :func:`continuity_summary` aggregates the transition records produced
by the sampler into the quantities reported by experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .collectors import TransitionRecord

__all__ = ["ContinuitySummary", "continuity_summary"]


@dataclass(frozen=True)
class ContinuitySummary:
    """Aggregated continuity behaviour over one run."""

    transitions: int
    topological_held: int
    continuity_held: int
    violations_under_topological: int
    violations_total: int
    members_lost_total: int

    @property
    def best_effort_respected(self) -> bool:
        """Whether ΠT ⇒ ΠC held on every observed transition."""
        return self.violations_under_topological == 0

    @property
    def violation_rate_under_topological(self) -> float:
        """Fraction of ΠT-preserving transitions that still lost a member."""
        if self.topological_held == 0:
            return 0.0
        return self.violations_under_topological / self.topological_held


def continuity_summary(transitions: Sequence[TransitionRecord]) -> ContinuitySummary:
    """Summarise the transition records of one run."""
    topological_held = sum(1 for t in transitions if t.topological_ok)
    continuity_held = sum(1 for t in transitions if t.continuity_ok)
    violations_total = sum(1 for t in transitions if not t.continuity_ok)
    violations_under_topological = sum(1 for t in transitions if t.best_effort_violation)
    members_lost = sum(t.lost_members for t in transitions)
    return ContinuitySummary(
        transitions=len(transitions),
        topological_held=topological_held,
        continuity_held=continuity_held,
        violations_under_topological=violations_under_topological,
        violations_total=violations_total,
        members_lost_total=members_lost,
    )
