"""Protocol overhead measurements (experiment E8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.messages import GRPMessage
from repro.core.protocol import GRPDeployment

__all__ = ["OverheadSummary", "overhead_summary"]


@dataclass(frozen=True)
class OverheadSummary:
    """Message overhead of one GRP run."""

    duration: float
    node_count: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    messages_per_node_per_second: float
    mean_payload_slots: float
    computations_per_node_per_second: float

    def as_row(self) -> Dict[str, object]:
        """Flat representation used by the experiment tables."""
        return {
            "nodes": self.node_count,
            "msgs/node/s": round(self.messages_per_node_per_second, 3),
            "payload slots": round(self.mean_payload_slots, 2),
            "computes/node/s": round(self.computations_per_node_per_second, 3),
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
        }


def overhead_summary(deployment: GRPDeployment, duration: float) -> OverheadSummary:
    """Summarise the message overhead of a finished (or running) deployment.

    The payload size is estimated from the message each node would send *now*
    (list + priorities + view), expressed in identity slots — a proxy for bytes
    that is independent of the identity encoding.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    network = deployment.network
    nodes = deployment.nodes
    node_count = max(len(nodes), 1)
    payload_sizes = []
    computations = 0
    for node in nodes.values():
        message = GRPMessage.build(
            sender=node.node_id,
            alist=node.alist,
            priorities=node.priorities.snapshot(node.alist.nodes() | {node.node_id}),
            group_priority=node.group_priority(),
            view=node.view,
        )
        payload_sizes.append(message.size_estimate())
        computations += node.computations
    return OverheadSummary(
        duration=float(duration),
        node_count=len(nodes),
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        messages_per_node_per_second=network.messages_sent / node_count / duration,
        mean_payload_slots=(sum(payload_sizes) / len(payload_sizes)) if payload_sizes else 0.0,
        computations_per_node_per_second=computations / node_count / duration,
    )
