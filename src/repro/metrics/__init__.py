"""Measurement substrate: samplers, convergence, continuity, group and overhead metrics."""

from .collectors import ConfigurationSample, ConfigurationSampler, TransitionRecord
from .continuity import ContinuitySummary, continuity_summary
from .convergence import (first_legitimate_time, legitimate_fraction, stabilization_time,
                          time_until)
from .groups import (PartitionQuality, average_membership_churn, group_lifetimes,
                     max_group_diameter, mean_group_lifetime, membership_churn,
                     partition_quality)
from .overhead import OverheadSummary, overhead_summary
from .report import format_table, format_value, print_table

__all__ = [
    "ConfigurationSample", "ConfigurationSampler", "TransitionRecord",
    "ContinuitySummary", "continuity_summary",
    "first_legitimate_time", "legitimate_fraction", "stabilization_time", "time_until",
    "PartitionQuality", "average_membership_churn", "group_lifetimes", "max_group_diameter",
    "mean_group_lifetime", "membership_churn", "partition_quality",
    "OverheadSummary", "overhead_summary",
    "format_table", "format_value", "print_table",
]
