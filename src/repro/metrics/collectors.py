"""Configuration sampling.

The predicates of the Dynamic Group Service are defined on configurations and
on pairs of consecutive configurations.  :class:`ConfigurationSampler` snapshots
the views and the topology at a fixed interval and evaluates:

* the static predicates ΠA, ΠS, ΠM on each sample;
* the transition predicates ΠT, ΠC between consecutive samples.

The sampler works with any *views provider* (a callable returning the current
views), so GRP deployments and baseline clustering drivers are measured with
exactly the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional

import networkx as nx

from repro.core.predicates import (ConfigurationReport, Groups,
                                   agreement_violations, continuity,
                                   continuity_violations, evaluate_configuration, omega,
                                   safety_violations, topological)
from repro.obs import current as _obs_current
from repro.sim.engine import Simulator

__all__ = ["ConfigurationSample", "TransitionRecord", "ConfigurationSampler"]

Views = Dict[Hashable, FrozenSet[Hashable]]


@dataclass(frozen=True)
class ConfigurationSample:
    """One sampled configuration."""

    time: float
    views: Views
    groups: Groups
    graph: nx.Graph
    report: ConfigurationReport


@dataclass(frozen=True)
class TransitionRecord:
    """Predicates evaluated on a pair of consecutive samples."""

    time: float
    topological_ok: bool
    continuity_ok: bool
    lost_members: int

    @property
    def best_effort_violation(self) -> bool:
        """ΠT held but ΠC did not — the violation the best-effort property forbids."""
        return self.topological_ok and not self.continuity_ok


class ConfigurationSampler:
    """Periodically snapshots a running deployment and evaluates the predicates.

    Parameters
    ----------
    sim:
        The simulator driving the run.
    views_provider:
        Callable returning the current views (node -> frozenset of members).
    graph_provider:
        Callable returning the current symmetric-link topology graph.
    dmax:
        Diameter bound used by ΠS / ΠM / ΠT.
    interval:
        Sampling period (simulated seconds).
    keep_graphs:
        Store the sampled graphs inside the samples (needed by a few analyses;
        disable to save memory on long sweeps).
    """

    def __init__(self, sim: Simulator, views_provider: Callable[[], Views],
                 graph_provider: Callable[[], nx.Graph], dmax: int,
                 interval: float = 1.0, keep_graphs: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.views_provider = views_provider
        self.graph_provider = graph_provider
        self.dmax = int(dmax)
        self.interval = float(interval)
        self.keep_graphs = keep_graphs
        self.samples: List[ConfigurationSample] = []
        self.transitions: List[TransitionRecord] = []
        self._handle = None
        self._previous: Optional[ConfigurationSample] = None
        # Protocol observatory: captured once at construction (PR-7 contract —
        # off costs exactly this attribute check per sample).
        self._obs = _obs_current()
        self._first_legitimate: Optional[float] = None
        self._stable_since: Optional[float] = None

    # ------------------------------------------------------------------ wiring

    def start(self) -> None:
        """Take one immediate sample and schedule periodic sampling."""
        self.sample_now()
        self._handle = self.sim.call_every(self.interval, self.sample_now)

    def stop(self) -> None:
        """Stop the periodic sampling (emits the stabilization milestone)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._obs is not None and self._stable_since is not None:
            self._obs.record_event("convergence.stabilized", self.sim.now,
                                   since=self._stable_since)
            self._stable_since = None

    # ---------------------------------------------------------------- sampling

    def sample_now(self) -> ConfigurationSample:
        """Take a sample immediately (also called by the periodic schedule)."""
        views = dict(self.views_provider())
        graph = self.graph_provider()
        groups = omega(views)
        report = evaluate_configuration(self.sim.now, views, graph, self.dmax)
        sample = ConfigurationSample(
            time=self.sim.now,
            views=views,
            groups=groups,
            graph=graph if self.keep_graphs else nx.Graph(),
            report=report,
        )
        previous = self._previous
        transition: Optional[TransitionRecord] = None
        if previous is not None:
            lost = continuity_violations(previous.groups, groups)
            lost_members = sum(len(prev - new) for _, prev, new in lost)
            transition = TransitionRecord(
                time=self.sim.now,
                topological_ok=topological(previous.groups, graph, self.dmax),
                continuity_ok=continuity(previous.groups, groups),
                lost_members=lost_members,
            )
            self.transitions.append(transition)
        self._previous = sample
        self.samples.append(sample)
        if self._obs is not None:
            self._emit_events(previous, sample, transition, graph)
        return sample

    # ---------------------------------------------------------- event feed

    @staticmethod
    def _group_key(group: FrozenSet[Hashable]) -> List[str]:
        return sorted(map(str, group))

    @staticmethod
    def _group_payload(group: FrozenSet[Hashable]) -> Dict[str, object]:
        payload: Dict[str, object] = {"size": len(group)}
        if len(group) <= 8:
            payload["members"] = sorted(map(str, group))
        return payload

    def _emit_events(self, previous: Optional[ConfigurationSample],
                     sample: ConfigurationSample,
                     transition: Optional[TransitionRecord],
                     graph: nx.Graph) -> None:
        """Feed the protocol observatory from one sample.

        Observation only: every fact here is derived from the snapshot, and
        the group-lifecycle classification walks the two partitions in sorted
        order so the emitted stream is a pure function of the run.
        """
        obs = self._obs
        now = sample.time
        report = sample.report
        if previous is not None:
            prev_groups = set(previous.groups.values())
            new_groups = set(sample.groups.values())
            for group in sorted(new_groups - prev_groups, key=self._group_key):
                if len(group) == 1:
                    continue  # shrink/dissolution is reported from the old side
                if any(parent >= group for parent in prev_groups):
                    continue
                parents = sorted((p for p in prev_groups if p & group and len(p) > 1),
                                 key=self._group_key)
                if len(parents) >= 2:
                    obs.record_event("group.merged", now, parents=len(parents),
                                     **self._group_payload(group))
                elif not parents:
                    obs.record_event("group.formed", now,
                                     **self._group_payload(group))
                else:
                    obs.record_event("group.changed", now,
                                     prev_size=len(parents[0]),
                                     **self._group_payload(group))
            for group in sorted(prev_groups - new_groups, key=self._group_key):
                if len(group) == 1:
                    continue
                fragments = {sample.groups.get(member, frozenset({member}))
                             for member in group}
                if any(fragment >= group for fragment in fragments):
                    continue  # absorbed — the new side reported merged/changed
                if all(len(fragment) == 1 for fragment in fragments):
                    obs.record_event("group.dissolved", now, size=len(group))
                elif len(fragments) >= 2:
                    obs.record_event("group.split", now, prev_size=len(group),
                                     fragments=len(fragments))
                else:
                    remnant = next(iter(fragments))
                    if remnant < group:
                        obs.record_event("group.changed", now,
                                         prev_size=len(group),
                                         **self._group_payload(remnant))
        if not report.agreement:
            violations = agreement_violations(sample.views)
            first = min(violations, key=lambda v: str(v[0]))
            obs.record_event("predicate.agreement_violation", now,
                             count=len(violations), node=str(first[0]),
                             reason=first[1])
        if not report.safety:
            violations = safety_violations(sample.views, graph, self.dmax)
            worst = max((d for _, d in violations if d != float("inf")),
                        default=None)
            obs.record_event("predicate.safety_violation", now,
                             count=len(violations), worst_diameter=worst)
        if not report.maximality:
            obs.record_event("predicate.maximality_violation", now,
                             group_count=report.group_count,
                             largest_group=report.largest_group)
        if transition is not None and not transition.continuity_ok:
            obs.record_event("predicate.continuity_violation", now,
                             lost_members=transition.lost_members,
                             topological_ok=transition.topological_ok)
            if transition.best_effort_violation:
                obs.record_event("predicate.best_effort_violation", now,
                                 lost_members=transition.lost_members)
        if report.legitimate:
            if self._first_legitimate is None:
                self._first_legitimate = now
                obs.record_event("convergence.first_legitimate", now,
                                 group_count=report.group_count,
                                 largest_group=report.largest_group)
            if self._stable_since is None:
                self._stable_since = now
        elif self._stable_since is not None:
            obs.record_event("convergence.legitimacy_lost", now,
                             since=self._stable_since)
            self._stable_since = None

    # ----------------------------------------------------------------- queries

    @property
    def last(self) -> Optional[ConfigurationSample]:
        """Most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def legitimate_samples(self) -> List[ConfigurationSample]:
        """Samples on which ΠA ∧ ΠS ∧ ΠM holds."""
        return [s for s in self.samples if s.report.legitimate]

    def best_effort_violations(self) -> List[TransitionRecord]:
        """Transitions where ΠT held but ΠC did not."""
        return [t for t in self.transitions if t.best_effort_violation]
