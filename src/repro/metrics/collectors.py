"""Configuration sampling.

The predicates of the Dynamic Group Service are defined on configurations and
on pairs of consecutive configurations.  :class:`ConfigurationSampler` snapshots
the views and the topology at a fixed interval and evaluates:

* the static predicates ΠA, ΠS, ΠM on each sample;
* the transition predicates ΠT, ΠC between consecutive samples.

The sampler works with any *views provider* (a callable returning the current
views), so GRP deployments and baseline clustering drivers are measured with
exactly the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional

import networkx as nx

from repro.core.predicates import (ConfigurationReport, Groups, continuity,
                                   continuity_violations, evaluate_configuration, omega,
                                   topological)
from repro.sim.engine import Simulator

__all__ = ["ConfigurationSample", "TransitionRecord", "ConfigurationSampler"]

Views = Dict[Hashable, FrozenSet[Hashable]]


@dataclass(frozen=True)
class ConfigurationSample:
    """One sampled configuration."""

    time: float
    views: Views
    groups: Groups
    graph: nx.Graph
    report: ConfigurationReport


@dataclass(frozen=True)
class TransitionRecord:
    """Predicates evaluated on a pair of consecutive samples."""

    time: float
    topological_ok: bool
    continuity_ok: bool
    lost_members: int

    @property
    def best_effort_violation(self) -> bool:
        """ΠT held but ΠC did not — the violation the best-effort property forbids."""
        return self.topological_ok and not self.continuity_ok


class ConfigurationSampler:
    """Periodically snapshots a running deployment and evaluates the predicates.

    Parameters
    ----------
    sim:
        The simulator driving the run.
    views_provider:
        Callable returning the current views (node -> frozenset of members).
    graph_provider:
        Callable returning the current symmetric-link topology graph.
    dmax:
        Diameter bound used by ΠS / ΠM / ΠT.
    interval:
        Sampling period (simulated seconds).
    keep_graphs:
        Store the sampled graphs inside the samples (needed by a few analyses;
        disable to save memory on long sweeps).
    """

    def __init__(self, sim: Simulator, views_provider: Callable[[], Views],
                 graph_provider: Callable[[], nx.Graph], dmax: int,
                 interval: float = 1.0, keep_graphs: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.views_provider = views_provider
        self.graph_provider = graph_provider
        self.dmax = int(dmax)
        self.interval = float(interval)
        self.keep_graphs = keep_graphs
        self.samples: List[ConfigurationSample] = []
        self.transitions: List[TransitionRecord] = []
        self._handle = None
        self._previous: Optional[ConfigurationSample] = None

    # ------------------------------------------------------------------ wiring

    def start(self) -> None:
        """Take one immediate sample and schedule periodic sampling."""
        self.sample_now()
        self._handle = self.sim.call_every(self.interval, self.sample_now)

    def stop(self) -> None:
        """Stop the periodic sampling."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ---------------------------------------------------------------- sampling

    def sample_now(self) -> ConfigurationSample:
        """Take a sample immediately (also called by the periodic schedule)."""
        views = dict(self.views_provider())
        graph = self.graph_provider()
        groups = omega(views)
        report = evaluate_configuration(self.sim.now, views, graph, self.dmax)
        sample = ConfigurationSample(
            time=self.sim.now,
            views=views,
            groups=groups,
            graph=graph if self.keep_graphs else nx.Graph(),
            report=report,
        )
        if self._previous is not None:
            lost = continuity_violations(self._previous.groups, groups)
            lost_members = sum(len(prev - new) for _, prev, new in lost)
            self.transitions.append(TransitionRecord(
                time=self.sim.now,
                topological_ok=topological(self._previous.groups, graph, self.dmax),
                continuity_ok=continuity(self._previous.groups, groups),
                lost_members=lost_members,
            ))
        self._previous = sample
        self.samples.append(sample)
        return sample

    # ----------------------------------------------------------------- queries

    @property
    def last(self) -> Optional[ConfigurationSample]:
        """Most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def legitimate_samples(self) -> List[ConfigurationSample]:
        """Samples on which ΠA ∧ ΠS ∧ ΠM holds."""
        return [s for s in self.samples if s.report.legitimate]

    def best_effort_violations(self) -> List[TransitionRecord]:
        """Transitions where ΠT held but ΠC did not."""
        return [t for t in self.transitions if t.best_effort_violation]
