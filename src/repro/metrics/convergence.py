"""Stabilization / convergence measurements (experiments E1, E6)."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .collectors import ConfigurationSample

__all__ = [
    "stabilization_time",
    "first_legitimate_time",
    "time_until",
    "legitimate_fraction",
]


def first_legitimate_time(samples: Sequence[ConfigurationSample]) -> Optional[float]:
    """Time of the first sample satisfying ΠA ∧ ΠS ∧ ΠM (``None`` if never)."""
    for sample in samples:
        if sample.report.legitimate:
            return sample.time
    return None


def stabilization_time(samples: Sequence[ConfigurationSample],
                       start_time: float = 0.0) -> Optional[float]:
    """Time after which ΠA ∧ ΠS ∧ ΠM holds in every remaining sample.

    This is the empirical counterpart of the attractor definition: the earliest
    sample time ``T >= start_time`` such that every later sample (including the
    last one) is legitimate.  ``None`` when the final sample is not legitimate.
    """
    eligible = [s for s in samples if s.time >= start_time]
    if not eligible or not eligible[-1].report.legitimate:
        return None
    stabilization: Optional[float] = None
    for sample in eligible:
        if sample.report.legitimate:
            if stabilization is None:
                stabilization = sample.time
        else:
            stabilization = None
    return stabilization


def time_until(samples: Sequence[ConfigurationSample],
               predicate: Callable[[ConfigurationSample], bool],
               start_time: float = 0.0) -> Optional[float]:
    """Delay, counted from ``start_time``, until ``predicate`` first holds and then
    keeps holding for every later sample.  ``None`` when it never settles."""
    eligible = [s for s in samples if s.time >= start_time]
    if not eligible or not predicate(eligible[-1]):
        return None
    settle: Optional[float] = None
    for sample in eligible:
        if predicate(sample):
            if settle is None:
                settle = sample.time
        else:
            settle = None
    if settle is None:
        return None
    return settle - start_time


def legitimate_fraction(samples: Sequence[ConfigurationSample],
                        start_time: float = 0.0) -> float:
    """Fraction of samples (after ``start_time``) satisfying ΠA ∧ ΠS ∧ ΠM."""
    eligible = [s for s in samples if s.time >= start_time]
    if not eligible:
        return 0.0
    return sum(1 for s in eligible if s.report.legitimate) / len(eligible)
