"""Group quality and stability metrics (experiments E2, E4, E5).

Two families of measurements:

* *partition quality* at a sampled instant: number of groups, isolated nodes,
  group sizes and diameters — what the clusterhead baselines optimise;
* *stability* across samples: membership churn (how many (node, lost-member)
  pairs per transition) and group lifetime (how long a given composition
  survives) — what GRP optimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence

from repro.net.topology import subgraph_diameter

from .collectors import ConfigurationSample

__all__ = [
    "PartitionQuality",
    "partition_quality",
    "membership_churn",
    "average_membership_churn",
    "group_lifetimes",
    "mean_group_lifetime",
    "max_group_diameter",
]


@dataclass(frozen=True)
class PartitionQuality:
    """Quality statistics of one sampled partition."""

    time: float
    group_count: int
    isolated_nodes: int
    mean_group_size: float
    largest_group: int
    max_diameter: float


def partition_quality(sample: ConfigurationSample) -> PartitionQuality:
    """Partition-quality statistics of one sample."""
    groups = set(sample.groups.values())
    sizes = [len(g) for g in groups]
    diameters = [subgraph_diameter(sample.graph, g) for g in groups if len(g) > 1]
    return PartitionQuality(
        time=sample.time,
        group_count=len(groups),
        isolated_nodes=sum(1 for s in sizes if s == 1),
        mean_group_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        largest_group=max(sizes) if sizes else 0,
        max_diameter=max(diameters) if diameters else 0.0,
    )


def max_group_diameter(samples: Sequence[ConfigurationSample]) -> float:
    """Largest group diameter observed across all samples (safety headline of E2)."""
    worst = 0.0
    for sample in samples:
        quality = partition_quality(sample)
        worst = max(worst, quality.max_diameter)
    return worst


def membership_churn(previous: ConfigurationSample, current: ConfigurationSample) -> int:
    """Number of (node, lost-member) pairs between two samples.

    For every node, members of its previous group that are no longer in its
    current group count as churn.  Baselines that recompute clusters from
    scratch exhibit high churn under mobility even when the topology barely
    changed; GRP's continuity keeps it near zero.
    """
    churn = 0
    for node, prev_group in previous.groups.items():
        new_group = current.groups.get(node, frozenset({node}))
        churn += len(prev_group - new_group)
    return churn


def average_membership_churn(samples: Sequence[ConfigurationSample]) -> float:
    """Mean churn per transition (0 when fewer than two samples)."""
    if len(samples) < 2:
        return 0.0
    total = sum(membership_churn(a, b) for a, b in zip(samples, samples[1:]))
    return total / (len(samples) - 1)


def group_lifetimes(samples: Sequence[ConfigurationSample]) -> List[float]:
    """Lifetimes of every multi-member group composition observed.

    A group composition is "alive" while it appears identically in consecutive
    samples; its lifetime is the span between its first and last consecutive
    appearance.  Singleton groups are ignored (every isolated node would
    otherwise count as an immortal group).
    """
    lifetimes: List[float] = []
    alive: Dict[FrozenSet[Hashable], float] = {}
    previous_time = None
    for sample in samples:
        current = {g for g in set(sample.groups.values()) if len(g) > 1}
        # Close groups that disappeared.
        for group in list(alive):
            if group not in current:
                start = alive.pop(group)
                end = previous_time if previous_time is not None else start
                lifetimes.append(max(0.0, end - start))
        # Open newly appeared groups.
        for group in current:
            alive.setdefault(group, sample.time)
        previous_time = sample.time
    for group, start in alive.items():
        end = previous_time if previous_time is not None else start
        lifetimes.append(max(0.0, end - start))
    return lifetimes


def mean_group_lifetime(samples: Sequence[ConfigurationSample]) -> float:
    """Mean lifetime of multi-member group compositions (0 when none observed)."""
    lifetimes = group_lifetimes(samples)
    if not lifetimes:
        return 0.0
    return sum(lifetimes) / len(lifetimes)
