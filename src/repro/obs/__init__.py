"""Zero-cost-when-disabled runtime observability.

Public surface:

* :func:`current` / :func:`enable` / :func:`disable` / :func:`observing` —
  the process-local runtime switch.  Off by default; components capture
  ``current()`` once at construction and guard hot paths with a single
  attribute check, so a disabled run performs no observation work at all.
* :class:`ObsContext` — one observed run: a :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms plus sim-time-correlated span
  statistics, exportable as a JSON blob or a ``metrics.jsonl`` file.
* :func:`profiling` — opt-in cProfile wrapper for ``--profile``.

Invariants (pinned by ``tests/test_obs.py`` and the replay-determinism
matrix): the obs layer never consumes RNG, never schedules or reorders
events, and keeps wall-clock readings out of sim-visible state — enabling it
leaves a seeded run bit-identical.
"""

from .context import (ObsContext, Span, current, disable, enable, observing)
from .metrics import (Counter, DEFAULT_WALL_NS_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .profile import profile_summary, profiling
from .spans import SpanRecord, SpanStats

__all__ = [
    "ObsContext",
    "Span",
    "current",
    "enable",
    "disable",
    "observing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_WALL_NS_BUCKETS",
    "SpanRecord",
    "SpanStats",
    "profiling",
    "profile_summary",
]
