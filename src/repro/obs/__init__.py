"""Zero-cost-when-disabled runtime observability.

Public surface:

* :func:`current` / :func:`enable` / :func:`disable` / :func:`observing` —
  the process-local runtime switch.  Off by default; components capture
  ``current()`` once at construction and guard hot paths with a single
  attribute check, so a disabled run performs no observation work at all.
* :class:`ObsContext` — one observed run: a :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms, sim-time-correlated span
  statistics and a protocol :class:`EventStream` (group lifecycle, predicate
  violations, convergence milestones), exportable as a JSON blob or a
  ``metrics.jsonl`` file.
* :meth:`ObsContext.merge` / :func:`merge_export_blobs` — fold per-shard or
  per-task observations into one aggregate (counters add, histograms fold
  element-wise, record windows interleave in ``(sim_time, seq)`` order).
* :func:`profiling` — opt-in cProfile wrapper for ``--profile``.

Invariants (pinned by ``tests/test_obs.py`` and the replay-determinism
matrix): the obs layer never consumes RNG, never schedules or reorders
events, and keeps wall-clock readings out of sim-visible state — enabling it
leaves a seeded run bit-identical.
"""

from .context import (ObsContext, Span, current, disable, enable,
                      merge_export_blobs, observing, write_blob_jsonl)
from .events import EventStream, ObsEvent
from .metrics import (Counter, DEFAULT_WALL_NS_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .profile import profile_summary, profiling
from .spans import SpanRecord, SpanStats

__all__ = [
    "ObsContext",
    "Span",
    "current",
    "enable",
    "disable",
    "observing",
    "merge_export_blobs",
    "write_blob_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_WALL_NS_BUCKETS",
    "EventStream",
    "ObsEvent",
    "SpanRecord",
    "SpanStats",
    "profiling",
    "profile_summary",
]
