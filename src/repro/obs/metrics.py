"""Hierarchical metrics registry: counters, gauges, fixed-bucket histograms.

Instrument names are dotted paths (``"sim.events"``, ``"topology.csr_rebuild"``)
grouped purely by convention — the registry itself is one flat dict, so lookups
stay O(1) and exports render the hierarchy by sorting names.

Determinism contract (the reason this module exists instead of a third-party
metrics client): instruments are **observation-only state**.  They draw no
randomness, schedule no events, iterate no unordered containers while
exporting (names are sorted), and never feed a value back into anything the
simulation reads — so enabling them cannot perturb a seeded run.  Wall-clock
readings belong to span recording (:mod:`repro.obs.spans`), never to registry
values consumed by simulation code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_WALL_NS_BUCKETS"]

#: Default histogram bounds for wall-clock durations in nanoseconds:
#: 1 µs .. 10 s in decades, a fixed ladder so exports are comparable across
#: runs and machines without any adaptive re-bucketing.
DEFAULT_WALL_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (bounds are upper-inclusive, plus overflow).

    ``counts[i]`` counts observations ``<= bounds[i]`` (and greater than the
    previous bound); ``counts[-1]`` is the overflow bucket.  Bounds are fixed
    at construction — no adaptive resizing, so two runs observing the same
    values export identical bucket vectors.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_WALL_NS_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Element-wise fold of ``other`` (bounds must match exactly)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def as_dict(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.total, "count": self.count}


class MetricsRegistry:
    """Flat name -> instrument store with get-or-create accessors.

    An instrument's kind is pinned by its first registration; re-registering
    the same name with a different kind (or different histogram bounds) is a
    programming error and raises immediately.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif type(instrument) is not kind:
            raise TypeError(f"instrument {name!r} already registered as "
                            f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_WALL_NS_BUCKETS) -> Histogram:
        histogram = self._get(name, Histogram, lambda: Histogram(bounds))
        if histogram.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"histogram {name!r} already registered with "
                             f"different bounds")
        return histogram

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (shard exports -> one registry).

        Counters add, histograms fold element-wise (same-bounds required),
        gauges take the incoming value (last-write-wins, matching their live
        semantics when shards are folded in order).  A name registered with a
        different kind on the two sides is a programming error and raises via
        the same kind-pin check the accessors use.
        """
        for name in sorted(other._instruments):
            instrument = other._instruments[name]
            if type(instrument) is Counter:
                self.counter(name).inc(instrument.value)
            elif type(instrument) is Gauge:
                self.gauge(name).set(instrument.value)
            else:
                self.histogram(name, instrument.bounds).merge(instrument)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """All registered names, sorted (export order)."""
        return sorted(self._instruments)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.

        Names are sorted within each kind, so the export is deterministic for
        a deterministic sequence of observations.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if type(instrument) is Counter:
                counters[name] = instrument.value
            elif type(instrument) is Gauge:
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.as_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
