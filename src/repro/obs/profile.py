"""cProfile helpers for per-run / per-campaign-task profiling.

Profiling is orthogonal to the metrics layer: it uses the stdlib profiler, is
strictly opt-in (``--profile``), and dumps standard ``.prof`` files that
``python -m pstats`` / snakeviz-style viewers understand.  Like the rest of
the obs layer it never touches simulation state — the profiler observes the
interpreter, not the run.
"""

from __future__ import annotations

import cProfile
import contextlib
import io
import pstats
from typing import Iterator, Optional

__all__ = ["profiling", "profile_summary"]


@contextlib.contextmanager
def profiling(path: Optional[str]) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block and dump stats to ``path`` (``.prof``).

    ``path=None`` disables profiling entirely (yields ``None``), so call
    sites can wrap unconditionally::

        with profiling(profile_path):
            run_experiment(...)
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)


def profile_summary(path: str, top: int = 15) -> str:
    """Human-readable top-functions table for a dumped ``.prof`` file."""
    buffer = io.StringIO()
    stats = pstats.Stats(path, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()
