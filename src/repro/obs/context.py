"""The observation context: registry + spans + export, and the runtime switch.

One :class:`ObsContext` describes one observed run (a single experiment, one
campaign task, a benchmark).  Components capture the *current* context exactly
once, at construction time (:func:`current` returns ``None`` when observability
is off), and their hot paths guard every observation behind a single
``if self._obs is not None`` attribute check — the same zero-cost-when-disabled
trick the delivery pipeline uses for ``is_app_payload``.  With observability
off there is no registry lookup, no clock read, no allocation anywhere on a
hot path (``tests/test_obs.py`` pins that contract with a sentinel context
that raises on any touch).

Enabling is process-local and scoped::

    with observing() as obs:
        ...build simulator / network / run experiment...
    blob = obs.export()

Campaign workers enable a fresh context around each task and persist the
export through the result store; the CLI's ``--obs`` / ``--obs-out`` flags do
the same for single runs.

Determinism: the context never consumes RNG, never schedules or reorders
events, and keeps wall-clock readings strictly inside observation state —
enabling it must not (and, per the replay suite, does not) change a single
delivered byte of a seeded run.
"""

from __future__ import annotations

import contextlib
import json
import time
import tracemalloc
from typing import Any, Dict, Iterator, Optional

from .events import DEFAULT_MAX_EVENT_RECORDS, EventStream, iter_event_lines
from .metrics import MetricsRegistry
from .spans import SpanStats, _nearest_rank

__all__ = ["ObsContext", "Span", "current", "enable", "disable", "observing",
           "merge_export_blobs", "write_blob_jsonl"]

#: Default bound on stored raw records per span name (aggregates stay exact).
DEFAULT_MAX_SPAN_RECORDS = 1024


class Span:
    """Context-manager handle for one timed region.

    ``with obs.span("topology.csr_rebuild", now) as sp: ...`` — payload counts
    discovered mid-region are attached with :meth:`add`.
    """

    __slots__ = ("_obs", "_name", "_sim_time", "_counts", "_t0")

    def __init__(self, obs: "ObsContext", name: str, sim_time: float,
                 counts: Optional[Dict[str, int]]):
        self._obs = obs
        self._name = name
        self._sim_time = sim_time
        self._counts = counts

    def add(self, **counts: int) -> None:
        """Attach payload counts (merged over any passed at entry)."""
        if self._counts is None:
            self._counts = dict(counts)
        else:
            self._counts.update(counts)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._obs.record_span(self._name, self._sim_time, self._t0, self._counts)


class ObsContext:
    """Metrics registry + span recorder for one observed run.

    Parameters
    ----------
    max_span_records:
        Sliding-window bound on raw records kept per span name (0 keeps only
        aggregates).
    track_heap:
        Start :mod:`tracemalloc` for the context's lifetime and export the
        peak traced heap.  Opt-in: tracing slows allocation-heavy runs
        noticeably, which is why it is not part of plain ``--obs``.
    """

    __slots__ = ("registry", "max_span_records", "spans", "events", "_seq",
                 "_track_heap", "_heap_peak", "_started_tracemalloc")

    def __init__(self, max_span_records: int = DEFAULT_MAX_SPAN_RECORDS,
                 track_heap: bool = False,
                 max_event_records: int = DEFAULT_MAX_EVENT_RECORDS):
        self.registry = MetricsRegistry()
        self.max_span_records = int(max_span_records)
        self.spans: Dict[str, SpanStats] = {}
        self.events = EventStream(max_event_records)
        self._seq = 0
        self._track_heap = bool(track_heap)
        self._heap_peak: Optional[int] = None
        self._started_tracemalloc = False

    # ---------------------------------------------------------------- clock

    #: Exposed so instrumented call sites can read one timestamp themselves
    #: (``t0 = obs.clock()``) and hand it to :meth:`record_span` — cheaper
    #: than a context manager in per-broadcast paths.
    clock = staticmethod(time.perf_counter_ns)

    # ---------------------------------------------------------------- spans

    def span(self, name: str, sim_time: float = 0.0, **counts: int) -> Span:
        """Context manager timing one region (coarse paths)."""
        return Span(self, name, sim_time, dict(counts) if counts else None)

    def record_span(self, name: str, sim_time: float, t0_ns: int,
                    counts: Optional[Dict[str, int]] = None) -> None:
        """Record a region entered at ``t0_ns`` (from :meth:`clock`), ending now."""
        wall_ns = time.perf_counter_ns() - t0_ns
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats(name, self.max_span_records)
        seq = self._seq
        self._seq = seq + 1
        stats.observe(sim_time, seq, wall_ns, counts)

    def span_stats(self, name: str) -> Optional[SpanStats]:
        return self.spans.get(name)

    # --------------------------------------------------------------- events

    def record_event(self, kind: str, sim_time: float,
                     **payload: Any) -> None:
        """Record one protocol event (group lifecycle, predicate violation,
        convergence milestone).  Deterministic content is
        ``(kind, sim_time, seq, payload)``; the wall-clock reading is an
        annotation stripped from deterministic exports."""
        seq = self._seq
        self._seq = seq + 1
        self.events.record(kind, sim_time, seq, time.perf_counter_ns(),
                           payload or None)

    # ----------------------------------------------------------------- merge

    def merge(self, other: "ObsContext") -> None:
        """Fold another context into this one (per-shard contexts -> one run).

        Counters and histograms add, span aggregates and event counts
        combine exactly, record windows interleave in ``(sim_time, seq)``
        order, and the heap peak takes the max.  Kind-pinned instrument
        conflicts raise, same as live registration.
        """
        self.registry.merge(other.registry)
        for name in sorted(other.spans):
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = SpanStats(name, self.max_span_records)
            stats.merge(other.spans[name])
        self.events.merge(other.events)
        if other._heap_peak is not None and (
                self._heap_peak is None or other._heap_peak > self._heap_peak):
            self._heap_peak = other._heap_peak

    # ----------------------------------------------------------- heap (opt-in)

    def heap_start(self) -> None:
        """Begin peak-heap tracking (no-op unless ``track_heap``)."""
        if self._track_heap and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def heap_stop(self) -> None:
        """Capture the traced peak and stop tracking (if this context started it)."""
        if self._track_heap and tracemalloc.is_tracing():
            self._heap_peak = tracemalloc.get_traced_memory()[1]
            if self._started_tracemalloc:
                tracemalloc.stop()
                self._started_tracemalloc = False

    @property
    def heap_peak_bytes(self) -> Optional[int]:
        return self._heap_peak

    # ---------------------------------------------------------------- export

    def export(self, include_records: bool = False) -> Dict[str, Any]:
        """The whole context as one JSON-serializable blob.

        ``include_records`` inlines the raw span record windows (sizeable);
        the campaign store persists the aggregate-only form, ``to_jsonl``
        writes the full one.
        """
        blob = self.registry.as_dict()
        blob["spans"] = {name: self.spans[name].as_dict(include_records)
                         for name in sorted(self.spans)}
        # Event content is deterministic by construction (wall time is kept
        # out), so records can always ship: the blob of an observed run is a
        # pure function of the seed.
        blob["events"] = self.events.as_dict(include_records=True,
                                             include_wall=False)
        if self._heap_peak is not None:
            blob["heap_peak_bytes"] = self._heap_peak
        return blob

    def to_jsonl(self, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write the context as JSON lines: one ``meta`` line, then one line
        per instrument and per span (records included), ``type``-tagged so
        consumers can stream-filter without loading everything."""
        blob = self.export(include_records=True)
        with open(path, "w", encoding="utf-8") as handle:
            header = {"type": "meta", "schema": "repro-obs/v1"}
            if meta:
                header.update(meta)
            handle.write(json.dumps(header) + "\n")
            for kind in ("counters", "gauges"):
                for name, value in blob[kind].items():
                    handle.write(json.dumps(
                        {"type": kind[:-1], "name": name, "value": value}) + "\n")
            for name, data in blob["histograms"].items():
                handle.write(json.dumps(
                    {"type": "histogram", "name": name, **data}) + "\n")
            for name, data in blob["spans"].items():
                handle.write(json.dumps(
                    {"type": "span", "name": name, **data}) + "\n")
            summary = dict(blob["events"])
            summary.pop("records", None)
            handle.write(json.dumps(
                {"type": "event_summary", **summary}) + "\n")
            for line in iter_event_lines(self.events, include_wall=True):
                handle.write(json.dumps(line) + "\n")
            if self._heap_peak is not None:
                handle.write(json.dumps(
                    {"type": "gauge", "name": "heap.peak_bytes",
                     "value": self._heap_peak}) + "\n")


# ---------------------------------------------------------------- blob merge


def merge_export_blobs(blobs) -> Dict[str, Any]:
    """Fold already-exported blobs (dicts from :meth:`ObsContext.export`)
    into one aggregate blob — for persisted exports whose live contexts are
    gone (campaign task records, per-shard breakdowns read back from disk).

    Counters add; gauges last-write-wins; histograms fold element-wise
    (same-bounds required); span aggregates combine with percentiles
    recomputed only when record windows are present; event kind counts add
    and record lists interleave in ``(sim_time, seq)`` order.
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {},
                              "spans": {}, "events": {"count": 0, "kinds": {},
                                                      "dropped_records": 0,
                                                      "records": []}}
    heap_peak: Optional[int] = None

    def _merge_hist(into: Dict[str, Any], data: Dict[str, Any]) -> None:
        if into.get("bounds") != data.get("bounds"):
            raise ValueError("cannot merge histograms with different bounds")
        into["counts"] = [a + b for a, b in zip(into["counts"], data["counts"])]
        into["sum"] += data["sum"]
        into["count"] += data["count"]

    for blob in blobs:
        for name, value in blob.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in blob.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, data in blob.get("histograms", {}).items():
            if name not in merged["histograms"]:
                merged["histograms"][name] = json.loads(json.dumps(data))
            else:
                _merge_hist(merged["histograms"][name], data)
        for name, data in blob.get("spans", {}).items():
            into = merged["spans"].get(name)
            if into is None:
                merged["spans"][name] = json.loads(json.dumps(data))
                continue
            into["count"] += data["count"]
            into["wall_ns_total"] += data["wall_ns_total"]
            for key, pick in (("wall_ns_min", min), ("wall_ns_max", max)):
                if data.get(key) is not None:
                    into[key] = (data[key] if into.get(key) is None
                                 else pick(into[key], data[key]))
            _merge_hist(into["histogram"], data["histogram"])
            into["dropped_records"] += data["dropped_records"]
            if data.get("payload_totals"):
                totals = into.setdefault("payload_totals", {})
                for key, value in data["payload_totals"].items():
                    totals[key] = totals.get(key, 0) + value
            if "records" in into or "records" in data:
                records = sorted(into.get("records", []) + data.get("records", []),
                                 key=lambda r: (r["sim_time"], r["seq"]))
                into["records"] = records
                walls = sorted(r["wall_ns"] for r in records)
                if walls:
                    into["wall_ns_p50"] = _nearest_rank(walls, 0.50)
                    into["wall_ns_p95"] = _nearest_rank(walls, 0.95)
            else:
                into["wall_ns_p50"] = None
                into["wall_ns_p95"] = None
        events = blob.get("events")
        if events:
            target = merged["events"]
            target["count"] += events.get("count", 0)
            for kind, n in events.get("kinds", {}).items():
                target["kinds"][kind] = target["kinds"].get(kind, 0) + n
            target["dropped_records"] += events.get("dropped_records", 0)
            target["records"].extend(events.get("records", []))
        if blob.get("heap_peak_bytes") is not None:
            peak = blob["heap_peak_bytes"]
            heap_peak = peak if heap_peak is None else max(heap_peak, peak)

    merged["events"]["records"].sort(key=lambda r: (r["sim_time"], r["seq"]))
    merged["events"]["kinds"] = {k: merged["events"]["kinds"][k]
                                 for k in sorted(merged["events"]["kinds"])}
    for kind in ("counters", "gauges", "histograms", "spans"):
        merged[kind] = {name: merged[kind][name] for name in sorted(merged[kind])}
    if heap_peak is not None:
        merged["heap_peak_bytes"] = heap_peak
    return merged


def write_blob_jsonl(path: str, blob: Dict[str, Any],
                     meta: Optional[Dict[str, Any]] = None) -> None:
    """Write an already-exported blob as ``repro-obs/v1`` JSON lines.

    The file-shaped twin of :meth:`ObsContext.to_jsonl` for blobs whose live
    context is gone — merged sharded exports, campaign aggregates.  Event
    records in a blob are already wall-stripped, so the output is fully
    deterministic.
    """
    with open(path, "w", encoding="utf-8") as handle:
        header = {"type": "meta", "schema": "repro-obs/v1"}
        if meta:
            header.update(meta)
        handle.write(json.dumps(header) + "\n")
        for kind in ("counters", "gauges"):
            for name, value in blob.get(kind, {}).items():
                handle.write(json.dumps(
                    {"type": kind[:-1], "name": name, "value": value}) + "\n")
        for name, data in blob.get("histograms", {}).items():
            handle.write(json.dumps(
                {"type": "histogram", "name": name, **data}) + "\n")
        for name, data in blob.get("spans", {}).items():
            handle.write(json.dumps(
                {"type": "span", "name": name, **data}) + "\n")
        events = blob.get("events")
        if events:
            summary = {k: v for k, v in events.items() if k != "records"}
            handle.write(json.dumps({"type": "event_summary", **summary}) + "\n")
            for record in events.get("records", ()):
                handle.write(json.dumps({"type": "event", **record}) + "\n")
        if blob.get("heap_peak_bytes") is not None:
            handle.write(json.dumps(
                {"type": "gauge", "name": "heap.peak_bytes",
                 "value": blob["heap_peak_bytes"]}) + "\n")


# ------------------------------------------------------------------- runtime

#: The process-local current context (None = observability off, the default).
_CURRENT: Optional[ObsContext] = None


def current() -> Optional[ObsContext]:
    """The active context, or ``None`` when observability is disabled.

    Components call this **once, at construction time**, and cache the result
    on an instance attribute; hot paths must only ever test that attribute.
    """
    return _CURRENT


def enable(ctx: Optional[ObsContext] = None) -> ObsContext:
    """Install ``ctx`` (or a fresh context) as the current one."""
    global _CURRENT
    if ctx is None:
        ctx = ObsContext()
    _CURRENT = ctx
    ctx.heap_start()
    return ctx


def disable() -> None:
    """Turn observability off (components built afterwards observe nothing)."""
    global _CURRENT
    if _CURRENT is not None:
        _CURRENT.heap_stop()
    _CURRENT = None


@contextlib.contextmanager
def observing(ctx: Optional[ObsContext] = None, **kwargs: Any) -> Iterator[ObsContext]:
    """Scoped enable/restore: ``with observing() as obs: ...``.

    ``kwargs`` construct the fresh context when ``ctx`` is not given.  The
    previously-installed context (usually ``None``) is restored on exit, so
    nested scopes and test isolation work without bookkeeping.
    """
    global _CURRENT
    previous = _CURRENT
    installed = enable(ctx if ctx is not None else ObsContext(**kwargs))
    try:
        yield installed
    finally:
        installed.heap_stop()
        _CURRENT = previous
