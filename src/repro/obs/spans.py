"""Sim-time-correlated spans around the engine's hot paths.

A *span* is one timed execution of a named code region — CSR rebuild, a
batched channel decision, a bulk schedule — recorded as
``(sim_time, seq, wall_ns, payload_counts)``:

* ``sim_time`` — the simulated clock when the region ran, so wall-cost can be
  correlated with what the simulation was doing;
* ``seq`` — a per-context monotonic sequence number (observation order, *not*
  the simulator's event sequence — the obs layer never touches that);
* ``wall_ns`` — wall-clock nanoseconds spent in the region;
* ``payload_counts`` — small integers describing the work done (receivers
  decided, arcs rebuilt, events inserted).

Per-name aggregates (:class:`SpanStats`) are always exact: count, total /
min / max wall time, a fixed-bucket wall-time histogram and summed payload
counts.  Raw records are kept in a bounded sliding window per name (newest
win), so long runs cannot grow memory without bound; percentiles computed
from the window describe the most recent ``max_records`` executions and the
export says how many records were dropped.

Nothing here reads randomness or mutates simulation state: recording a span
is observation only, which is what makes ``obs`` safe to enable on a seeded
run (the replay-determinism suite holds the stack to that).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import DEFAULT_WALL_NS_BUCKETS, Histogram

__all__ = ["SpanRecord", "SpanStats"]


class SpanRecord:
    """One recorded execution of a named region."""

    __slots__ = ("sim_time", "seq", "wall_ns", "counts")

    def __init__(self, sim_time: float, seq: int, wall_ns: int,
                 counts: Optional[Dict[str, int]]):
        self.sim_time = sim_time
        self.seq = seq
        self.wall_ns = wall_ns
        self.counts = counts

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"sim_time": self.sim_time, "seq": self.seq,
                                   "wall_ns": self.wall_ns}
        if self.counts:
            data.update(self.counts)
        return data


def _nearest_rank(sorted_values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of an ascending sequence (clamped)."""
    index = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


class SpanStats:
    """Aggregates plus a bounded record window for one span name."""

    __slots__ = ("name", "count", "wall_ns_total", "wall_ns_min", "wall_ns_max",
                 "histogram", "count_totals", "records", "dropped")

    def __init__(self, name: str, max_records: int,
                 bounds: Sequence[float] = DEFAULT_WALL_NS_BUCKETS):
        self.name = name
        self.count = 0
        self.wall_ns_total = 0
        self.wall_ns_min: Optional[int] = None
        self.wall_ns_max = 0
        self.histogram = Histogram(bounds)
        self.count_totals: Dict[str, int] = {}
        #: Sliding window of the most recent records (``max_records=0`` keeps
        #: none — aggregates still count every execution exactly).
        self.records: Deque[SpanRecord] = deque(maxlen=max_records)
        self.dropped = 0

    def observe(self, sim_time: float, seq: int, wall_ns: int,
                counts: Optional[Dict[str, int]]) -> None:
        self.count += 1
        self.wall_ns_total += wall_ns
        if self.wall_ns_min is None or wall_ns < self.wall_ns_min:
            self.wall_ns_min = wall_ns
        if wall_ns > self.wall_ns_max:
            self.wall_ns_max = wall_ns
        self.histogram.observe(wall_ns)
        if counts:
            totals = self.count_totals
            for key, value in counts.items():
                totals[key] = totals.get(key, 0) + value
        if self.records.maxlen != 0:
            if len(self.records) == self.records.maxlen:
                self.dropped += 1
            self.records.append(SpanRecord(sim_time, seq, wall_ns, counts))
        else:
            self.dropped += 1

    # ----------------------------------------------------------------- merge

    def merge(self, other: "SpanStats") -> None:
        """Fold ``other`` into this stats object (shard exports -> one name).

        Aggregates (count, wall totals/min/max, histogram, payload totals)
        combine exactly; the record windows merge in ``(sim_time, seq)``
        order and re-trim to this window's bound, newest win, with trimmed
        entries accounted as dropped.
        """
        self.count += other.count
        self.wall_ns_total += other.wall_ns_total
        if other.wall_ns_min is not None and (
                self.wall_ns_min is None or other.wall_ns_min < self.wall_ns_min):
            self.wall_ns_min = other.wall_ns_min
        if other.wall_ns_max > self.wall_ns_max:
            self.wall_ns_max = other.wall_ns_max
        self.histogram.merge(other.histogram)
        for key, value in other.count_totals.items():
            self.count_totals[key] = self.count_totals.get(key, 0) + value
        self.dropped += other.dropped
        if self.records.maxlen == 0:
            self.dropped += len(other.records)
            return
        merged = sorted(list(self.records) + list(other.records),
                        key=lambda r: (r.sim_time, r.seq))
        overflow = len(merged) - self.records.maxlen
        if overflow > 0:
            self.dropped += overflow
            merged = merged[overflow:]
        self.records = deque(merged, maxlen=self.records.maxlen)

    # ------------------------------------------------------------- reporting

    def percentile_ns(self, fraction: float) -> Optional[int]:
        """Nearest-rank percentile of the record *window* (None when empty).

        Over the most recent ``max_records`` executions only; ``dropped``
        says how many earlier records fell out of the window.
        """
        if not self.records:
            return None
        return _nearest_rank(sorted(r.wall_ns for r in self.records), fraction)

    def as_dict(self, include_records: bool = False) -> Dict[str, object]:
        data: Dict[str, object] = {
            "count": self.count,
            "wall_ns_total": self.wall_ns_total,
            "wall_ns_min": self.wall_ns_min,
            "wall_ns_max": self.wall_ns_max,
            "wall_ns_p50": self.percentile_ns(0.50),
            "wall_ns_p95": self.percentile_ns(0.95),
            "histogram": self.histogram.as_dict(),
            "dropped_records": self.dropped,
        }
        if self.count_totals:
            data["payload_totals"] = {k: self.count_totals[k]
                                      for k in sorted(self.count_totals)}
        if include_records:
            data["records"] = [record.as_dict() for record in self.records]
        return data


def span_table(spans: Dict[str, SpanStats]) -> List[Tuple[str, Dict[str, object]]]:
    """(name, summary dict) pairs sorted by name (deterministic export order)."""
    return [(name, spans[name].as_dict()) for name in sorted(spans)]
