"""Protocol-level event stream: the third obs pillar next to metrics and spans.

An *event* is one qualitative protocol occurrence — a group forming, a head
change, a predicate violation, a convergence milestone — recorded as
``(kind, sim_time, seq, payload)`` plus a wall-clock annotation:

* ``kind`` — dotted event type (``"group.merged"``, ``"predicate.agreement_violation"``,
  ``"convergence.first_legitimate"``); the stream keeps exact per-kind counts
  even after the record window drops old entries;
* ``sim_time`` / ``seq`` — simulated clock and the context's monotonic
  observation sequence; together they give the canonical stream order;
* ``payload`` — small JSON-serializable facts about the occurrence (node ids
  as strings, group sizes, violation counts);
* ``wall_ns`` — wall-clock annotation only.  The *deterministic* content of an
  event is ``(kind, sim_time, seq, payload)``; exports strip ``wall_ns``
  unless explicitly asked for it, so two bit-identical runs produce
  bit-identical event exports.

Like spans, raw records live in a bounded sliding window (newest win) while
per-kind counts stay exact, so long churny runs cannot grow memory without
bound.  Nothing here reads randomness or touches simulation state: recording
an event is observation only, which is what keeps ``--obs`` replay-safe.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = ["ObsEvent", "EventStream", "DEFAULT_MAX_EVENT_RECORDS"]

#: Default bound on stored raw event records (per-kind counts stay exact).
DEFAULT_MAX_EVENT_RECORDS = 4096


class ObsEvent:
    """One recorded protocol occurrence."""

    __slots__ = ("kind", "sim_time", "seq", "wall_ns", "payload")

    def __init__(self, kind: str, sim_time: float, seq: int, wall_ns: int,
                 payload: Optional[Dict[str, Any]]):
        self.kind = kind
        self.sim_time = sim_time
        self.seq = seq
        self.wall_ns = wall_ns
        self.payload = payload

    def sort_key(self):
        return (self.sim_time, self.seq)

    def as_dict(self, include_wall: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "sim_time": self.sim_time,
                                "seq": self.seq}
        if include_wall:
            data["wall_ns"] = self.wall_ns
        if self.payload:
            data["payload"] = self.payload
        return data


class EventStream:
    """Exact per-kind counts plus a bounded, sim-time-ordered record window."""

    __slots__ = ("max_records", "kind_counts", "records", "dropped")

    def __init__(self, max_records: int = DEFAULT_MAX_EVENT_RECORDS):
        self.max_records = int(max_records)
        self.kind_counts: Dict[str, int] = {}
        #: Sliding window of the most recent events (``max_records=0`` keeps
        #: none — per-kind counts still count every event exactly).
        self.records: Deque[ObsEvent] = deque(maxlen=self.max_records)
        self.dropped = 0

    @property
    def count(self) -> int:
        return sum(self.kind_counts.values())

    def record(self, kind: str, sim_time: float, seq: int, wall_ns: int,
               payload: Optional[Dict[str, Any]] = None) -> None:
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if self.records.maxlen != 0:
            if len(self.records) == self.records.maxlen:
                self.dropped += 1
            self.records.append(ObsEvent(kind, sim_time, seq, wall_ns, payload))
        else:
            self.dropped += 1

    def events_of(self, kind: str) -> List[ObsEvent]:
        """Windowed records of one kind, in canonical stream order."""
        return sorted((e for e in self.records if e.kind == kind),
                      key=ObsEvent.sort_key)

    # ----------------------------------------------------------------- merge

    def merge(self, other: "EventStream") -> None:
        """Fold ``other`` into this stream (shard exports -> one stream).

        Per-kind counts add exactly; record windows are merged in canonical
        ``(sim_time, seq)`` order and re-trimmed to this stream's bound,
        keeping the *latest* events and accounting the rest as dropped —
        the same newest-win policy the live window applies.
        """
        for kind, n in other.kind_counts.items():
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + n
        self.dropped += other.dropped
        if self.records.maxlen == 0:
            self.dropped += len(other.records)
            return
        merged = sorted(list(self.records) + list(other.records),
                        key=ObsEvent.sort_key)
        overflow = len(merged) - self.records.maxlen
        if overflow > 0:
            self.dropped += overflow
            merged = merged[overflow:]
        self.records = deque(merged, maxlen=self.max_records)

    # ------------------------------------------------------------- reporting

    def ordered_records(self) -> List[ObsEvent]:
        """The window in canonical ``(sim_time, seq)`` order."""
        return sorted(self.records, key=ObsEvent.sort_key)

    def as_dict(self, include_records: bool = False,
                include_wall: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "count": self.count,
            "kinds": {k: self.kind_counts[k] for k in sorted(self.kind_counts)},
            "dropped_records": self.dropped,
        }
        if include_records:
            data["records"] = [event.as_dict(include_wall)
                               for event in self.ordered_records()]
        return data


def iter_event_lines(stream: EventStream,
                     include_wall: bool = True) -> Iterable[Dict[str, Any]]:
    """``type``-tagged JSONL dicts for every windowed event, stream order."""
    for event in stream.ordered_records():
        line = {"type": "event"}
        line.update(event.as_dict(include_wall))
        yield line
