"""Discrete-event simulation kernel.

The GRP protocol (and every other protocol in this repository) runs on top of a
small, deterministic, seeded discrete-event simulator.  The design follows the
classic event-list approach:

* the :class:`Simulator` keeps a priority queue of :class:`Event` objects keyed
  by ``(time, sequence_number)`` so that ties are broken deterministically in
  scheduling order;
* callbacks registered with :meth:`Simulator.schedule` are invoked with the
  simulator clock already advanced to the event time;
* events can be cancelled through the :class:`EventHandle` returned at
  scheduling time (cancellation is O(1): the event is flagged and skipped when
  popped).

The simulator also owns the root random generator (``numpy.random.Generator``)
from which all stochastic components (mobility, channel loss, jitter) derive
sub-streams, making every run fully reproducible from a single seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..obs import current as _obs_current

__all__ = ["Event", "EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``; the payload fields do not take part
    in comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    done: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle allowing cancellation and inspection of a scheduled event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: Optional["Simulator"] = None):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Scheduled activation time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; it will be silently skipped when reached."""
        if not self._event.cancelled:
            self._event.cancelled = True
            if self._sim is not None and not self._event.done:
                self._sim._pending -= 1


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed of the root random generator.  Two simulators created with the
        same seed and fed the same scheduling sequence produce identical runs.
    start_time:
        Initial value of the simulated clock (defaults to ``0.0``).
    """

    def __init__(self, seed: Optional[int] = None, start_time: float = 0.0):
        self._now: float = float(start_time)
        self._queue: List[Event] = []
        # A plain int, not itertools.count(): counts don't pickle, and the
        # sharded snapshot-restore path serializes built simulators wholesale.
        self._next_seq = 0
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._processed = 0
        self._pending = 0
        self._running = False
        # Observability is captured once at construction; when disabled the
        # hot paths below pay exactly one attribute load + None test.
        obs = _obs_current()
        self._obs = obs
        self._obs_events = obs.registry.counter("sim.events") if obs else None
        self._obs_scheduled = obs.registry.counter("sim.scheduled") if obs else None

    def recapture_obs(self) -> None:
        """Re-point the cached obs handles at the process-local context.

        The capture-once contract pins observation scope at construction;
        worlds that cross a process boundary after construction (sharded
        snapshot restore) carry the builder's handles and call this so the
        restoring worker's own context observes the run.
        """
        obs = _obs_current()
        self._obs = obs
        self._obs_events = obs.registry.counter("sim.events") if obs else None
        self._obs_scheduled = obs.registry.counter("sim.scheduled") if obs else None

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def rng(self) -> np.random.Generator:
        """Root random generator of the run."""
        return self._rng

    @property
    def seed(self) -> Optional[int]:
        """Seed the simulator was created with (``None`` for entropy-based)."""
        return self._seed

    @property
    def processed_events(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events currently scheduled.

        Maintained as a live counter (incremented on scheduling, decremented on
        cancellation and execution) so reading it is O(1) — the previous
        implementation scanned the whole event queue on every call.
        """
        return self._pending

    def spawn_rng(self) -> np.random.Generator:
        """Create an independent child generator (stable given call order)."""
        return np.random.default_rng(self._rng.integers(0, 2**63 - 1))

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any,
                    **kwargs: Any) -> EventHandle:
        """Schedule ``callback`` at the absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before current time {self._now}")
        seq = self._next_seq
        self._next_seq += 1
        event = Event(time=float(time), seq=seq, callback=callback,
                      args=args, kwargs=kwargs)
        heapq.heappush(self._queue, event)
        self._pending += 1
        if self._obs_scheduled is not None:
            self._obs_scheduled.inc()
        return EventHandle(event, self)

    def schedule_many(self, delays: Sequence[float], callback: Callable[..., Any],
                      args_seq: Sequence[tuple]) -> List[EventHandle]:
        """Bulk-schedule ``callback(*args)`` for each ``(delay, args)`` pair.

        Equivalent to ``[self.schedule(d, callback, *a) for d, a in
        zip(delays, args_seq)]`` — same contiguous sequence numbers in the same
        order, so executions interleave identically — but inserted through one
        amortized path: when the batch is large relative to the heap, the
        events are appended and the heap is rebuilt with a single
        ``heapify`` (O(n + m)) instead of m sifting pushes (O(m log n)).
        Pop order only depends on the total ``(time, seq)`` order, never on the
        heap's internal layout, so both insertion strategies replay
        identically.  All delays are validated before any event is inserted.
        """
        if len(delays) != len(args_seq):
            raise SimulationError("schedule_many needs one args tuple per delay")
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        now = self._now
        for delay in delays:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq0 = self._next_seq
        events = [Event(time=float(now + delay), seq=seq0 + k,
                        callback=callback, args=tuple(args))
                  for k, (delay, args) in enumerate(zip(delays, args_seq))]
        self._next_seq = seq0 + len(events)
        if len(self._queue) < 4 * len(events):
            self._queue.extend(events)
            heapq.heapify(self._queue)
        else:
            for event in events:
                heapq.heappush(self._queue, event)
        self._pending += len(events)
        if obs is not None:
            self._obs_scheduled.inc(len(events))
            obs.record_span("sim.schedule_many", now, t0, {"events": len(events)})
        return [EventHandle(event, self) for event in events]

    def cancel(self, handle: EventHandle) -> None:
        """Cancel an event previously returned by :meth:`schedule`."""
        handle.cancel()

    # -------------------------------------------------------------- execution

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def advance_clock(self, time: float) -> None:
        """Move the clock forward to ``time`` without executing anything.

        Used by synchronized-window executors (:mod:`repro.shard`) to align a
        quiet shard with the global window time before applying remote
        deliveries inline.  Refuses to jump over pending work: advancing past
        a scheduled event would execute it with a lying clock later.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move the clock backwards ({time} < {self._now})")
        next_time = self.peek_time()
        if next_time is not None and next_time < time:
            raise SimulationError(
                f"cannot advance to {time}: event pending at {next_time}")
        self._now = float(time)

    def run_window(self, end: float, inclusive: bool = False,
                   max_events: Optional[int] = None) -> int:
        """Execute every pending event with ``time < end`` (``<= end`` when
        ``inclusive``), in ``(time, seq)`` order, and return how many ran.

        Unlike :meth:`run`, the clock is *not* advanced to ``end`` when the
        queue runs dry: conservative window synchronization
        (:mod:`repro.shard`) may still apply remote deliveries anywhere inside
        the window, so the clock must trail the last executed event.  Events
        scheduled during the window that still fall inside it are executed by
        the same call (zero-delay cascades stay local).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if (next_time > end) if inclusive else (next_time >= end):
                break
            if self.step():
                executed += 1
        return executed

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.done = True
            self._pending -= 1
            self._now = event.time
            obs = self._obs
            if obs is None:
                event.callback(*event.args, **event.kwargs)
            else:
                t0 = obs.clock()
                event.callback(*event.args, **event.kwargs)
                obs.record_span("sim.event_pop", event.time, t0)
                self._obs_events.inc()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled exactly
            at ``until`` are executed.  ``None`` runs until the queue is empty.
        max_events:
            Safety bound on the number of executed events.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        obs = self._obs
        t0 = obs.clock() if obs is not None else 0
        self._running = True
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = float(until)
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
            if obs is not None:
                obs.record_span("sim.run", self._now, t0, {"events": executed})
        return executed

    def run_until_empty(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)

    # ------------------------------------------------------------------ misc

    def call_every(self, interval: float, callback: Callable[..., Any], *args: Any,
                   start: Optional[float] = None, **kwargs: Any) -> EventHandle:
        """Schedule ``callback`` periodically every ``interval`` time units.

        The returned handle cancels the *next* occurrence only; use a
        :class:`repro.sim.timers.PeriodicTimer` for richer control.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        first = self._now + (interval if start is None else max(0.0, start - self._now))

        state = {"handle": None, "stopped": False}

        def _fire() -> None:
            if state["stopped"]:
                return
            callback(*args, **kwargs)
            state["handle"] = self.schedule(interval, _fire)

        state["handle"] = self.schedule_at(first, _fire)

        class _PeriodicHandle(EventHandle):
            def __init__(self):  # noqa: D401 - thin wrapper
                pass

            @property
            def time(self) -> float:
                return state["handle"].time if state["handle"] else float("nan")

            @property
            def cancelled(self) -> bool:
                return state["stopped"]

            def cancel(self) -> None:
                state["stopped"] = True
                if state["handle"] is not None:
                    state["handle"].cancel()

        return _PeriodicHandle()

    def drain(self) -> Iterable[Event]:
        """Remove and return every pending event (used by tests)."""
        events = [e for e in self._queue if not e.cancelled]
        for event in self._queue:
            # Mark drained events done so a late EventHandle.cancel() does not
            # decrement the pending counter below zero.
            event.done = True
        self._queue.clear()
        self._pending = 0
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
                f"processed={self._processed})")
