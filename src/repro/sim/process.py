"""Base class for simulated protocol processes.

A :class:`Process` is anything that lives on a node of the network and reacts
to events: message receptions, timer expirations, activation / deactivation
(churn).  The GRP node (:class:`repro.core.node.GRPNode`) and the baseline
clustering processes all derive from it.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

__all__ = ["Process"]


class Process:
    """A protocol instance attached to one network node.

    Subclasses override the ``on_*`` hooks.  The network calls
    :meth:`deliver` when a broadcast reaches the node; the process sends
    messages through ``self.network.broadcast(self.node_id, payload)``.
    """

    def __init__(self, node_id: Any):
        self.node_id = node_id
        self.sim: Optional[Simulator] = None
        self.network: Optional["Network"] = None
        self._active = True
        self._started = False
        #: Application-message hook (set by the traffic layer): payloads that
        #: carry the ``is_app_payload`` marker are routed here instead of
        #: :meth:`on_message`, so application traffic shares the node and the
        #: delivery pipeline with the protocol without touching its handlers.
        self.app_handler: Optional[Any] = None

    # ------------------------------------------------------------- lifecycle

    def bind(self, sim: Simulator, network: "Network") -> None:
        """Attach the process to a simulator and a network (called by the network)."""
        self.sim = sim
        self.network = network

    def start(self) -> None:
        """Start the process (idempotent); calls :meth:`on_start` once."""
        if self._started:
            return
        if self.sim is None:
            raise RuntimeError("process must be bound to a simulator before starting")
        self._started = True
        self.on_start()

    @property
    def active(self) -> bool:
        """Whether the node is currently active (powered on)."""
        return self._active

    def activate(self) -> None:
        """Turn the node on (churn support)."""
        if not self._active:
            self._active = True
            if self.network is not None:
                self.network.notify_activation_change(self.node_id, True)
            self.on_activate()

    def deactivate(self) -> None:
        """Turn the node off; an inactive node neither sends nor receives."""
        if self._active:
            self._active = False
            if self.network is not None:
                self.network.notify_activation_change(self.node_id, False)
            self.on_deactivate()

    # ----------------------------------------------------------------- hooks

    def on_start(self) -> None:
        """Called once when the simulation starts."""

    def on_activate(self) -> None:
        """Called when the node transitions from inactive to active."""

    def on_deactivate(self) -> None:
        """Called when the node transitions from active to inactive."""

    def on_message(self, sender: Any, payload: Any) -> None:
        """Called when a broadcast from ``sender`` is received."""

    # ------------------------------------------------------------- transport

    def deliver(self, sender: Any, payload: Any) -> None:
        """Entry point used by the network; ignores messages while inactive.

        Payloads flagged ``is_app_payload`` (application traffic, see
        :mod:`repro.traffic`) go to :attr:`app_handler` when one is
        installed; without one they fall through to :meth:`on_message` like
        any other payload (protocol processes ignore foreign payload types).
        The no-handler hot path pays a single attribute test.
        """
        if self._active:
            handler = self.app_handler
            if handler is not None and getattr(payload, "is_app_payload", False):
                handler(sender, payload)
            else:
                self.on_message(sender, payload)

    def broadcast(self, payload: Any) -> int:
        """Broadcast ``payload`` to the current vicinity; returns receiver count."""
        if not self._active:
            return 0
        if self.network is None:
            raise RuntimeError("process is not attached to a network")
        return self.network.broadcast(self.node_id, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(node_id={self.node_id!r}, active={self._active})"
