"""Structured trace recording.

Every component of the stack (channel, nodes, fault injector, metric
collectors) can emit trace records.  A record is ``(time, category, data)``.
Traces are used by tests (to assert causal behaviour), by the metrics package
(to compute message overhead) and by the examples (to print timelines).
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    data: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


class TraceRecorder:
    """Collects :class:`TraceRecord` entries and offers simple querying.

    Recording can be limited to a set of categories to keep memory bounded in
    long benchmark runs (counters are always maintained for every category).
    ``max_records`` bounds the stored history: beyond it the *oldest* records
    are dropped (a sliding window over the most recent events), while the
    per-category counters keep counting every event exactly.  Long-lived
    campaign workers rely on this so their memory stays O(max_records)
    however long the run.
    """

    #: Cap applied when a recorder is built without an explicit
    #: ``max_records``; the campaign executor sets it around each worker task
    #: so every deployment created inside the task is bounded.
    default_max_records: ClassVar[Optional[int]] = None

    def __init__(self, keep_categories: Optional[set] = None, max_records: Optional[int] = None):
        if max_records is None:
            max_records = type(self).default_max_records
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._counts: Counter = Counter()
        self._keep = keep_categories
        self._max_records = max_records
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = defaultdict(list)

    @property
    def max_records(self) -> Optional[int]:
        """The record-storage bound (``None`` means unbounded)."""
        return self._max_records

    # --------------------------------------------------------------- record

    def record(self, time: float, category: str, **data: Any) -> None:
        """Record an event of ``category`` at simulated ``time``."""
        self._counts[category] += 1
        if self._max_records == 0 and category not in self._subscribers:
            # ``max_records=0`` means "count only, store nothing": with no
            # subscriber wanting the record either, skip constructing it
            # entirely (a zero-maxlen deque would silently drop it anyway,
            # but the allocation per event is pure waste).
            return
        rec = TraceRecord(time=time, category=category, data=data)
        for callback in self._subscribers.get(category, ()):
            callback(rec)
        if self._keep is not None and category not in self._keep:
            return
        self._records.append(rec)

    def subscribe(self, category: str, callback: Callable[[TraceRecord], None]) -> None:
        """Register ``callback`` to be invoked for every record of ``category``."""
        self._subscribers[category].append(callback)

    # ---------------------------------------------------------------- query

    @property
    def records(self) -> List[TraceRecord]:
        """All stored records, in recording order."""
        return list(self._records)

    def count(self, category: Optional[str] = None) -> int:
        """Number of recorded events (of ``category`` if given, total otherwise)."""
        if category is None:
            return sum(self._counts.values())
        return self._counts.get(category, 0)

    def counts(self) -> Dict[str, int]:
        """Mapping category -> number of events."""
        return dict(self._counts)

    def filter(self, category: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None) -> List[TraceRecord]:
        """Return stored records matching ``category`` and ``predicate``."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop stored records and counters."""
        self._records.clear()
        self._counts.clear()

    # ---------------------------------------------------------------- export

    def to_jsonl(self, path: str) -> int:
        """Write the stored records as JSON lines; returns the line count.

        One ``{"time", "category", ...data}`` object per line, in recording
        order — the same shape the obs layer's ``metrics.jsonl`` uses, so the
        two files share tooling.  Only *stored* records are written (the
        sliding window / category filter applies); use :meth:`counts` for the
        exact per-category totals.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for rec in self._records:
                payload = {"time": rec.time, "category": rec.category}
                payload.update(rec.data)
                handle.write(json.dumps(payload, default=str) + "\n")
                written += 1
        return written
