"""Discrete-event simulation kernel used by the GRP reproduction."""

from .engine import Event, EventHandle, SimulationError, Simulator
from .process import Process
from .randomness import SeedSequenceFactory, derive_seed, substream
from .timers import OneShotTimer, PeriodicTimer
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Process",
    "SeedSequenceFactory",
    "derive_seed",
    "substream",
    "OneShotTimer",
    "PeriodicTimer",
    "TraceRecord",
    "TraceRecorder",
]
