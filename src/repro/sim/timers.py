"""Timer helpers built on top of the simulation kernel.

The GRP protocol drives everything with two timers per node (the computation
timer ``Tc`` with period τ1 and the send timer ``Ts`` with period τ2 ≤ τ1, see
paper Section 4.3).  :class:`PeriodicTimer` models such timers, including an
optional uniform jitter which desynchronizes nodes — exactly what happens on
real radios and what the fair-channel hypothesis of the paper tolerates.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .engine import EventHandle, SimulationError, Simulator

__all__ = ["OneShotTimer", "PeriodicTimer"]


class OneShotTimer:
    """A restartable one-shot timer.

    ``start`` schedules the callback after ``duration``; ``restart`` cancels any
    pending expiration and schedules a fresh one (this mirrors ``restart timer``
    in the paper's pseudo-code).
    """

    def __init__(self, sim: Simulator, duration: float, callback: Callable[[], None]):
        if duration <= 0:
            raise SimulationError("timer duration must be positive")
        self._sim = sim
        self._duration = float(duration)
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def duration(self) -> float:
        """Configured expiration delay."""
        return self._duration

    @duration.setter
    def duration(self, value: float) -> None:
        if value <= 0:
            raise SimulationError("timer duration must be positive")
        self._duration = float(value)

    @property
    def pending(self) -> bool:
        """Whether an expiration is currently scheduled."""
        return self._handle is not None and not self._handle.cancelled

    def start(self) -> None:
        """Schedule (or reschedule) the expiration after ``duration``."""
        self.restart()

    def restart(self) -> None:
        """Cancel any pending expiration and schedule a new one."""
        self.cancel()
        self._handle = self._sim.schedule(self._duration, self._fire)

    def cancel(self) -> None:
        """Cancel the pending expiration, if any."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTimer:
    """A periodic timer with optional per-period jitter.

    Parameters
    ----------
    sim:
        Owning simulator.
    period:
        Nominal period between expirations.
    callback:
        Invoked (without arguments) at each expiration.
    jitter:
        If > 0, each period is drawn uniformly from
        ``[period * (1 - jitter), period * (1 + jitter)]``.
    rng:
        Random generator used for jitter (defaults to the simulator's root rng).
    phase:
        Delay before the first expiration.  Defaults to one (jittered) period.
    """

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], None],
                 jitter: float = 0.0, rng: Optional[np.random.Generator] = None,
                 phase: Optional[float] = None):
        if period <= 0:
            raise SimulationError("timer period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng if rng is not None else sim.rng
        self._phase = phase
        self._handle: Optional[EventHandle] = None
        self._running = False
        self._expirations = 0

    @property
    def period(self) -> float:
        """Nominal period."""
        return self._period

    @property
    def running(self) -> bool:
        """Whether the timer is active."""
        return self._running

    @property
    def expirations(self) -> int:
        """Number of expirations fired so far."""
        return self._expirations

    def _next_delay(self) -> float:
        if self._jitter == 0.0:
            return self._period
        low = self._period * (1.0 - self._jitter)
        high = self._period * (1.0 + self._jitter)
        return float(self._rng.uniform(low, high))

    def start(self) -> None:
        """Start the timer (idempotent)."""
        if self._running:
            return
        self._running = True
        delay = self._phase if self._phase is not None else self._next_delay()
        self._handle = self._sim.schedule(max(0.0, delay), self._fire)

    def stop(self) -> None:
        """Stop the timer; pending expirations are cancelled."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._expirations += 1
        self._callback()
        if self._running:
            self._handle = self._sim.schedule(self._next_delay(), self._fire)
