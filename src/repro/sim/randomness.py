"""Seeded, splittable random streams.

Reproducibility is a first-class requirement of the experiment harness: every
experiment row in EXPERIMENTS.md must be regenerable exactly.  This module
provides a tiny helper to derive independent named sub-streams from a master
seed, so that e.g. the mobility stream and the channel-loss stream do not
interfere (adding a stochastic component never perturbs the others).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = ["derive_seed", "substream", "SeedSequenceFactory"]


def derive_seed(master_seed: Optional[int], name: str) -> int:
    """Derive a deterministic 63-bit seed for the sub-stream ``name``.

    The derivation hashes ``(master_seed, name)`` with SHA-256 so that streams
    with different names are statistically independent and stable across runs
    and platforms.
    """
    base = "entropy" if master_seed is None else str(int(master_seed))
    digest = hashlib.sha256(f"{base}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def substream(master_seed: Optional[int], name: str) -> np.random.Generator:
    """Return an independent generator for the named sub-stream."""
    if master_seed is None:
        return np.random.default_rng()
    return np.random.default_rng(derive_seed(master_seed, name))


class SeedSequenceFactory:
    """Factory handing out named sub-streams of a master seed.

    Examples
    --------
    >>> factory = SeedSequenceFactory(42)
    >>> mobility_rng = factory.stream("mobility")
    >>> channel_rng = factory.stream("channel")
    """

    def __init__(self, master_seed: Optional[Union[int, np.integer]] = None):
        self._master_seed = None if master_seed is None else int(master_seed)

    @property
    def master_seed(self) -> Optional[int]:
        """The master seed (``None`` means OS entropy)."""
        return self._master_seed

    def seed_for(self, name: str) -> int:
        """Deterministic seed derived for ``name``."""
        return derive_seed(self._master_seed, name)

    def stream(self, name: str) -> np.random.Generator:
        """Independent generator for the named sub-stream."""
        return substream(self._master_seed, name)
