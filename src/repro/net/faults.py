"""Transient-fault injection.

Self-stabilization is about recovering from *arbitrary* transient faults:
corrupted memories and corrupted messages.  The paper treats topology changes
as transient faults too, but those are exercised by the mobility models; this
module provides the memory/message corruption used by the stabilization
experiments (E6) and the recovery tests, plus :meth:`FaultInjector.partition`
/ :meth:`FaultInjector.heal` power-off/power-on batches for campaign-driven
churn sequences.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.sim.trace import TraceRecorder

__all__ = ["FaultInjector"]


class FaultInjector:
    """Inject transient faults into GRP nodes of a network.

    The injector works against the public state-mutation API of
    :class:`repro.core.node.GRPNode` (``corrupt_state``) so it stays decoupled
    from the node internals.
    """

    def __init__(self, network, rng: Optional[np.random.Generator] = None,
                 trace: Optional[TraceRecorder] = None):
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng()
        self.trace = trace
        self.injected = 0
        self._partitioned: List[Hashable] = []

    # ----------------------------------------------------------- primitives

    def _record(self, kind: str, **data: Any) -> None:
        self.injected += 1
        if self.trace is not None:
            self.trace.record(self.network.sim.now, f"fault.{kind}", **data)

    def inject_ghost_identity(self, node_id: Hashable, ghost_id: Hashable,
                              position: int = 1) -> None:
        """Insert a non-existent identity into a node's ancestor list.

        This reproduces the initial condition of Proposition 2 (Exist): the
        ghost must eventually disappear from every list.
        """
        node = self.network.process(node_id)
        node.corrupt_state(ghost_nodes={ghost_id: position})
        self._record("ghost", node=node_id, ghost=ghost_id, position=position)

    def corrupt_view(self, node_id: Hashable, fake_members: Iterable[Hashable]) -> None:
        """Force arbitrary members into a node's view (agreement violation)."""
        node = self.network.process(node_id)
        node.corrupt_state(view=set(fake_members))
        self._record("view", node=node_id, members=sorted(map(repr, fake_members)))

    def corrupt_priority(self, node_id: Hashable, value: int) -> None:
        """Overwrite a node's own priority counter."""
        node = self.network.process(node_id)
        node.corrupt_state(priority=value)
        self._record("priority", node=node_id, value=value)

    def scramble_quarantines(self, node_id: Hashable, max_value: Optional[int] = None) -> None:
        """Randomize every quarantine counter of a node."""
        node = self.network.process(node_id)
        limit = max_value if max_value is not None else node.config.dmax
        node.corrupt_state(quarantine_noise=(self.rng, limit))
        self._record("quarantine", node=node_id)

    def oversized_list(self, node_id: Hashable, extra_ids: Sequence[Hashable]) -> None:
        """Make a node's list longer than Dmax + 1 (initial condition of Prop. 1)."""
        node = self.network.process(node_id)
        node.corrupt_state(append_levels=list(extra_ids))
        self._record("oversize", node=node_id, extra=len(extra_ids))

    # ------------------------------------------------------- partition/heal

    def partition(self, node_ids: Iterable[Hashable]) -> List[Hashable]:
        """Power off ``node_ids``, simulating a network partition.

        Deactivation goes through :meth:`Network.deactivate_node`, so each
        node that actually flips bumps the network's topology generation once
        (snapshot caches invalidate).  Already-inactive nodes are ignored.
        Returns the nodes that flipped, in the order given; they are
        remembered for a later no-argument :meth:`heal`.
        """
        affected: List[Hashable] = []
        for node_id in node_ids:
            if not self.network.process(node_id).active:
                continue
            self.network.deactivate_node(node_id)
            affected.append(node_id)
            if node_id not in self._partitioned:
                self._partitioned.append(node_id)
        if affected:
            self._record("partition", nodes=list(affected))
        return affected

    def heal(self, node_ids: Optional[Iterable[Hashable]] = None) -> List[Hashable]:
        """Power nodes back on after a :meth:`partition`.

        With no argument, heals every node still tracked from previous
        partitions; otherwise only the given nodes.  Each node that actually
        flips bumps the topology generation once.  Returns the nodes that
        flipped.
        """
        targets = list(self._partitioned) if node_ids is None else list(node_ids)
        healed: List[Hashable] = []
        for node_id in targets:
            if node_id in self._partitioned:
                self._partitioned.remove(node_id)
            if self.network.process(node_id).active:
                continue
            self.network.activate_node(node_id)
            healed.append(node_id)
        if healed:
            self._record("heal", nodes=list(healed))
        return healed

    # -------------------------------------------------------------- batches

    def random_memory_corruption(self, fraction: float = 0.3,
                                 ghost_pool: Optional[Sequence[Hashable]] = None,
                                 ) -> List[Hashable]:
        """Corrupt a random fraction of the nodes in one shot.

        Each selected node gets a ghost identity (when a pool is provided) and a
        scrambled quarantine table.  Returns the list of corrupted node ids.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        node_ids = list(self.network.node_ids)
        count = max(1, int(round(fraction * len(node_ids))))
        chosen_idx = self.rng.choice(len(node_ids), size=count, replace=False)
        chosen = [node_ids[i] for i in chosen_idx]
        for node_id in chosen:
            if ghost_pool:
                ghost = ghost_pool[int(self.rng.integers(0, len(ghost_pool)))]
                self.inject_ghost_identity(node_id, ghost)
            self.scramble_quarantines(node_id)
        return chosen
