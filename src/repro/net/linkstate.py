"""Incremental directed link-state cache.

Every topology snapshot used to re-test the link predicate over all candidate
pairs harvested from the spatial index, and every broadcast re-tested the
vicinity of each candidate — even though between two mobility steps only the
links of the nodes that actually *moved* can change.  This module maintains
the directed edge set ``u -> v iff radio.link_exists(u, v)`` incrementally:
the :class:`repro.net.network.Network` feeds it membership, position and
radio-mutation deltas, and the cache patches only the links of the touched
nodes (harvested from the grid-cell neighbourhood of their old and new
positions).  Broadcast candidate lists, topology snapshots and
``neighbors_of`` queries are then served from the stored adjacency without a
single distance computation.

Invariants (relied on by the network and enforced by the randomized
equivalence suite in ``tests/test_linkstate.py``):

* **Cache ≡ rebuild.**  After any sequence of ``on_insert`` / ``on_remove`` /
  ``on_move`` deltas, the stored arc set is identical to a from-scratch
  rebuild over the current positions.  Link tests go through the *exact* same
  ``radio.link_exists`` calls (same ``math.hypot`` float semantics) as the
  brute-force paths, so there is no drift at range boundaries.
* **Activity-blind.**  Links are maintained for *all* nodes, active or not —
  activation churn flips no link, so it costs the cache nothing; activity is
  filtered by the network at query time, exactly like the spatial index.
* **Determinism.**  Sorted adjacency (:meth:`out_neighbors_sorted`) orders
  receivers by node insertion order — the same order the per-receiver scan
  visits them — so stochastic channels consume their RNG streams identically
  whether the candidate list comes from the cache or from a grid query.
* **Bounded staleness = none.**  The cache never guesses: a moved node's old
  links are dropped via the stored reverse adjacency (no geometric search
  needed) and its new links are re-tested against the grid-cell
  neighbourhood of the new position, which covers every node within
  ``max_range`` in either direction.

The cache is invalidated wholesale (rebuilt by the network) when the radio is
mutated in place, since a radio mutation can flip arbitrary links without any
node moving.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Tuple

from repro.obs import current as _obs_current

from .radio import RadioModel
from .spatialindex import UniformGridIndex

__all__ = ["LinkStateCache"]


class LinkStateCache:
    """Directed edge set over node positions, maintained by deltas.

    Parameters
    ----------
    radius:
        The radio's ``max_range()`` at build time; no link can span farther,
        so the grid-cell neighbourhood of radius ``radius`` around a node
        covers all its potential link partners in either direction.
    radio:
        Link predicate provider (``link_exists``).
    positions:
        The network's *live* position mapping (shared, not copied): the
        network updates a moved node's position first, then calls
        :meth:`on_move`.
    order:
        The network's live ``node -> insertion index`` mapping, used to sort
        adjacency deterministically.
    index:
        The network's live grid index (mirrors ``positions``).
    """

    def __init__(self, radius: float, radio: RadioModel,
                 positions: Mapping[Hashable, Tuple[float, float]],
                 order: Mapping[Hashable, int],
                 index: UniformGridIndex, obs=...):
        self.radius = float(radius)
        self.radio = radio
        self._positions = positions
        self._order = order
        self.index = index
        #: node -> insertion-ordered dict of link targets (u -> v arcs).
        self._out: Dict[Hashable, Dict[Hashable, None]] = {}
        #: node -> insertion-ordered dict of link sources (v -> u arcs).
        self._in: Dict[Hashable, Dict[Hashable, None]] = {}
        #: lazily sorted out-adjacency, invalidated when the out-set changes.
        self._sorted_out: Dict[Hashable, List[Hashable]] = {}
        #: One shared inclusive link radius (or None): captured once so the
        #: drop/harvest/query paths can never branch inconsistently.  With a
        #: uniform radius every link is symmetric — the out-set *is* the
        #: symmetric neighbourhood.  A radio whose answer changes triggers a
        #: full cache replacement (mutation notify / max_range revalidation).
        self._uniform_radius = radio.uniform_link_radius()
        self._uniform = self._uniform_radius is not None
        # Built lazily by the network, possibly mid-run: the owner passes its
        # own captured context so observation scope stays pinned at network
        # construction (Ellipsis = standalone use, capture the current one).
        obs = _obs_current() if obs is ... else obs
        self._obs_moves = obs.registry.counter("topology.patch_moves") if obs else None
        self._obs_rebuilds = obs.registry.counter("topology.dict_rebuilds") if obs else None
        self.rebuild()

    # ------------------------------------------------------------ bookkeeping

    def __contains__(self, node: Hashable) -> bool:
        return node in self._out

    def __len__(self) -> int:
        return len(self._out)

    def rebuild(self) -> None:
        """Recompute every link from scratch (initial build / radio change)."""
        if self._obs_rebuilds is not None:
            self._obs_rebuilds.inc()
        self._out = {node: {} for node in self._positions}
        self._in = {node: {} for node in self._positions}
        self._sorted_out.clear()
        positions, radio = self._positions, self.radio
        if self._uniform:
            # One inclusive radius for every pair: each harvested pair is a
            # link in both directions, no predicate calls needed.
            for u, v in self.index.pairs_within(self._uniform_radius):
                self._out[u][v] = None
                self._in[v][u] = None
                self._out[v][u] = None
                self._in[u][v] = None
            return
        for u, v in self.index.pairs_within(self.radius):
            pu, pv = positions[u], positions[v]
            if radio.link_exists(u, v, pu, pv):
                self._out[u][v] = None
                self._in[v][u] = None
            if radio.link_exists(v, u, pv, pu):
                self._out[v][u] = None
                self._in[u][v] = None

    # ----------------------------------------------------------------- deltas

    def _harvest_links(self, node: Hashable,
                       pos: Tuple[float, float]) -> Tuple[Dict, Dict]:
        """(out, in) link dicts of ``node`` at ``pos``, patching peers in place.

        Uniform-radius radios take the fused path: the distance-annotated grid
        query *is* the link set (both directions), so harvesting one node's
        links costs a single cell-neighbourhood scan with one ``hypot`` per
        candidate.  Other radios re-test ``link_exists`` per candidate.
        """
        out: Dict[Hashable, None] = {}
        into: Dict[Hashable, None] = {}
        positions, radio = self._positions, self.radio
        if self._uniform:
            sorted_out, _in, _out = self._sorted_out, self._in, self._out
            for w in self.index.query_ball(pos, self._uniform_radius):
                if w == node:
                    continue
                out[w] = None
                into[w] = None
                _in[w][node] = None
                _out[w][node] = None
                sorted_out.pop(w, None)
            return out, into
        for w in self.index.query_ball(pos, self.radius):
            if w == node:
                continue
            wpos = positions[w]
            if radio.link_exists(node, w, pos, wpos):
                out[w] = None
                self._in[w][node] = None
            if radio.link_exists(w, node, wpos, pos):
                into[w] = None
                self._out[w][node] = None
                self._sorted_out.pop(w, None)
        return out, into

    def on_insert(self, node: Hashable) -> None:
        """A node appeared (already present in positions/order/index)."""
        out, into = self._harvest_links(node, self._positions[node])
        self._out[node] = out
        self._in[node] = into
        self._sorted_out.pop(node, None)

    def on_remove(self, node: Hashable) -> None:
        """A node disappeared (already gone from positions/order/index)."""
        for w in self._out.pop(node, ()):
            self._in[w].pop(node, None)
        for w in self._in.pop(node, ()):
            self._out[w].pop(node, None)
            self._sorted_out.pop(w, None)
        self._sorted_out.pop(node, None)

    def on_move(self, node: Hashable) -> None:
        """``node`` changed position (positions/index already updated).

        Old links are dropped through the stored reverse adjacency; new links
        are harvested from the grid-cell neighbourhood of the *new* position —
        the only region that can hold a link in either direction.
        """
        if self._obs_moves is not None:
            self._obs_moves.inc()
        if self._uniform:
            # Symmetric links: the out- and in-sets coincide, one pass drops
            # both directions at every peer.
            sorted_out, _in, _out = self._sorted_out, self._in, self._out
            for w in _out[node]:
                _in[w].pop(node, None)
                _out[w].pop(node, None)
                sorted_out.pop(w, None)
        else:
            for w in self._out[node]:
                self._in[w].pop(node, None)
            for w in self._in[node]:
                self._out[w].pop(node, None)
                self._sorted_out.pop(w, None)
        out, into = self._harvest_links(node, self._positions[node])
        self._out[node] = out
        self._in[node] = into
        self._sorted_out.pop(node, None)

    # ---------------------------------------------------------------- queries

    def has_arc(self, u: Hashable, v: Hashable) -> bool:
        """Whether the directed link ``u -> v`` currently exists."""
        return v in self._out.get(u, ())

    def out_neighbors(self, node: Hashable) -> Dict[Hashable, None]:
        """Link targets of ``node`` (the live dict — do not mutate)."""
        return self._out[node]

    def in_neighbors(self, node: Hashable) -> Dict[Hashable, None]:
        """Link sources of ``node`` (the live dict — do not mutate)."""
        return self._in[node]

    def out_neighbors_sorted(self, node: Hashable) -> List[Hashable]:
        """Link targets of ``node`` in insertion order (cached; do not mutate).

        This is the broadcast receiver list of deterministic radios: the exact
        sequence the per-receiver scan would visit after its vicinity filter.
        """
        cached = self._sorted_out.get(node)
        if cached is None:
            cached = sorted(self._out[node], key=self._order.__getitem__)
            self._sorted_out[node] = cached
        return cached

    def symmetric_neighbors(self, node: Hashable) -> Iterable[Hashable]:
        """Nodes linked with ``node`` in both directions (unsorted).

        With a uniform link radius this is the live out-dict (do not mutate);
        asymmetric radios pay one reverse-set intersection.
        """
        if self._uniform:
            return self._out[node]
        into = self._in[node]
        return [w for w in self._out[node] if w in into]

    def arcs(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Every directed link, grouped by source (unsorted within groups)."""
        for u, targets in self._out.items():
            for v in targets:
                yield (u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"LinkStateCache(radius={self.radius}, nodes={len(self._out)}, "
                f"arcs={sum(len(t) for t in self._out.values())})")
