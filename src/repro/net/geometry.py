"""2-D Euclidean geometry helpers.

The paper's system model places nodes in a Euclidean space and defines the
*vicinity* of a node as the region from which it can receive.  This module
provides points, distances, and placement helpers used by the radio models and
the mobility models.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "distance",
    "distances_from",
    "pairwise_distances",
    "random_positions",
    "grid_positions",
    "line_positions",
    "clamp_to_area",
    "bounding_box",
]

Point = Tuple[float, float]


def distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two 2-D points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distances_from(origin: Sequence[float],
                   positions: Mapping[Hashable, Sequence[float]]) -> Dict[Hashable, float]:
    """Distances from ``origin`` to every position in the mapping."""
    ox, oy = origin[0], origin[1]
    return {node: math.hypot(p[0] - ox, p[1] - oy) for node, p in positions.items()}


def pairwise_distances(positions: Mapping[Hashable, Sequence[float]]) -> Dict[Tuple, float]:
    """All pairwise distances; keys are unordered node pairs stored as sorted tuples.

    Pair keys put the smaller node id first under the ids' own ordering, so
    ``(2, 10)`` is the key for nodes 2 and 10 (a ``repr``-based ordering would
    flip it, since ``"10" < "2"`` lexicographically).  Ids that do not support
    ``<`` against each other fall back to ``repr`` ordering — the keys are
    then still canonical, just not numerically sorted.
    """
    nodes = list(positions)
    out: Dict[Tuple, float] = {}
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            try:
                swap = v < u
            except TypeError:
                swap = repr(v) < repr(u)
            key = (v, u) if swap else (u, v)
            out[key] = distance(positions[u], positions[v])
    return out


def random_positions(node_ids: Iterable[Hashable], area: Tuple[float, float],
                     rng: np.random.Generator) -> Dict[Hashable, Point]:
    """Uniform random placement of ``node_ids`` in a ``width x height`` rectangle."""
    width, height = float(area[0]), float(area[1])
    ids = list(node_ids)
    xs = rng.uniform(0.0, width, size=len(ids))
    ys = rng.uniform(0.0, height, size=len(ids))
    return {node: (float(x), float(y)) for node, x, y in zip(ids, xs, ys)}


def grid_positions(node_ids: Iterable[Hashable], spacing: float,
                   columns: int) -> Dict[Hashable, Point]:
    """Regular grid placement (row-major) with the given spacing and column count."""
    if columns <= 0:
        raise ValueError("columns must be positive")
    out: Dict[Hashable, Point] = {}
    for index, node in enumerate(node_ids):
        row, col = divmod(index, columns)
        out[node] = (col * spacing, row * spacing)
    return out


def line_positions(node_ids: Iterable[Hashable], spacing: float,
                   origin: Point = (0.0, 0.0)) -> Dict[Hashable, Point]:
    """Place nodes on a horizontal line with constant spacing (chain topologies)."""
    out: Dict[Hashable, Point] = {}
    for index, node in enumerate(node_ids):
        out[node] = (origin[0] + index * spacing, origin[1])
    return out


def clamp_to_area(point: Sequence[float], area: Tuple[float, float]) -> Point:
    """Clamp ``point`` inside the ``[0, width] x [0, height]`` rectangle."""
    x = min(max(point[0], 0.0), float(area[0]))
    y = min(max(point[1], 0.0), float(area[1]))
    return (x, y)


def bounding_box(positions: Mapping[Hashable, Sequence[float]]) -> Tuple[Point, Point]:
    """Return ``((min_x, min_y), (max_x, max_y))`` of a set of positions."""
    if not positions:
        return ((0.0, 0.0), (0.0, 0.0))
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    return ((min(xs), min(ys)), (max(xs), max(ys)))
