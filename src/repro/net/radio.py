"""Radio / vicinity models.

In the paper, node ``u`` is in the *vicinity* of ``v`` when a message sent by
``u`` can be received by ``v``; the relation is *not* necessarily symmetric
(Section 2).  A radio model answers exactly that question given the positions
of the two nodes.

Three models are provided:

* :class:`UnitDiskRadio` — classic symmetric unit-disk graph;
* :class:`AsymmetricRangeRadio` — each node has its own transmission range, so
  links can be asymmetric (this exercises the single-mark handshake of GRP);
* :class:`ProbabilisticDiskRadio` — a disk whose boundary band delivers with a
  configurable probability, approximating fading.

Mutation notifications
----------------------
Networks cache topology snapshots and an incremental link-state behind the
radio's parameters, so an in-place mutation (changing a range, widening a
fading band) silently serves stale neighbourhoods unless the caches are
invalidated.  The stock models therefore expose their tunables as properties
whose setters call :meth:`RadioModel.notify_mutation`, which forwards to every
registered listener (each :class:`~repro.net.network.Network` using the radio
registers :meth:`~repro.net.network.Network.invalidate_topology`).  Custom
models should do the same for any mutable geometry parameter; mutating private
state directly still requires a manual ``invalidate_topology()`` call.
"""

from __future__ import annotations

import weakref
from typing import Callable, Hashable, List, Mapping, Optional, Sequence

import numpy as np

from .geometry import distance

__all__ = [
    "RadioModel",
    "UnitDiskRadio",
    "AsymmetricRangeRadio",
    "ProbabilisticDiskRadio",
]


class RadioModel:
    """Interface: decides whether a transmission from ``sender`` reaches ``receiver``."""

    def in_vicinity(self, sender: Hashable, receiver: Hashable,
                    sender_pos: Sequence[float], receiver_pos: Sequence[float]) -> bool:
        """Return ``True`` when ``sender`` is in the vicinity of ``receiver``."""
        raise NotImplementedError

    def max_range(self) -> Optional[float]:
        """Upper bound on the reach of any transmission, or ``None`` if unbounded.

        When a finite bound exists, both :meth:`in_vicinity` and
        :meth:`link_exists` must be ``False`` for every pair farther apart than
        the bound; the network then serves neighbour queries from a spatial
        index instead of scanning all nodes.  Models without a usable bound
        return ``None`` and fall back to the brute-force path.
        """
        return None

    def link_exists(self, sender: Hashable, receiver: Hashable,
                    sender_pos: Sequence[float], receiver_pos: Sequence[float]) -> bool:
        """Deterministic link predicate used to build topology snapshots.

        Defaults to :meth:`in_vicinity`; probabilistic radios override it with
        their deterministic support (the largest region with non-zero delivery
        probability) so that topology snapshots are stable.
        """
        return self.in_vicinity(sender, receiver, sender_pos, receiver_pos)

    def deterministic_vicinity(self) -> bool:
        """Whether :meth:`in_vicinity` is deterministic and ≡ :meth:`link_exists`.

        When ``True``, a broadcast's receiver set is exactly the sender's
        out-links, so the network may serve it from the incremental link-state
        cache without re-testing the vicinity per receiver (and without
        touching any RNG).  Models whose vicinity test is stochastic (or
        differs from the link predicate) must return ``False`` — the network
        then keeps the per-candidate vicinity scan.  Conservative default:
        ``False``.
        """
        return False

    def uniform_link_radius(self) -> Optional[float]:
        """A single radius ``r`` with ``link_exists(u, v) iff d(u, v) <= r``.

        When every pair shares one inclusive link radius (unit disks, the
        override-free asymmetric radio, the probabilistic disk's reliable
        core), the link-state cache can harvest a node's links straight from
        one distance-annotated grid query — both directions at once, no
        per-pair predicate calls.  Radios whose link predicate varies per
        node (or is not a pure distance threshold) return ``None`` and keep
        the generic ``link_exists`` path.
        """
        return None

    # -------------------------------------------------- mutation notification

    def add_mutation_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after any in-place parameter mutation.

        Bound methods are held through :class:`weakref.WeakMethod`, so a
        radio reused across many networks (parameter sweeps, notebooks) does
        not keep every dead network alive; dead entries are pruned on the
        next notification.  Plain functions/closures are held strongly.
        """
        listeners = getattr(self, "_mutation_listeners", None)
        if listeners is None:
            listeners = []
            self._mutation_listeners: List[Callable[[], Optional[Callable[[], None]]]] \
                = listeners
        try:
            ref: Callable[[], Optional[Callable[[], None]]] = weakref.WeakMethod(listener)
        except TypeError:
            def ref(callback: Callable[[], None] = listener) -> Callable[[], None]:
                return callback
        listeners.append(ref)

    def notify_mutation(self) -> None:
        """Tell every listening network that cached neighbourhoods are stale."""
        listeners = getattr(self, "_mutation_listeners", None)
        if not listeners:
            return
        stale = False
        for ref in list(listeners):
            callback = ref()
            if callback is None:
                stale = True
                continue
            callback()
        if stale:
            listeners[:] = [ref for ref in listeners if ref() is not None]

    def __getstate__(self):
        """Drop the listener list when pickled.

        WeakMethods are not picklable and registrations are process-local
        anyway: every restored :class:`~repro.net.network.Network`
        re-registers itself on unpickle (the sharded snapshot-restore path
        serializes built worlds wholesale).
        """
        state = self.__dict__.copy()
        state.pop("_mutation_listeners", None)
        return state


class UnitDiskRadio(RadioModel):
    """Symmetric unit-disk radio: delivery iff distance <= ``radio_range``."""

    def __init__(self, radio_range: float):
        if radio_range <= 0:
            raise ValueError("radio range must be positive")
        self._radio_range = float(radio_range)

    @property
    def radio_range(self) -> float:
        """Disk radius; assigning it invalidates every listening network."""
        return self._radio_range

    @radio_range.setter
    def radio_range(self, value: float) -> None:
        if value <= 0:
            raise ValueError("radio range must be positive")
        self._radio_range = float(value)
        self.notify_mutation()

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self._radio_range

    def max_range(self) -> Optional[float]:
        return self._radio_range

    def deterministic_vicinity(self) -> bool:
        return True

    def uniform_link_radius(self) -> Optional[float]:
        return self._radio_range

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnitDiskRadio(range={self._radio_range})"


class AsymmetricRangeRadio(RadioModel):
    """Per-node transmission range: the link (u -> v) exists iff d(u, v) <= range(u).

    A node with a large range but small-range neighbours produces asymmetric
    links, which GRP must reject through its triple handshake (paper Section 4.1).
    """

    def __init__(self, default_range: float,
                 ranges: Optional[Mapping[Hashable, float]] = None):
        if default_range <= 0:
            raise ValueError("default range must be positive")
        self._default_range = float(default_range)
        self.ranges = dict(ranges or {})
        self._max_range = self._compute_max_range()

    def _compute_max_range(self) -> float:
        if not self.ranges:
            return self._default_range
        return max(self._default_range, max(self.ranges.values()))

    @property
    def default_range(self) -> float:
        """Range of nodes without an override; assigning it notifies networks."""
        return self._default_range

    @default_range.setter
    def default_range(self, value: float) -> None:
        if value <= 0:
            raise ValueError("default range must be positive")
        self._default_range = float(value)
        self._max_range = self._compute_max_range()
        self.notify_mutation()

    def range_of(self, node: Hashable) -> float:
        """Transmission range of ``node``."""
        return float(self.ranges.get(node, self._default_range))

    def set_range(self, node: Hashable, value: float) -> None:
        """Override the transmission range of ``node``.

        Always mutate ranges through this method: it keeps the cached
        :meth:`max_range` (queried on every broadcast) consistent and notifies
        every listening network that its cached neighbourhoods are stale.
        """
        if value <= 0:
            raise ValueError("range must be positive")
        self.ranges[node] = float(value)
        self._max_range = self._compute_max_range()
        self.notify_mutation()

    def clear_range(self, node: Hashable) -> None:
        """Drop the range override of ``node`` (back to ``default_range``)."""
        if self.ranges.pop(node, None) is not None:
            self._max_range = self._compute_max_range()
            self.notify_mutation()

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self.range_of(sender)

    def max_range(self) -> Optional[float]:
        return self._max_range

    def deterministic_vicinity(self) -> bool:
        return True

    def uniform_link_radius(self) -> Optional[float]:
        # Without overrides every pair shares the default range; with them
        # the link radius is per-sender and the generic path must run.
        return None if self.ranges else self._default_range

    def __repr__(self) -> str:  # pragma: no cover
        return (f"AsymmetricRangeRadio(default={self._default_range}, "
                f"overrides={len(self.ranges)})")


class ProbabilisticDiskRadio(RadioModel):
    """Disk radio with a fading band.

    Delivery is certain up to ``inner_range``, happens with probability
    ``band_probability`` between ``inner_range`` and ``outer_range``, and never
    beyond.  Topology snapshots (:meth:`link_exists`) use ``inner_range`` so the
    graph used by the predicates only contains reliable links.
    """

    def __init__(self, inner_range: float, outer_range: float,
                 band_probability: float, rng: Optional[np.random.Generator] = None):
        if inner_range <= 0 or outer_range < inner_range:
            raise ValueError("need 0 < inner_range <= outer_range")
        if not 0.0 <= band_probability <= 1.0:
            raise ValueError("band_probability must be in [0, 1]")
        self._inner_range = float(inner_range)
        self._outer_range = float(outer_range)
        self._band_probability = float(band_probability)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def inner_range(self) -> float:
        """Certain-delivery radius; assigning it notifies listening networks."""
        return self._inner_range

    @inner_range.setter
    def inner_range(self, value: float) -> None:
        if value <= 0 or value > self._outer_range:
            raise ValueError("need 0 < inner_range <= outer_range")
        self._inner_range = float(value)
        self.notify_mutation()

    @property
    def outer_range(self) -> float:
        """Fading-band outer radius; assigning it notifies listening networks."""
        return self._outer_range

    @outer_range.setter
    def outer_range(self, value: float) -> None:
        if value < self._inner_range:
            raise ValueError("need 0 < inner_range <= outer_range")
        self._outer_range = float(value)
        self.notify_mutation()

    @property
    def band_probability(self) -> float:
        """Delivery probability inside the fading band."""
        return self._band_probability

    @band_probability.setter
    def band_probability(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError("band_probability must be in [0, 1]")
        self._band_probability = float(value)
        self.notify_mutation()

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        d = distance(sender_pos, receiver_pos)
        if d <= self._inner_range:
            return True
        if d <= self._outer_range:
            return bool(self._rng.random() < self._band_probability)
        return False

    def link_exists(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self._inner_range

    def max_range(self) -> Optional[float]:
        return self._outer_range

    def uniform_link_radius(self) -> Optional[float]:
        return self._inner_range

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ProbabilisticDiskRadio(inner={self._inner_range}, "
                f"outer={self._outer_range}, p={self._band_probability})")
