"""Radio / vicinity models.

In the paper, node ``u`` is in the *vicinity* of ``v`` when a message sent by
``u`` can be received by ``v``; the relation is *not* necessarily symmetric
(Section 2).  A radio model answers exactly that question given the positions
of the two nodes.

Three models are provided:

* :class:`UnitDiskRadio` — classic symmetric unit-disk graph;
* :class:`AsymmetricRangeRadio` — each node has its own transmission range, so
  links can be asymmetric (this exercises the single-mark handshake of GRP);
* :class:`ProbabilisticDiskRadio` — a disk whose boundary band delivers with a
  configurable probability, approximating fading.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Sequence

import numpy as np

from .geometry import distance

__all__ = [
    "RadioModel",
    "UnitDiskRadio",
    "AsymmetricRangeRadio",
    "ProbabilisticDiskRadio",
]


class RadioModel:
    """Interface: decides whether a transmission from ``sender`` reaches ``receiver``."""

    def in_vicinity(self, sender: Hashable, receiver: Hashable,
                    sender_pos: Sequence[float], receiver_pos: Sequence[float]) -> bool:
        """Return ``True`` when ``sender`` is in the vicinity of ``receiver``."""
        raise NotImplementedError

    def max_range(self) -> Optional[float]:
        """Upper bound on the reach of any transmission, or ``None`` if unbounded.

        When a finite bound exists, both :meth:`in_vicinity` and
        :meth:`link_exists` must be ``False`` for every pair farther apart than
        the bound; the network then serves neighbour queries from a spatial
        index instead of scanning all nodes.  Models without a usable bound
        return ``None`` and fall back to the brute-force path.
        """
        return None

    def link_exists(self, sender: Hashable, receiver: Hashable,
                    sender_pos: Sequence[float], receiver_pos: Sequence[float]) -> bool:
        """Deterministic link predicate used to build topology snapshots.

        Defaults to :meth:`in_vicinity`; probabilistic radios override it with
        their deterministic support (the largest region with non-zero delivery
        probability) so that topology snapshots are stable.
        """
        return self.in_vicinity(sender, receiver, sender_pos, receiver_pos)


class UnitDiskRadio(RadioModel):
    """Symmetric unit-disk radio: delivery iff distance <= ``radio_range``."""

    def __init__(self, radio_range: float):
        if radio_range <= 0:
            raise ValueError("radio range must be positive")
        self.radio_range = float(radio_range)

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self.radio_range

    def max_range(self) -> Optional[float]:
        return self.radio_range

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnitDiskRadio(range={self.radio_range})"


class AsymmetricRangeRadio(RadioModel):
    """Per-node transmission range: the link (u -> v) exists iff d(u, v) <= range(u).

    A node with a large range but small-range neighbours produces asymmetric
    links, which GRP must reject through its triple handshake (paper Section 4.1).
    """

    def __init__(self, default_range: float,
                 ranges: Optional[Mapping[Hashable, float]] = None):
        if default_range <= 0:
            raise ValueError("default range must be positive")
        self.default_range = float(default_range)
        self.ranges = dict(ranges or {})
        self._max_range = self._compute_max_range()

    def _compute_max_range(self) -> float:
        if not self.ranges:
            return self.default_range
        return max(self.default_range, max(self.ranges.values()))

    def range_of(self, node: Hashable) -> float:
        """Transmission range of ``node``."""
        return float(self.ranges.get(node, self.default_range))

    def set_range(self, node: Hashable, value: float) -> None:
        """Override the transmission range of ``node``.

        Always mutate ranges through this method: it keeps the cached
        :meth:`max_range` (queried on every broadcast) consistent.  Note that
        a network only observes the mutation through ``max_range()``; when the
        change leaves the maximum untouched (e.g. shrinking a non-maximal
        range), cached topology snapshots stay stale until
        :meth:`repro.net.network.Network.invalidate_topology` is called.
        """
        if value <= 0:
            raise ValueError("range must be positive")
        self.ranges[node] = float(value)
        self._max_range = self._compute_max_range()

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self.range_of(sender)

    def max_range(self) -> Optional[float]:
        return self._max_range

    def __repr__(self) -> str:  # pragma: no cover
        return (f"AsymmetricRangeRadio(default={self.default_range}, "
                f"overrides={len(self.ranges)})")


class ProbabilisticDiskRadio(RadioModel):
    """Disk radio with a fading band.

    Delivery is certain up to ``inner_range``, happens with probability
    ``band_probability`` between ``inner_range`` and ``outer_range``, and never
    beyond.  Topology snapshots (:meth:`link_exists`) use ``inner_range`` so the
    graph used by the predicates only contains reliable links.
    """

    def __init__(self, inner_range: float, outer_range: float,
                 band_probability: float, rng: Optional[np.random.Generator] = None):
        if inner_range <= 0 or outer_range < inner_range:
            raise ValueError("need 0 < inner_range <= outer_range")
        if not 0.0 <= band_probability <= 1.0:
            raise ValueError("band_probability must be in [0, 1]")
        self.inner_range = float(inner_range)
        self.outer_range = float(outer_range)
        self.band_probability = float(band_probability)
        self._rng = rng if rng is not None else np.random.default_rng()

    def in_vicinity(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        d = distance(sender_pos, receiver_pos)
        if d <= self.inner_range:
            return True
        if d <= self.outer_range:
            return bool(self._rng.random() < self.band_probability)
        return False

    def link_exists(self, sender, receiver, sender_pos, receiver_pos) -> bool:
        return distance(sender_pos, receiver_pos) <= self.inner_range

    def max_range(self) -> Optional[float]:
        return self.outer_range

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ProbabilisticDiskRadio(inner={self.inner_range}, outer={self.outer_range}, "
                f"p={self.band_probability})")
