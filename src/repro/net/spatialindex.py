"""Uniform-grid spatial index over node positions.

Every neighbour query of the network used to be a linear scan over all nodes
(and every topology snapshot an O(N²) rebuild), which caps simulations at toy
sizes.  This module provides :class:`UniformGridIndex`, a classic uniform grid
hash: the plane is partitioned into square cells of side ``cell_size`` (chosen
as the radio's maximum range), and each node is stored in the cell containing
its position.  A range query with radius ``r`` then only inspects the
``(2k+1)²`` cells with ``k = ceil(r / cell_size)`` around the query point, so
for bounded-range radios the cost of a broadcast or a snapshot edge scan is
proportional to the *local* density instead of the network size.

Invariants maintained by the index (and relied upon by
:class:`repro.net.network.Network`):

* the index always mirrors the network's position table exactly — every call
  to ``add_node`` / ``remove_node`` / ``set_position`` / mobility step
  translates into an :meth:`insert` / :meth:`remove` / :meth:`update`;
* cell membership is ``(floor(x / cell_size), floor(y / cell_size))``, so a
  node sitting exactly on a cell edge belongs to the higher-indexed cell and
  to exactly one cell overall;
* queries are *exact*: candidates harvested from the cell neighbourhood are
  filtered with the Euclidean distance, with the same inclusive ``d <= r``
  comparison the radio models use, so indexed and brute-force neighbour sets
  are identical (including nodes exactly at range ``r`` and coincident
  points).  Dense queries take a vectorized squared-distance path whose
  boundary band is re-checked with the scalar predicate, keeping the same
  guarantee (see :mod:`repro.net.arraystate` for the exactness argument);
* iteration order is deterministic: cells and their occupants are stored in
  insertion-ordered dictionaries, never plain sets.

The index is purely geometric — it knows nothing about node activity or radio
asymmetry; the network filters its candidates through the radio model exactly
as the brute-force path does.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .arraystate import HYPOT_GUARD_BAND
from .geometry import Point

__all__ = ["UniformGridIndex", "x_tile_cuts"]

Cell = Tuple[int, int]

# Candidate count above which query_ball switches from the scalar hypot loop
# to the vectorized squared-distance filter.  Below this, building the
# coordinate array costs more than the loop it replaces.
_VECTOR_MIN_CANDIDATES = 64


class UniformGridIndex:
    """Incremental uniform grid hash over 2-D node positions.

    Parameters
    ----------
    cell_size:
        Side of the square grid cells.  Choosing the radio's maximum range
        makes every bounded query touch at most the 3x3 cell neighbourhood;
        any positive value is *correct* (queries widen their cell ring as
        needed), it only changes performance.
    positions:
        Optional initial ``node -> (x, y)`` mapping to bulk-load.
    """

    def __init__(self, cell_size: float,
                 positions: Mapping[Hashable, Sequence[float]] = ()):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Cell, Dict[Hashable, None]] = {}
        self._cell_of: Dict[Hashable, Cell] = {}
        self._positions: Dict[Hashable, Point] = {}
        for node, pos in dict(positions).items():
            self.insert(node, pos)

    # ------------------------------------------------------------- bookkeeping

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._positions

    def position_of(self, node: Hashable) -> Point:
        """Stored position of ``node``."""
        return self._positions[node]

    def cell_key(self, position: Sequence[float]) -> Cell:
        """Grid cell containing ``position``."""
        return (math.floor(position[0] / self.cell_size),
                math.floor(position[1] / self.cell_size))

    def insert(self, node: Hashable, position: Sequence[float]) -> None:
        """Add ``node`` at ``position`` (it must not already be indexed)."""
        if node in self._positions:
            raise ValueError(f"node {node!r} already indexed; use update()")
        pos = (float(position[0]), float(position[1]))
        cell = self.cell_key(pos)
        self._positions[node] = pos
        self._cell_of[node] = cell
        self._cells.setdefault(cell, {})[node] = None

    def remove(self, node: Hashable) -> None:
        """Drop ``node`` from the index (no-op when absent)."""
        if node not in self._positions:
            return
        cell = self._cell_of.pop(node)
        del self._positions[node]
        occupants = self._cells[cell]
        del occupants[node]
        if not occupants:
            del self._cells[cell]

    def update(self, node: Hashable, position: Sequence[float]) -> None:
        """Move ``node`` to ``position``; only touches the grid on cell change."""
        pos = (float(position[0]), float(position[1]))
        old_cell = self._cell_of.get(node)
        if old_cell is None:
            self.insert(node, pos)
            return
        self._positions[node] = pos
        new_cell = self.cell_key(pos)
        if new_cell == old_cell:
            return
        occupants = self._cells[old_cell]
        del occupants[node]
        if not occupants:
            del self._cells[old_cell]
        self._cell_of[node] = new_cell
        self._cells.setdefault(new_cell, {})[node] = None

    # ----------------------------------------------------------------- queries

    def _ring_extent(self, r: float) -> int:
        return max(1, math.ceil(r / self.cell_size))

    def query_ball(self, position: Sequence[float], r: float) -> List[Hashable]:
        """All indexed nodes within Euclidean distance ``r`` of ``position``.

        The comparison is inclusive (``d <= r``) to match the radio models.
        """
        if r < 0:
            return []
        cx, cy = self.cell_key(position)
        k = self._ring_extent(r)
        cells = self._cells
        occupied: List[Dict[Hashable, None]] = []
        total = 0
        for dx in range(-k, k + 1):
            for dy in range(-k, k + 1):
                occupants = cells.get((cx + dx, cy + dy))
                if occupants:
                    occupied.append(occupants)
                    total += len(occupants)
        if total == 0:
            return []
        positions, hypot = self._positions, math.hypot
        px, py = float(position[0]), float(position[1])
        if total < _VECTOR_MIN_CANDIDATES:
            # Local aliases and an inlined math.hypot keep this hot loop cheap
            # while computing the exact same float as geometry.distance().
            out: List[Hashable] = []
            for occupants in occupied:
                for node in occupants:
                    q = positions[node]
                    if hypot(q[0] - px, q[1] - py) <= r:
                        out.append(node)
            return out
        # Vectorized filter on squared distances.  Candidates whose squared
        # distance falls within a tiny relative band of r² are re-checked with
        # the scalar math.hypot predicate (on the identical float differences)
        # so the result matches the loop above bit for bit — including points
        # exactly at range r and coincident with the query position.
        names: List[Hashable] = []
        for occupants in occupied:
            names.extend(occupants)
        coords = np.fromiter((positions[n] for n in names),
                             dtype=np.dtype((np.float64, 2)), count=total)
        dxs = coords[:, 0] - px
        dys = coords[:, 1] - py
        sq = dxs * dxs
        sq += dys * dys
        rsq = r * r
        keep = sq <= rsq
        band = np.flatnonzero(np.abs(sq - rsq) <= rsq * (2.0 * HYPOT_GUARD_BAND))
        for i in band.tolist():
            keep[i] = hypot(dxs[i], dys[i]) <= r
        return [names[i] for i in np.flatnonzero(keep).tolist()]

    def neighbors_within(self, node: Hashable, r: float) -> List[Hashable]:
        """Indexed nodes within distance ``r`` of ``node`` (excluding itself)."""
        position = self._positions[node]
        return [n for n in self.query_ball(position, r) if n != node]


    def pairs_within(self, r: float) -> Iterator[Tuple[Hashable, Hashable]]:
        """Yield every unordered pair ``(u, v)`` with ``d(u, v) <= r`` once.

        Pairs inside one cell are produced in occupant insertion order; pairs
        across cells scan only the forward half of the ``(2k+1)²``
        neighbourhood so each cell pair is visited a single time.
        """
        if r < 0:
            return
        k = self._ring_extent(r)
        forward = [(dx, dy) for dx in range(0, k + 1) for dy in range(-k, k + 1)
                   if dx > 0 or dy > 0]
        positions, hypot = self._positions, math.hypot
        for cell, occupants in self._cells.items():
            nodes = list(occupants)
            for i, u in enumerate(nodes):
                ux, uy = positions[u]
                for v in nodes[i + 1:]:
                    q = positions[v]
                    if hypot(q[0] - ux, q[1] - uy) <= r:
                        yield (u, v)
            cx, cy = cell
            for dx, dy in forward:
                others = self._cells.get((cx + dx, cy + dy))
                if not others:
                    continue
                for u in nodes:
                    ux, uy = positions[u]
                    for v in others:
                        q = positions[v]
                        if hypot(q[0] - ux, q[1] - uy) <= r:
                            yield (u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"UniformGridIndex(cell={self.cell_size}, nodes={len(self._positions)}, "
                f"occupied_cells={len(self._cells)})")


# --------------------------------------------------------- tile partitioning

def x_tile_cuts(xs: Sequence[float], cell_size: float, tiles: int) -> List[int]:
    """Cut the grid's x-columns into ``tiles`` contiguous bands of cells,
    balanced by node count.

    ``xs`` are node x-coordinates; each node lands in column
    ``floor(x / cell_size)`` — the same cell convention as
    :meth:`UniformGridIndex.cell_key`, so a band of columns is exactly a band
    of grid cells.  The return value is ``tiles - 1`` ascending cut columns:
    tile ``t`` owns every column ``c`` with ``cuts[t-1] < c <= cuts[t]``
    (tile 0 is unbounded below, the last tile unbounded above, so *every*
    possible column — including ones nodes only reach later through mobility
    — has exactly one owner).

    The cuts are chosen greedily against the ideal quantile targets
    ``total * (t+1) / tiles`` while reserving one column for each remaining
    tile, so no tile is ever an empty range when there are at least ``tiles``
    occupied columns.  The assignment is a pure function of the inputs —
    deterministic across processes, the property the sharded executor's
    replicated world construction relies on.
    """
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    if tiles == 1:
        return []
    counts: Dict[int, int] = {}
    for x in xs:
        column = math.floor(x / cell_size)
        counts[column] = counts.get(column, 0) + 1
    columns = sorted(counts)
    if len(columns) < tiles:
        raise ValueError(
            f"cannot split {len(columns)} occupied grid columns into {tiles} tiles; "
            "use fewer shards or a smaller cell size")
    total = sum(counts.values())
    cuts: List[int] = []
    acc = 0
    index = 0
    for tile in range(tiles - 1):
        target = total * (tile + 1) / tiles
        # Rightmost column this cut may take: each of the remaining tiles
        # (later cuts plus the final tile) must keep at least one column.
        last_allowed = len(columns) - (tiles - tile - 1) - 1
        while True:
            acc += counts[columns[index]]
            if acc >= target or index == last_allowed:
                break
            index += 1
        cuts.append(columns[index])
        index += 1
    return cuts
