"""Broadcast channel models.

The paper assumes a local broadcast medium close to IEEE 802.11: one-message
channels, fair sending/reception, possible losses, and a fair-channel
hypothesis (τ1, τ2) guaranteeing that a persistent sender is eventually heard.
The channel model decides, per (sender, receiver) pair and per transmission,
whether and when the message is delivered.

:class:`LossyChannel` applies an independent loss probability per receiver and
a delivery delay.  :class:`CollisionChannel` additionally drops receptions when
two transmissions overlap at the receiver within a configurable collision
window, modelling the "at most one message on the channel" hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["ChannelDecision", "ChannelModel", "PerfectChannel", "LossyChannel",
           "CollisionChannel"]


@dataclass(frozen=True)
class ChannelDecision:
    """Outcome of a transmission attempt towards one receiver."""

    delivered: bool
    delay: float = 0.0
    reason: str = "ok"


class ChannelModel:
    """Interface: decide delivery of one transmission towards one receiver."""

    def decide(self, sender: Hashable, receiver: Hashable, time: float) -> ChannelDecision:
        """Return the delivery decision for a transmission emitted at ``time``."""
        raise NotImplementedError


class PerfectChannel(ChannelModel):
    """Every transmission is delivered with a constant (possibly zero) delay."""

    def __init__(self, delay: float = 0.0):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        # The decision is identical for every transmission; sharing one frozen
        # instance keeps the per-receiver broadcast cost allocation-free.
        self._decision = ChannelDecision(delivered=True, delay=float(delay))

    @property
    def delay(self) -> float:
        """Constant delivery delay."""
        return self._decision.delay

    def decide(self, sender, receiver, time) -> ChannelDecision:
        return self._decision


class LossyChannel(ChannelModel):
    """Independent per-receiver loss with uniform random delay.

    Parameters
    ----------
    loss_probability:
        Probability that a given receiver misses a given transmission.
    min_delay, max_delay:
        Uniform delivery delay bounds.
    rng:
        Random generator (injected by the network for reproducibility).
    """

    def __init__(self, loss_probability: float = 0.0, min_delay: float = 0.0,
                 max_delay: float = 0.0, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self.loss_probability = float(loss_probability)
        self.min_delay = float(min_delay)
        self.max_delay = float(max_delay)
        self._rng = rng if rng is not None else np.random.default_rng()
        self.dropped = 0
        self.delivered = 0

    def set_rng(self, rng: np.random.Generator) -> None:
        """Inject the random stream used for loss and delay draws."""
        self._rng = rng

    def _draw_delay(self) -> float:
        if self.max_delay == self.min_delay:
            return self.min_delay
        return float(self._rng.uniform(self.min_delay, self.max_delay))

    def decide(self, sender, receiver, time) -> ChannelDecision:
        if self.loss_probability > 0 and self._rng.random() < self.loss_probability:
            self.dropped += 1
            return ChannelDecision(delivered=False, reason="loss")
        self.delivered += 1
        return ChannelDecision(delivered=True, delay=self._draw_delay())


class CollisionChannel(LossyChannel):
    """Lossy channel with receiver-side collisions.

    If two different senders transmit towards the same receiver within
    ``collision_window`` time units, the later transmission is dropped (and the
    earlier one is unaffected — a simplified capture model).  This realizes the
    paper's hypothesis (i)/(iv): a node cannot receive while another node in
    its vicinity is transmitting.
    """

    def __init__(self, collision_window: float, loss_probability: float = 0.0,
                 min_delay: float = 0.0, max_delay: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(loss_probability, min_delay, max_delay, rng)
        if collision_window < 0:
            raise ValueError("collision_window must be non-negative")
        self.collision_window = float(collision_window)
        self.collisions = 0
        # receiver -> (sender, time of the last transmission heard)
        self._last_heard: Dict[Hashable, Tuple[Hashable, float]] = {}

    def decide(self, sender, receiver, time) -> ChannelDecision:
        last = self._last_heard.get(receiver)
        if (last is not None and last[0] != sender
                and (time - last[1]) < self.collision_window):
            self.collisions += 1
            self._last_heard[receiver] = (sender, time)
            return ChannelDecision(delivered=False, reason="collision")
        self._last_heard[receiver] = (sender, time)
        return super().decide(sender, receiver, time)
